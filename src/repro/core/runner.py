"""XRunner: enforce an ExeGPT schedule on the simulated cluster.

The runner takes the schedule XScheduler selected and replays a workload
trace on the discrete-event engine, honouring the schedule's semantics:

* **RRA** -- every pipeline stage alternates between encoding phases and
  ``N_D`` decoding iterations; new queries are admitted once per cycle to
  refill the slots freed by early-terminated queries.
* **WAA** -- dedicated encoder stages continuously encode fresh batches of
  ``B_E`` queries, hand their KV-cache entries to the decoder stages through
  host memory, and the decoder stages run pipelined decode iterations over
  ``B_m`` micro-batches of the standing pool.

Early termination, KV-cache compaction, the encoder→decoder KV transfer and
dynamic workload adjustment are all part of the replay, so the measured
throughput/latency include their costs.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.core.allocation import Placement, StagePlan, stage_weight_bytes
from repro.core.analytical import decode_stage_time, encode_stage_time
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.core.dynamic import DynamicWorkloadAdjuster
from repro.core.simulator import XSimulator
from repro.engine.batching import (
    average_context,
    average_input_length,
    split_into_micro_batches,
)
from repro.engine.metrics import RunResult, collect_result
from repro.engine.request import RequestState
from repro.engine.timeline import Timeline
from repro.workloads.trace import WorkloadTrace

GIB = 1024 ** 3


@dataclass
class _Bookkeeping:
    """Deferred timestamp assignments resolved after the timeline runs."""

    encode_starts: list[tuple[RequestState, int]]
    completions: list[tuple[RequestState, int]]

    def resolve(self, timeline: Timeline) -> None:
        timeline.run()
        for request, task_id in self.encode_starts:
            request.encode_start_s = timeline.start_time(task_id)
        for request, task_id in self.completions:
            request.finish_s = timeline.finish_time(task_id)


class XRunner:
    """Executes a schedule on the simulated cluster.

    Args:
        simulator: The XSimulator holding the profile and distributions; the
            runner reuses its placement construction so the executed layout
            is exactly the scheduled one.
        config: The schedule to enforce.
        dynamic_adjustment: Enable the Section 5.2 runtime batch adjustment.
    """

    def __init__(
        self,
        simulator: XSimulator,
        config: ScheduleConfig,
        dynamic_adjustment: bool = True,
    ) -> None:
        self.simulator = simulator
        self.config = config
        self.profile = simulator.profile
        self.model = simulator.model
        self.placement: Placement = simulator.build_placement(config)
        self.dynamic_adjustment = dynamic_adjustment
        self.decoder_only = not self.model.is_encoder_decoder

    # -- public API ------------------------------------------------------------

    def run(self, trace: WorkloadTrace) -> RunResult:
        """Replay ``trace`` under the configured schedule and collect metrics."""
        if len(trace) == 0:
            raise ValueError("trace must contain at least one request")
        if self.config.policy is SchedulePolicy.RRA:
            return self._run_rra(trace)
        return self._run_waa(trace)

    def _make_adjuster(self) -> DynamicWorkloadAdjuster:
        decode_batch = self.simulator.derived_decode_batch(self.config)
        return DynamicWorkloadAdjuster(
            target_encode_batch=self.config.encode_batch,
            target_decode_batch=max(decode_batch, 1.0),
            avg_input_len=max(self.simulator.input_distribution.mean, 1.0),
            enabled=self.dynamic_adjustment,
        )

    # -- RRA ------------------------------------------------------------------------

    def _run_rra(self, trace: WorkloadTrace) -> RunResult:
        placement = self.placement
        stages = placement.stages
        num_stages = len(stages)
        micro_batches = max(num_stages, 1)
        adjuster = self._make_adjuster()
        decode_batch_target = max(int(round(adjuster.target_decode_batch)), 1)

        timeline = Timeline()
        books = _Bookkeeping(encode_starts=[], completions=[])
        stage_times: dict[str, list[float]] = {"encode": [], "decode": []}
        peak_kv_tokens: dict[int, float] = {s.stage_id: 0.0 for s in stages}

        all_requests = [RequestState(spec=spec) for spec in trace.requests]
        pending: deque[RequestState] = deque(all_requests)
        pool: list[RequestState] = []
        cycle = 0
        freed_last_cycle = 0
        warmup_requests = min(decode_batch_target, len(all_requests))

        while pending or pool:
            # --- admission -----------------------------------------------------
            if pending:
                if cycle == 0:
                    room = max(decode_batch_target - len(pool), 0)
                    admitted = list(pending)[:room] if room else []
                else:
                    admitted = adjuster.admit(
                        list(pending), len(pool), freed_last_cycle
                    )
                for request in admitted:
                    pending.popleft()
                    request.admitted_cycle = cycle
            else:
                admitted = []

            # --- encoding phase -------------------------------------------------
            encode_last_tasks: list[int] = []
            if admitted:
                groups = split_into_micro_batches(admitted, micro_batches)
                for group in groups:
                    avg_input = average_input_length(group)
                    prev_task: int | None = None
                    first_task: int | None = None
                    for stage in stages:
                        duration = encode_stage_time(
                            self.profile, placement, stage, len(group), avg_input
                        )
                        deps = (prev_task,) if prev_task is not None else ()
                        task_id = timeline.add_task(
                            stage.stage_id, duration, deps, tag="encode"
                        )
                        stage_times["encode"].append(duration)
                        if first_task is None:
                            first_task = task_id
                        prev_task = task_id
                    for request in group:
                        books.encode_starts.append((request, first_task))
                    encode_last_tasks.append(prev_task)
                pool.extend(admitted)

            if not pool:
                cycle += 1
                freed_last_cycle = 0
                continue

            # --- decoding phase: N_D iterations ------------------------------------
            groups = split_into_micro_batches(pool, micro_batches)
            prev_iter_last: dict[int, int] = {}
            freed_last_cycle = 0
            for iteration in range(self.config.decode_iterations):
                any_alive = False
                for g_index, group in enumerate(groups):
                    alive = [r for r in group if not r.done]
                    if not alive:
                        continue
                    any_alive = True
                    avg_ctx = average_context(alive, self.decoder_only)
                    prev_task = None
                    deps_first: list[int] = []
                    if iteration == 0:
                        deps_first.extend(encode_last_tasks)
                    if g_index in prev_iter_last:
                        deps_first.append(prev_iter_last[g_index])
                    for stage in stages:
                        duration = decode_stage_time(
                            self.profile, placement, stage, len(alive), avg_ctx
                        )
                        deps = [prev_task] if prev_task is not None else list(deps_first)
                        task_id = timeline.add_task(
                            stage.stage_id, duration, tuple(deps), tag="decode"
                        )
                        stage_times["decode"].append(duration)
                        kv_tokens = sum(r.context_length(self.decoder_only) for r in alive)
                        peak_kv_tokens[stage.stage_id] = max(
                            peak_kv_tokens[stage.stage_id], float(kv_tokens)
                        )
                        prev_task = task_id
                    prev_iter_last[g_index] = prev_task
                    completed_requests: list[RequestState] = []
                    for request in alive:
                        request.advance()
                        if request.done:
                            books.completions.append((request, prev_task))
                            completed_requests.append(request)
                            freed_last_cycle += 1
                    if completed_requests:
                        # Compaction copies the freed entries' worth of cache
                        # to close the holes left by early termination.
                        compaction = self.profile.kv_compaction_time(
                            len(completed_requests),
                            average_context(completed_requests, self.decoder_only),
                            stages[-1].decoder_layers,
                        )
                        if compaction > 0:
                            comp_task = timeline.add_task(
                                stages[-1].stage_id,
                                compaction,
                                (prev_task,),
                                tag="compaction",
                            )
                            prev_iter_last[g_index] = comp_task
                if not any_alive:
                    break
            pool = [r for r in pool if not r.done]
            cycle += 1
            if cycle > 100000:
                raise RuntimeError("RRA runner did not converge; check the schedule")

        books.resolve(timeline)
        return self._collect(
            "exegpt-rra",
            all_requests,
            timeline,
            stage_times,
            peak_kv_tokens,
            warmup_requests,
        )

    # -- WAA ---------------------------------------------------------------------------

    def _run_waa(self, trace: WorkloadTrace) -> RunResult:
        placement = self.placement
        encode_stages = placement.encode_stages
        decode_stages = placement.decode_stages
        if not encode_stages or not decode_stages:
            raise ValueError("WAA placement needs both encode and decode stages")
        micro_batches = self.config.micro_batches
        adjuster = self._make_adjuster()
        decode_batch_target = max(int(round(adjuster.target_decode_batch)), 1)

        timeline = Timeline()
        books = _Bookkeeping(encode_starts=[], completions=[])
        stage_times: dict[str, list[float]] = {"encode": [], "decode": []}
        peak_kv_tokens: dict[int, float] = {s.stage_id: 0.0 for s in placement.stages}
        transfer_stage = "kv-transfer"

        all_requests = [RequestState(spec=spec) for spec in trace.requests]
        pending: deque[RequestState] = deque(all_requests)
        pool: list[RequestState] = []
        warmup_requests = min(decode_batch_target, len(all_requests))
        # Requests whose encoding/KV transfer was issued in the previous
        # iteration and that join the decode pool at the next one.
        incoming: list[tuple[list[RequestState], int]] = []
        prev_iter_last: dict[int, int] = {}
        iteration = 0
        freed_last_iteration = 0

        while pending or pool or incoming:
            # --- encoder side: admit and encode one batch per iteration ------------
            transfer_task: int | None = None
            admitted: list[RequestState] = []
            if pending:
                admitted = adjuster.admit(
                    list(pending), len(pool), freed_last_iteration
                )
                if not admitted and len(pool) < decode_batch_target:
                    admitted = list(pending)[: self.config.encode_batch]
                for request in admitted:
                    pending.popleft()
                    request.admitted_cycle = iteration
            if admitted:
                avg_input = average_input_length(admitted)
                prev_task: int | None = None
                first_task: int | None = None
                for stage in encode_stages:
                    duration = encode_stage_time(
                        self.profile, placement, stage, len(admitted), avg_input
                    )
                    deps = (prev_task,) if prev_task is not None else ()
                    task_id = timeline.add_task(
                        ("enc", stage.stage_id), duration, deps, tag="encode"
                    )
                    stage_times["encode"].append(duration)
                    kv_tokens = len(admitted) * avg_input
                    peak_kv_tokens[stage.stage_id] = max(
                        peak_kv_tokens[stage.stage_id], float(kv_tokens)
                    )
                    if first_task is None:
                        first_task = task_id
                    prev_task = task_id
                for request in admitted:
                    books.encode_starts.append((request, first_task))
                kv_layers = (
                    self.model.num_decoder_layers if self.decoder_only else 1
                )
                transfer_duration = self.profile.kv_transfer_time(
                    len(admitted), avg_input, kv_layers
                )
                transfer_task = timeline.add_task(
                    transfer_stage, transfer_duration, (prev_task,), tag="kv-transfer"
                )
                incoming.append((admitted, transfer_task))

            # --- merge the batch encoded in the previous iteration ------------------
            merge_deps: list[int] = []
            if incoming:
                ready = incoming[0]
                # Merge at most one encoded batch per iteration (the handover
                # granularity of WAA).
                if ready[1] != transfer_task or not pool:
                    incoming.pop(0)
                    pool.extend(ready[0])
                    merge_deps.append(ready[1])

            if not pool:
                iteration += 1
                freed_last_iteration = 0
                if iteration > 200000:
                    raise RuntimeError("WAA runner did not converge")
                continue

            # --- decoder side: one pipelined iteration over the pool ----------------
            groups = split_into_micro_batches(pool, micro_batches)
            freed_last_iteration = 0
            for g_index, group in enumerate(groups):
                alive = [r for r in group if not r.done]
                if not alive:
                    continue
                avg_ctx = average_context(alive, self.decoder_only)
                prev_task = None
                deps_first: list[int] = list(merge_deps)
                if g_index in prev_iter_last:
                    deps_first.append(prev_iter_last[g_index])
                for stage in decode_stages:
                    duration = decode_stage_time(
                        self.profile, placement, stage, len(alive), avg_ctx
                    )
                    deps = [prev_task] if prev_task is not None else deps_first
                    task_id = timeline.add_task(
                        ("dec", stage.stage_id), duration, tuple(deps), tag="decode"
                    )
                    stage_times["decode"].append(duration)
                    kv_tokens = sum(r.context_length(self.decoder_only) for r in alive)
                    peak_kv_tokens[stage.stage_id] = max(
                        peak_kv_tokens[stage.stage_id], float(kv_tokens)
                    )
                    prev_task = task_id
                prev_iter_last[g_index] = prev_task
                completed_requests: list[RequestState] = []
                for request in alive:
                    request.advance()
                    if request.done:
                        books.completions.append((request, prev_task))
                        completed_requests.append(request)
                        freed_last_iteration += 1
                if completed_requests:
                    compaction = self.profile.kv_compaction_time(
                        len(completed_requests),
                        average_context(completed_requests, self.decoder_only),
                        decode_stages[-1].decoder_layers,
                    )
                    if compaction > 0:
                        comp_task = timeline.add_task(
                            ("dec", decode_stages[-1].stage_id),
                            compaction,
                            (prev_task,),
                            tag="compaction",
                        )
                        prev_iter_last[g_index] = comp_task
            pool = [r for r in pool if not r.done]
            iteration += 1
            if iteration > 200000:
                raise RuntimeError("WAA runner did not converge")

        books.resolve(timeline)
        name = "exegpt-waa-m" if self.config.policy is SchedulePolicy.WAA_M else "exegpt-waa-c"
        return self._collect(
            name, all_requests, timeline, stage_times, peak_kv_tokens, warmup_requests
        )

    # -- shared collection -------------------------------------------------------------

    def _collect(
        self,
        system: str,
        requests: list[RequestState],
        timeline: Timeline,
        stage_times: dict[str, list[float]],
        peak_kv_tokens: dict[int, float],
        warmup_requests: int = 0,
    ) -> RunResult:
        peak_memory = self._peak_memory_gib(peak_kv_tokens)
        return collect_result(
            system=system,
            requests=requests,
            makespan_s=timeline.makespan_s,
            stage_utilization=timeline.stage_utilization(),
            stage_times=stage_times,
            peak_memory_gib=peak_memory,
            extra={"num_tasks": float(timeline.num_tasks)},
            warmup_requests=warmup_requests,
        )

    def _peak_memory_gib(self, peak_kv_tokens: dict[int, float]) -> dict[object, float]:
        model = self.model
        result: dict[object, float] = {}
        for stage in self.placement.stages:
            tp = stage.tp_degree
            weights = stage_weight_bytes(model, stage) / tp
            weights += model.embedding_parameters * model.dtype_bytes / self.placement.num_gpus
            layers = stage.decoder_layers if stage.decoder_layers else 1
            kv = (
                peak_kv_tokens.get(stage.stage_id, 0.0)
                * layers
                * model.kv_bytes_per_token_per_layer()
                / tp
            )
            result[stage.stage_id] = (weights + kv) / GIB
        return result

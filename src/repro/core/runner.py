"""XRunner: enforce an ExeGPT schedule on the simulated cluster.

The runner takes the schedule XScheduler selected and replays a workload
trace on the discrete-event engine, honouring the schedule's semantics:

* **RRA** -- every pipeline stage alternates between encoding phases and
  ``N_D`` decoding iterations; new queries are admitted once per cycle to
  refill the slots freed by early-terminated queries.
* **WAA** -- dedicated encoder stages continuously encode fresh batches of
  ``B_E`` queries, hand their KV-cache entries to the decoder stages through
  host memory, and the decoder stages run pipelined decode iterations over
  ``B_m`` micro-batches of the standing pool.

Early termination, KV-cache compaction, the encoder→decoder KV transfer and
dynamic workload adjustment are all part of the replay, so the measured
throughput/latency include their costs.

Iteration construction and pricing live in
:class:`~repro.engine.execution.ExecutionEngine`: the runner's loops only
decide *what* each cycle does (admission, micro-batch membership, when to
stop), describe it as an :class:`~repro.engine.execution.IterationPlan`, and
commit it -- which resolves each cycle's stage durations through batched
profile lookups instead of per-task scalar calls.  The same engine drives
the baselines and the online servers, so the execution semantics cannot
diverge between them.

Request lifecycle state lives in a columnar
:class:`~repro.engine.pool.RequestPool`: the runner holds *id arrays* (the
pending window is a column slice, the standing pool an id array compacted
through the pool's done mask once per cycle), so no per-request ``done``
scans or Python context-length sums remain on the replay hot path.
``columnar=False`` swaps in the per-object
:class:`~repro.engine.pool.ListPool` reference backend -- the historical
list-of-``RequestState`` path, kept measurable by the perf harness
(``BENCH_search.json`` series ``replay_pool``).
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Placement, stage_weight_bytes
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.core.dynamic import DynamicWorkloadAdjuster
from repro.core.simulator import XSimulator
from repro.engine.batching import split_ids
from repro.engine.execution import ExecutionEngine, KVHandover, TaskRef
from repro.engine.metrics import RunResult, collect_pool_result
from repro.engine.pool import EMPTY_IDS, make_pool
from repro.engine.timeline import Timeline
from repro.workloads.trace import WorkloadTrace

GIB = 1024 ** 3


class XRunner:
    """Executes a schedule on the simulated cluster.

    Args:
        simulator: The XSimulator holding the profile and distributions; the
            runner reuses its placement construction so the executed layout
            is exactly the scheduled one.
        config: The schedule to enforce.
        dynamic_adjustment: Enable the Section 5.2 runtime batch adjustment.
        batched_pricing: Resolve stage durations through the vectorized
            profile lookups (default); ``False`` keeps the scalar reference
            path for the perf-regression harness.
        columnar: Back the replay with the columnar request pool (default);
            ``False`` keeps the per-object list reference backend for the
            perf-regression harness.
    """

    def __init__(
        self,
        simulator: XSimulator,
        config: ScheduleConfig,
        dynamic_adjustment: bool = True,
        batched_pricing: bool = True,
        columnar: bool = True,
    ) -> None:
        self.simulator = simulator
        self.config = config
        self.profile = simulator.profile
        self.model = simulator.model
        self.placement: Placement = simulator.build_placement(config)
        self.dynamic_adjustment = dynamic_adjustment
        self.batched_pricing = batched_pricing
        self.columnar = columnar
        self.decoder_only = not self.model.is_encoder_decoder
        #: Timeline of the most recent :meth:`run`, kept for introspection
        #: (cross-layer parity tests compare task graphs across drivers).
        self.last_timeline: Timeline | None = None

    # -- public API ------------------------------------------------------------

    def run(self, trace: WorkloadTrace) -> RunResult:
        """Replay ``trace`` under the configured schedule and collect metrics."""
        if len(trace) == 0:
            raise ValueError("trace must contain at least one request")
        if self.config.policy is SchedulePolicy.RRA:
            return self._run_rra(trace)
        return self._run_waa(trace)

    def _make_adjuster(self) -> DynamicWorkloadAdjuster:
        decode_batch = self.simulator.derived_decode_batch(self.config)
        return DynamicWorkloadAdjuster(
            target_encode_batch=self.config.encode_batch,
            target_decode_batch=max(decode_batch, 1.0),
            avg_input_len=max(self.simulator.input_distribution.mean, 1.0),
            enabled=self.dynamic_adjustment,
        )

    def _make_engine(self, timeline: Timeline, pool) -> ExecutionEngine:
        return ExecutionEngine(
            timeline,
            self.profile,
            self.placement,
            pool,
            decoder_only=self.decoder_only,
            batched_pricing=self.batched_pricing,
        )

    # -- RRA ------------------------------------------------------------------------

    def _run_rra(self, trace: WorkloadTrace) -> RunResult:
        placement = self.placement
        stages = placement.stages
        micro_batches = max(len(stages), 1)
        adjuster = self._make_adjuster()
        decode_batch_target = max(int(round(adjuster.target_decode_batch)), 1)

        timeline = Timeline()
        self.last_timeline = timeline
        pool = make_pool(trace, self.columnar)
        engine = self._make_engine(timeline, pool)
        # Offline construction never reads the clock, so the whole replay is
        # one plan: every stage duration resolves in a handful of batched
        # lookups at commit time.
        plan = engine.plan()

        all_ids = pool.ids()
        total = all_ids.size
        pos = 0  # pending requests are all_ids[pos:], a contiguous window
        active = EMPTY_IDS
        cycle = 0
        freed_last_cycle = 0
        warmup_requests = min(decode_batch_target, total)

        while pos < total or active.size:
            # --- admission -----------------------------------------------------
            if pos < total:
                if cycle == 0:
                    take = min(max(decode_batch_target - active.size, 0), total - pos)
                else:
                    window = pool.input_lens_range(
                        pos, min(total, pos + adjuster.max_admit)
                    )
                    take = adjuster.admit_count(
                        window, active.size, freed_last_cycle
                    )
                admitted = all_ids[pos : pos + take]
                pos += take
                pool.set_admitted_cycle(admitted, cycle)
            else:
                admitted = EMPTY_IDS

            # --- encoding phase -------------------------------------------------
            encode_last_tasks: list[TaskRef] = []
            if admitted.size:
                groups = split_ids(admitted, micro_batches)
                encode_last_tasks = engine.encode_phase(plan, stages, groups)
                active = np.concatenate([active, admitted])

            if active.size == 0:
                cycle += 1
                freed_last_cycle = 0
                continue

            # --- decoding phase: N_D iterations ------------------------------------
            groups = split_ids(active, micro_batches)
            prev_iter_last: dict[int, TaskRef] = {}
            freed_last_cycle = 0
            for iteration in range(self.config.decode_iterations):
                outcome = engine.decode_iteration(
                    plan,
                    stages,
                    groups,
                    first_deps=encode_last_tasks if iteration == 0 else [],
                    prev_last=prev_iter_last,
                    track_peak=True,
                )
                freed_last_cycle += outcome.freed
                if not outcome.any_alive:
                    break
            active = pool.compact(active)
            cycle += 1
            if cycle > 100000:
                raise RuntimeError("RRA runner did not converge; check the schedule")

        engine.commit(plan)
        engine.bookkeeping.resolve(timeline)
        return self._collect(
            "exegpt-rra",
            pool,
            all_ids,
            timeline,
            engine,
            warmup_requests,
        )

    # -- WAA ---------------------------------------------------------------------------

    def _run_waa(self, trace: WorkloadTrace) -> RunResult:
        placement = self.placement
        encode_stages = placement.encode_stages
        decode_stages = placement.decode_stages
        if not encode_stages or not decode_stages:
            raise ValueError("WAA placement needs both encode and decode stages")
        micro_batches = self.config.micro_batches
        adjuster = self._make_adjuster()
        decode_batch_target = max(int(round(adjuster.target_decode_batch)), 1)

        timeline = Timeline()
        self.last_timeline = timeline
        pool = make_pool(trace, self.columnar)
        engine = self._make_engine(timeline, pool)
        handover = KVHandover()
        kv_layers = self.model.num_decoder_layers if self.decoder_only else 1
        # Offline construction never reads the clock: one plan, one batched
        # pricing pass at commit time.
        plan = engine.plan()

        all_ids = pool.ids()
        total = all_ids.size
        pos = 0
        active = EMPTY_IDS
        warmup_requests = min(decode_batch_target, total)
        prev_iter_last: dict[int, TaskRef] = {}
        iteration = 0
        freed_last_iteration = 0

        while pos < total or active.size or handover:
            # --- encoder side: admit and encode one batch per iteration ------------
            transfer_task: TaskRef | None = None
            if pos < total:
                window = pool.input_lens_range(
                    pos, min(total, pos + adjuster.max_admit)
                )
                take = adjuster.admit_count(
                    window, active.size, freed_last_iteration
                )
                if not take and active.size < decode_batch_target:
                    take = min(self.config.encode_batch, total - pos)
                admitted = all_ids[pos : pos + take]
                pos += take
                pool.set_admitted_cycle(admitted, iteration)
            else:
                admitted = EMPTY_IDS
            if admitted.size:
                _, enc_last = engine.encode_chain(
                    plan,
                    encode_stages,
                    admitted,
                    stage_key=lambda s: ("enc", s.stage_id),
                    track_peak=True,
                )
                transfer_task = engine.kv_transfer(
                    plan, admitted, enc_last, kv_layers, handover=handover
                )

            # --- merge the batch encoded in the previous iteration ------------------
            active, merge_deps = handover.merge_one(active, transfer_task)

            if active.size == 0:
                iteration += 1
                freed_last_iteration = 0
                if iteration > 200000:
                    raise RuntimeError("WAA runner did not converge")
                continue

            # --- decoder side: one pipelined iteration over the pool ----------------
            groups = split_ids(active, micro_batches)
            outcome = engine.decode_iteration(
                plan,
                decode_stages,
                groups,
                first_deps=merge_deps,
                prev_last=prev_iter_last,
                stage_key=lambda s: ("dec", s.stage_id),
                track_peak=True,
            )
            freed_last_iteration = outcome.freed
            active = pool.compact(active)
            iteration += 1
            if iteration > 200000:
                raise RuntimeError("WAA runner did not converge")

        engine.commit(plan)
        engine.bookkeeping.resolve(timeline)
        name = "exegpt-waa-m" if self.config.policy is SchedulePolicy.WAA_M else "exegpt-waa-c"
        return self._collect(
            name, pool, all_ids, timeline, engine, warmup_requests
        )

    # -- shared collection -------------------------------------------------------------

    def _collect(
        self,
        system: str,
        pool,
        ids: np.ndarray,
        timeline: Timeline,
        engine: ExecutionEngine,
        warmup_requests: int = 0,
    ) -> RunResult:
        peak_memory = self._peak_memory_gib(engine.peak_kv_tokens)
        return collect_pool_result(
            system=system,
            pool=pool,
            ids=ids,
            makespan_s=timeline.makespan_s,
            stage_utilization=timeline.stage_utilization(),
            stage_times=engine.stage_times,
            peak_memory_gib=peak_memory,
            extra={"num_tasks": float(timeline.num_tasks)},
            warmup_requests=warmup_requests,
        )

    def _peak_memory_gib(self, peak_kv_tokens: dict[int, float]) -> dict[object, float]:
        model = self.model
        result: dict[object, float] = {}
        for stage in self.placement.stages:
            tp = stage.tp_degree
            weights = stage_weight_bytes(model, stage) / tp
            weights += model.embedding_parameters * model.dtype_bytes / self.placement.num_gpus
            layers = stage.decoder_layers if stage.decoder_layers else 1
            kv = (
                peak_kv_tokens.get(stage.stage_id, 0.0)
                * layers
                * model.kv_bytes_per_token_per_layer()
                / tp
            )
            result[stage.stage_id] = (weights + kv) / GIB
        return result

"""XProfiler: per-layer execution-time profiles (Section 3).

The profiler measures, for a single encoding and decoding layer and for
every feasible tensor-parallel degree, (a) the attention kernel time swept
over batch sizes and sequence lengths and (b) the time of the rest of the
layer swept over input sizes, plus the tensor-/pipeline-parallel
synchronisation overheads.  On real hardware this takes up to two hours per
model/cluster pair (Section 7.7); here the measurements come from the
analytical kernel model, but the interface is identical: a
:class:`ProfileTable` of gridded measurements that the simulator
interpolates, so the scheduler never calls the kernel model directly.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cluster import Cluster
from repro.hardware.collectives import CollectiveModel
from repro.hardware.kernels import FP16_BYTES, KernelModel
from repro.models.spec import ModelSpec


def _log_grid(max_value: int, points: int) -> np.ndarray:
    """Geometrically spaced integer grid from 1 to ``max_value``."""
    if max_value < 1:
        raise ValueError("max_value must be >= 1")
    grid = np.unique(
        np.round(np.geomspace(1, max_value, num=min(points, max_value))).astype(int)
    )
    return grid


# Monotonic identity counter for ProfileTable instances.  Pricing caches key
# on this token so that two profiles with coincidentally equal work keys can
# never serve each other's cached prices.
_PRICING_TOKENS = itertools.count()


@dataclass
class MeasurementGrid:
    """2-D measurement grid with bilinear interpolation.

    Attributes:
        rows: Grid of the first axis (e.g. batch sizes), increasing.
        cols: Grid of the second axis (e.g. sequence lengths), increasing.
        values: ``values[i, j]`` is the measurement at ``(rows[i], cols[j])``.
    """

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=float)
        self.cols = np.asarray(self.cols, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (len(self.rows), len(self.cols)):
            raise ValueError("values shape must be (len(rows), len(cols))")

    def lookup(self, row: float, col: float) -> float:
        """Bilinear interpolation, clamped to the grid boundary."""
        row = float(np.clip(row, self.rows[0], self.rows[-1]))
        col = float(np.clip(col, self.cols[0], self.cols[-1]))
        i = int(np.searchsorted(self.rows, row) - 1)
        j = int(np.searchsorted(self.cols, col) - 1)
        i = max(0, min(i, len(self.rows) - 2)) if len(self.rows) > 1 else 0
        j = max(0, min(j, len(self.cols) - 2)) if len(self.cols) > 1 else 0
        if len(self.rows) == 1 and len(self.cols) == 1:
            return float(self.values[0, 0])
        if len(self.rows) == 1:
            return float(np.interp(col, self.cols, self.values[0]))
        if len(self.cols) == 1:
            return float(np.interp(row, self.rows, self.values[:, 0]))
        r0, r1 = self.rows[i], self.rows[i + 1]
        c0, c1 = self.cols[j], self.cols[j + 1]
        fr = 0.0 if r1 == r0 else (row - r0) / (r1 - r0)
        fc = 0.0 if c1 == c0 else (col - c0) / (c1 - c0)
        v00, v01 = self.values[i, j], self.values[i, j + 1]
        v10, v11 = self.values[i + 1, j], self.values[i + 1, j + 1]
        return float(
            v00 * (1 - fr) * (1 - fc)
            + v01 * (1 - fr) * fc
            + v10 * fr * (1 - fc)
            + v11 * fr * fc
        )

    def lookup_batch(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup` over arrays of query points.

        ``rows`` and ``cols`` broadcast against each other; the result has
        the broadcast shape.  Every element is computed with the same
        arithmetic (and the same operation order) as the scalar path, so
        ``lookup_batch(r, c)[i] == lookup(r[i], c[i])`` bit-for-bit.
        """
        row_arr, col_arr = np.broadcast_arrays(
            np.asarray(rows, dtype=float), np.asarray(cols, dtype=float)
        )
        row = np.clip(row_arr, self.rows[0], self.rows[-1])
        col = np.clip(col_arr, self.cols[0], self.cols[-1])
        if len(self.rows) == 1 and len(self.cols) == 1:
            return np.full(row.shape, float(self.values[0, 0]))
        if len(self.rows) == 1:
            return np.interp(col, self.cols, self.values[0])
        if len(self.cols) == 1:
            return np.interp(row, self.rows, self.values[:, 0])
        i = np.clip(np.searchsorted(self.rows, row) - 1, 0, len(self.rows) - 2)
        j = np.clip(np.searchsorted(self.cols, col) - 1, 0, len(self.cols) - 2)
        r0, r1 = self.rows[i], self.rows[i + 1]
        c0, c1 = self.cols[j], self.cols[j + 1]
        dr = r1 - r0
        dc = c1 - c0
        fr = np.where(dr == 0, 0.0, (row - r0) / np.where(dr == 0, 1.0, dr))
        fc = np.where(dc == 0, 0.0, (col - c0) / np.where(dc == 0, 1.0, dc))
        v00, v01 = self.values[i, j], self.values[i, j + 1]
        v10, v11 = self.values[i + 1, j], self.values[i + 1, j + 1]
        return (
            v00 * (1 - fr) * (1 - fc)
            + v01 * (1 - fr) * fc
            + v10 * fr * (1 - fc)
            + v11 * fr * fc
        )


@dataclass
class ProfileTable:
    """Interpolating store of per-layer timings for one model on one cluster.

    All times are in seconds for a *single* layer.  Keys of the grid
    dictionaries are tensor-parallel degrees.

    Attributes:
        model: The profiled model.
        cluster: The profiled cluster.
        tp_degrees: TP degrees covered by the profile.
        encode_grids: ``{tp: MeasurementGrid(batch, input_len)}`` for one
            encoding-phase layer (attention + dense parts combined).
        decode_grids: ``{tp: MeasurementGrid(batch, context_len)}`` for one
            decoding step of one layer.
    """

    model: ModelSpec
    cluster: Cluster
    tp_degrees: tuple[int, ...]
    encode_grids: dict[int, MeasurementGrid]
    decode_grids: dict[int, MeasurementGrid]
    _collectives: CollectiveModel = field(init=False, repr=False)
    _kernel: KernelModel = field(init=False, repr=False)
    pricing_token: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._collectives = CollectiveModel(self.cluster)
        self._kernel = KernelModel(self.cluster.gpu)
        self.pricing_token = next(_PRICING_TOKENS)

    # -- layer compute times ---------------------------------------------------

    def _grid_for(self, grids: dict[int, MeasurementGrid], tp: int) -> MeasurementGrid:
        if tp not in grids:
            known = ", ".join(str(k) for k in sorted(grids))
            raise KeyError(f"TP degree {tp} not profiled (available: {known})")
        return grids[tp]

    def encode_layer_time(self, tp: int, batch: float, input_len: float) -> float:
        """Compute time of one encoding-phase layer (no sync)."""
        if batch <= 0 or input_len <= 0:
            return 0.0
        return self._grid_for(self.encode_grids, tp).lookup(batch, input_len)

    def decode_layer_time(self, tp: int, batch: float, context_len: float) -> float:
        """Compute time of one decode step of one layer (no sync)."""
        if batch <= 0:
            return 0.0
        context_len = max(context_len, 1.0)
        return self._grid_for(self.decode_grids, tp).lookup(batch, context_len)

    def encode_layer_time_batch(
        self, tp: int, batch: np.ndarray, input_len: np.ndarray
    ) -> np.ndarray:
        """Array version of :meth:`encode_layer_time` (element-wise identical)."""
        batch = np.asarray(batch, dtype=float)
        input_len = np.asarray(input_len, dtype=float)
        values = self._grid_for(self.encode_grids, tp).lookup_batch(batch, input_len)
        return np.where((batch > 0) & (input_len > 0), values, 0.0)

    def decode_layer_time_batch(
        self, tp: int, batch: np.ndarray, context_len: np.ndarray
    ) -> np.ndarray:
        """Array version of :meth:`decode_layer_time` (element-wise identical)."""
        batch = np.asarray(batch, dtype=float)
        context_len = np.maximum(np.asarray(context_len, dtype=float), 1.0)
        values = self._grid_for(self.decode_grids, tp).lookup_batch(batch, context_len)
        return np.where(batch > 0, values, 0.0)

    # -- synchronisation -----------------------------------------------------

    def encode_sync_time(
        self, tp: int, batch: float, input_len: float, spans_nodes: bool
    ) -> float:
        """Tensor-parallel all-reduce overhead of one encoding layer.

        Megatron-style partitioning needs two all-reduces per encoder layer,
        each over the activation tensor of the processed tokens.
        """
        if tp <= 1 or batch <= 0 or input_len <= 0:
            return 0.0
        tensor_bytes = batch * input_len * self.model.hidden_size * FP16_BYTES
        one = self._collectives.allreduce_time(tensor_bytes, tp, spans_nodes)
        return 2.0 * one

    def decode_sync_time(self, tp: int, batch: float, spans_nodes: bool) -> float:
        """Tensor-parallel all-reduce overhead of one decoding layer (3 syncs)."""
        if tp <= 1 or batch <= 0:
            return 0.0
        tensor_bytes = batch * self.model.hidden_size * FP16_BYTES
        one = self._collectives.allreduce_time(tensor_bytes, tp, spans_nodes)
        syncs = 3.0 if self.model.decoder_has_cross_attention else 2.0
        return syncs * one

    def encode_sync_time_batch(
        self, tp: int, batch: np.ndarray, input_len: np.ndarray, spans_nodes: bool
    ) -> np.ndarray:
        """Array version of :meth:`encode_sync_time` (element-wise identical)."""
        batch = np.asarray(batch, dtype=float)
        input_len = np.asarray(input_len, dtype=float)
        shape = np.broadcast_shapes(batch.shape, input_len.shape)
        if tp <= 1:
            return np.zeros(shape)
        tensor_bytes = batch * input_len * self.model.hidden_size * FP16_BYTES
        one = self._collectives.allreduce_time_batch(
            np.maximum(tensor_bytes, 0.0), tp, spans_nodes
        )
        return np.where((batch > 0) & (input_len > 0), 2.0 * one, 0.0)

    def decode_sync_time_batch(
        self, tp: int, batch: np.ndarray, spans_nodes: bool
    ) -> np.ndarray:
        """Array version of :meth:`decode_sync_time` (element-wise identical)."""
        batch = np.asarray(batch, dtype=float)
        if tp <= 1:
            return np.zeros(batch.shape)
        tensor_bytes = batch * self.model.hidden_size * FP16_BYTES
        one = self._collectives.allreduce_time_batch(
            np.maximum(tensor_bytes, 0.0), tp, spans_nodes
        )
        syncs = 3.0 if self.model.decoder_has_cross_attention else 2.0
        return np.where(batch > 0, syncs * one, 0.0)

    # -- pipeline / KV-cache transfers -------------------------------------------

    def activation_transfer_time(
        self, batch: float, tokens_per_seq: float, src_gpu: int, dst_gpu: int
    ) -> float:
        """Time to ship a micro-batch's activations between pipeline stages."""
        if batch <= 0 or tokens_per_seq <= 0:
            return 0.0
        num_bytes = batch * tokens_per_seq * self.model.hidden_size * FP16_BYTES
        return self._collectives.pipeline_activation_time(num_bytes, src_gpu, dst_gpu)

    def kv_transfer_time(self, batch: float, tokens_per_seq: float, num_layers: int) -> float:
        """Time to hand a batch's KV-cache entries from encoder to decoder GPUs.

        WAA stages the copy through host memory (Section 3, XRunner).
        """
        if batch <= 0 or tokens_per_seq <= 0 or num_layers <= 0:
            return 0.0
        num_bytes = (
            batch
            * tokens_per_seq
            * num_layers
            * self.model.kv_bytes_per_token_per_layer()
        )
        return self._collectives.staged_host_transfer_time(num_bytes)

    def kv_transfer_time_batch(
        self, batch: np.ndarray, tokens_per_seq: np.ndarray, num_layers: int
    ) -> np.ndarray:
        """Array version of :meth:`kv_transfer_time` (element-wise identical)."""
        batch = np.asarray(batch, dtype=float)
        tokens_per_seq = np.asarray(tokens_per_seq, dtype=float)
        shape = np.broadcast_shapes(batch.shape, tokens_per_seq.shape)
        if num_layers <= 0:
            return np.zeros(shape)
        num_bytes = (
            batch
            * tokens_per_seq
            * num_layers
            * self.model.kv_bytes_per_token_per_layer()
        )
        times = self._collectives.staged_host_transfer_time_batch(
            np.maximum(num_bytes, 0.0)
        )
        return np.where((batch > 0) & (tokens_per_seq > 0), times, 0.0)

    def kv_compaction_time(self, batch: float, tokens_per_seq: float, num_layers: int) -> float:
        """Device-local copy time to compact KV entries after early termination."""
        if batch <= 0 or tokens_per_seq <= 0 or num_layers <= 0:
            return 0.0
        num_bytes = (
            batch
            * tokens_per_seq
            * num_layers
            * self.model.kv_bytes_per_token_per_layer()
        )
        return self._kernel.memcpy(num_bytes).total_s

    def kv_compaction_time_batch(
        self, batch: np.ndarray, tokens_per_seq: np.ndarray, num_layers: int
    ) -> np.ndarray:
        """Array version of :meth:`kv_compaction_time` (element-wise identical)."""
        batch = np.asarray(batch, dtype=float)
        tokens_per_seq = np.asarray(tokens_per_seq, dtype=float)
        shape = np.broadcast_shapes(batch.shape, tokens_per_seq.shape)
        if num_layers <= 0:
            return np.zeros(shape)
        num_bytes = (
            batch
            * tokens_per_seq
            * num_layers
            * self.model.kv_bytes_per_token_per_layer()
        )
        # Mirrors KernelModel.memcpy().total_s: roofline memory term plus the
        # fixed launch overhead, zero for empty copies.
        gpu = self.cluster.gpu
        times = 2.0 * num_bytes / gpu.memory_bandwidth_bytes_per_s + gpu.kernel_launch_us * 1e-6
        return np.where((batch > 0) & (tokens_per_seq > 0), times, 0.0)


class XProfiler:
    """Builds a :class:`ProfileTable` by sweeping the kernel cost model.

    Args:
        model: Model to profile.
        cluster: Cluster whose GPU/interconnect determines the timings.
        max_batch: Largest batch size included in the sweeps.
        max_seq_len: Largest sequence/context length included in the sweeps.
        batch_points / length_points: Grid resolution of the sweeps.
    """

    def __init__(
        self,
        model: ModelSpec,
        cluster: Cluster,
        max_batch: int = 1024,
        max_seq_len: int = 4096,
        batch_points: int = 24,
        length_points: int = 24,
    ) -> None:
        if max_batch < 1 or max_seq_len < 1:
            raise ValueError("max_batch and max_seq_len must be >= 1")
        self.model = model
        self.cluster = cluster
        self.max_batch = max_batch
        self.max_seq_len = max_seq_len
        self.batch_points = batch_points
        self.length_points = length_points
        self._kernel = KernelModel(cluster.gpu)

    def feasible_tp_degrees(self) -> tuple[int, ...]:
        """TP degrees to profile: powers of two up to one node's GPU count."""
        degrees = []
        degree = 1
        limit = min(self.cluster.gpus_per_node, self.cluster.num_gpus, self.model.num_heads)
        while degree <= limit:
            degrees.append(degree)
            degree *= 2
        return tuple(degrees)

    # -- single-point measurements (the "kernel launches") -----------------------

    def measure_encode_layer(self, tp: int, batch: float, input_len: float) -> float:
        """Time of one encoding-phase layer at one configuration point."""
        model = self.model
        attn = self._kernel.attention_layer_cost(
            batch=batch,
            query_len=input_len,
            self_key_len=input_len,
            num_heads=model.num_heads,
            head_dim=model.head_dim,
            tp_degree=tp,
        )
        dense = self._kernel.dense_layer_cost(
            tokens=batch * input_len,
            hidden_size=model.hidden_size,
            ffn_size=model.ffn_size,
            tp_degree=tp,
            has_cross_attention=False,
        )
        return attn.total_s + dense.total_s

    def measure_decode_layer(self, tp: int, batch: float, context_len: float) -> float:
        """Time of one decode step of one layer at one configuration point."""
        model = self.model
        cross_len = 0.0
        self_len = context_len
        if model.decoder_has_cross_attention:
            # T5-style decoders: self-attend to generated tokens only and
            # cross-attend to the encoded input; split the context estimate.
            self_len = max(context_len / 2.0, 1.0)
            cross_len = max(context_len / 2.0, 1.0)
        attn = self._kernel.attention_layer_cost(
            batch=batch,
            query_len=1.0,
            self_key_len=self_len,
            num_heads=model.num_heads,
            head_dim=model.head_dim,
            tp_degree=tp,
            cross_key_len=cross_len,
        )
        dense = self._kernel.dense_layer_cost(
            tokens=batch,
            hidden_size=model.hidden_size,
            ffn_size=model.ffn_size,
            tp_degree=tp,
            has_cross_attention=model.decoder_has_cross_attention,
        )
        return attn.total_s + dense.total_s

    # -- sweeps ------------------------------------------------------------------

    def profile(self) -> ProfileTable:
        """Run all sweeps and assemble the profile table."""
        batches = _log_grid(self.max_batch, self.batch_points)
        lengths = _log_grid(self.max_seq_len, self.length_points)
        tp_degrees = self.feasible_tp_degrees()
        encode_grids: dict[int, MeasurementGrid] = {}
        decode_grids: dict[int, MeasurementGrid] = {}
        for tp in tp_degrees:
            enc = np.empty((len(batches), len(lengths)))
            dec = np.empty((len(batches), len(lengths)))
            for i, batch in enumerate(batches):
                for j, length in enumerate(lengths):
                    enc[i, j] = self.measure_encode_layer(tp, float(batch), float(length))
                    dec[i, j] = self.measure_decode_layer(tp, float(batch), float(length))
            encode_grids[tp] = MeasurementGrid(batches, lengths, enc)
            decode_grids[tp] = MeasurementGrid(batches, lengths, dec)
        return ProfileTable(
            model=self.model,
            cluster=self.cluster,
            tp_degrees=tp_degrees,
            encode_grids=encode_grids,
            decode_grids=decode_grids,
        )

"""ExeGPT core: profiler, simulator, scheduler, runner and facade."""

from repro.core.allocation import (
    Placement,
    StagePlan,
    allocate_rra,
    allocate_waa,
    build_placement,
    waa_memory_weights,
)
from repro.core.config import (
    LatencyConstraint,
    ScheduleConfig,
    SchedulePolicy,
    TensorParallelConfig,
    UNBOUNDED,
)
from repro.core.distributions import (
    SequenceDistribution,
    average_context_length,
    completion_probability,
    decode_batch_for_encode_batch,
    expected_completion_fraction,
    expected_decode_batch_per_iteration,
)
from repro.core.dynamic import DynamicWorkloadAdjuster
from repro.core.exegpt import ExeGPT
from repro.core.profiler import MeasurementGrid, ProfileTable, XProfiler
from repro.core.runner import XRunner
from repro.core.scheduler import (
    SearchResult,
    SearchSpace,
    XScheduler,
    branch_and_bound,
    exhaustive_search,
    random_search,
)
from repro.core.simulator import ScheduleEstimate, XSimulator

__all__ = [
    "DynamicWorkloadAdjuster",
    "ExeGPT",
    "LatencyConstraint",
    "MeasurementGrid",
    "Placement",
    "ProfileTable",
    "ScheduleConfig",
    "ScheduleEstimate",
    "SchedulePolicy",
    "SearchResult",
    "SearchSpace",
    "SequenceDistribution",
    "StagePlan",
    "TensorParallelConfig",
    "UNBOUNDED",
    "XProfiler",
    "XRunner",
    "XScheduler",
    "XSimulator",
    "allocate_rra",
    "allocate_waa",
    "average_context_length",
    "branch_and_bound",
    "build_placement",
    "completion_probability",
    "decode_batch_for_encode_batch",
    "exhaustive_search",
    "expected_completion_fraction",
    "expected_decode_batch_per_iteration",
    "random_search",
    "waa_memory_weights",
]

"""Schedule configuration: the control variables of ExeGPT.

Section 4.2 of the paper defines four control mechanisms that trade
throughput against latency:

* **batch size** (encoder batch ``B_E``; the decoder batch ``B_D`` is derived
  from it and the output-length distribution),
* **decoder micro-batch** count ``B_m`` (WAA only),
* **partial tensor parallelism** -- a fixed TP degree applied to a subset of
  the GPUs,
* **encoding frequency** ``N_D`` -- the number of decoding iterations between
  encoding phases (RRA only).

A :class:`ScheduleConfig` bundles concrete values of these variables plus the
allocation policy; it is what XScheduler searches over, what XSimulator
evaluates, and what XRunner enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class SchedulePolicy(str, Enum):
    """Resource allocation / scheduling policy (Section 4.1)."""

    RRA = "rra"
    WAA_C = "waa-c"
    WAA_M = "waa-m"

    @property
    def is_waa(self) -> bool:
        """True for either WAA variant."""
        return self in (SchedulePolicy.WAA_C, SchedulePolicy.WAA_M)


@dataclass(frozen=True)
class TensorParallelConfig:
    """Partial tensor parallelism: degree plus the number of GPUs it covers.

    The scheduler fixes ``degree`` and varies ``num_gpus`` (the number of
    GPUs grouped into TP groups of that degree); remaining GPUs form
    single-GPU pipeline stages.  ``num_gpus`` must be a multiple of
    ``degree``.

    Attributes:
        degree: Tensor-parallel group size (1 disables TP).
        num_gpus: How many GPUs participate in TP groups.
    """

    degree: int = 1
    num_gpus: int = 0

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("TP degree must be >= 1")
        if self.num_gpus < 0:
            raise ValueError("num_gpus must be non-negative")
        if self.degree == 1 and self.num_gpus != 0:
            object.__setattr__(self, "num_gpus", 0)
        if self.degree > 1 and self.num_gpus % self.degree != 0:
            raise ValueError(
                f"num_gpus ({self.num_gpus}) must be a multiple of degree "
                f"({self.degree})"
            )

    @property
    def num_groups(self) -> int:
        """Number of TP groups formed."""
        if self.degree <= 1:
            return 0
        return self.num_gpus // self.degree

    def stages_for(self, total_gpus: int) -> int:
        """Pipeline depth when applied to ``total_gpus`` GPUs."""
        if self.num_gpus > total_gpus:
            raise ValueError("TP covers more GPUs than available")
        return (total_gpus - self.num_gpus) + self.num_groups


@dataclass(frozen=True)
class ScheduleConfig:
    """A complete, executable schedule.

    Attributes:
        policy: RRA, WAA-C or WAA-M.
        encode_batch: Encoder batch size ``B_E`` (new queries admitted per
            encoding phase).
        decode_iterations: ``N_D``, decoding iterations between encoding
            phases.  Meaningful for RRA; WAA behaves as ``N_D = 1``.
        micro_batches: Decoder micro-batch count ``B_m`` (WAA); RRA uses as
            many micro-batches as pipeline stages internally.
        tensor_parallel: Partial-TP configuration.
        decode_batch_override: Explicit decoder batch size; when ``None`` the
            steady-state value is derived from the output distribution.
    """

    policy: SchedulePolicy
    encode_batch: int
    decode_iterations: int = 1
    micro_batches: int = 1
    tensor_parallel: TensorParallelConfig = field(
        default_factory=TensorParallelConfig
    )
    decode_batch_override: int | None = None

    def __post_init__(self) -> None:
        if self.encode_batch < 1:
            raise ValueError("encode_batch must be >= 1")
        if self.decode_iterations < 1:
            raise ValueError("decode_iterations must be >= 1")
        if self.micro_batches < 1:
            raise ValueError("micro_batches must be >= 1")
        if self.decode_batch_override is not None and self.decode_batch_override < 1:
            raise ValueError("decode_batch_override must be >= 1 when given")
        if self.policy.is_waa and self.decode_iterations != 1:
            raise ValueError("WAA scheduling runs encoding every iteration (N_D = 1)")

    def with_(self, **changes) -> "ScheduleConfig":
        """A copy with some fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short human-readable description, e.g. for Table 6 rows."""
        parts = [f"{self.policy.value.upper()}", f"B_E={self.encode_batch}"]
        if self.policy is SchedulePolicy.RRA:
            parts.append(f"N_D={self.decode_iterations}")
        else:
            parts.append(f"B_m={self.micro_batches}")
        if self.tensor_parallel.degree > 1:
            parts.append(
                f"TP={self.tensor_parallel.degree}"
                f"x{self.tensor_parallel.num_groups}"
            )
        return ", ".join(parts)


@dataclass(frozen=True)
class LatencyConstraint:
    """A latency bound for the scheduling problem.

    The paper's bounds apply to generating a sequence of the 99th-percentile
    output length (SLA-(b)); ``float("inf")`` means unconstrained.

    Attributes:
        bound_s: Maximum allowed latency in seconds.
        target_length: The output length the bound applies to; ``None`` means
            the 99th-percentile length of the scheduled distribution.
        label: Optional display label ("10%", "30%", "70%", "Inf").
    """

    bound_s: float
    target_length: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.bound_s <= 0:
            raise ValueError("bound_s must be positive")

    @property
    def is_unbounded(self) -> bool:
        """True when the constraint never binds."""
        return self.bound_s == float("inf")

    def satisfied_by(self, latency_s: float, tolerance: float = 0.0) -> bool:
        """Whether ``latency_s`` satisfies the bound (with slack ``tolerance``)."""
        return latency_s <= self.bound_s + tolerance


UNBOUNDED = LatencyConstraint(bound_s=float("inf"), label="Inf")

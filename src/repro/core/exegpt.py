"""High-level ExeGPT facade.

:class:`ExeGPT` wires the four system components together the way Figure 2
describes: XProfiler measures per-layer times once per model/cluster,
XSimulator estimates timelines from those measurements and the sequence
distributions, XScheduler searches for the throughput-optimal schedule under
a latency bound, and XRunner enforces the chosen schedule on the (simulated)
cluster.  Most examples and experiments only need this class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LatencyConstraint, ScheduleConfig, SchedulePolicy
from repro.core.distributions import SequenceDistribution
from repro.core.profiler import ProfileTable, XProfiler
from repro.core.runner import XRunner
from repro.core.scheduler import SearchResult, XScheduler
from repro.core.simulator import ScheduleEstimate, XSimulator
from repro.engine.metrics import RunResult
from repro.hardware.cluster import Cluster, a40_cluster, a100_cluster
from repro.models.catalog import deployment_for, get_model
from repro.models.spec import ModelSpec
from repro.workloads.tasks import TaskSpec, get_task
from repro.workloads.trace import WorkloadTrace


@dataclass
class ExeGPT:
    """Constraint-aware LLM inference: profile, schedule and run.

    Attributes:
        model: The served model.
        cluster: The (sub-)cluster it is deployed on.
        input_distribution: Distribution of input sequence lengths.
        output_distribution: Distribution of output sequence lengths.
        max_encode_batch: Upper bound of the scheduler's ``B_E`` search range.
    """

    model: ModelSpec
    cluster: Cluster
    input_distribution: SequenceDistribution
    output_distribution: SequenceDistribution
    max_encode_batch: int = 128
    _profile: ProfileTable | None = None
    _simulator: XSimulator | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def for_task(
        cls,
        model_name: str,
        task: TaskSpec | str,
        num_gpus: int | None = None,
        cluster: Cluster | None = None,
        max_encode_batch: int = 128,
    ) -> "ExeGPT":
        """Build an instance for a catalog model and a Table 3 task.

        The cluster defaults to the Table 2 deployment of the model (e.g.
        OPT-13B on 4 A40 GPUs).
        """
        model = get_model(model_name)
        task_spec = get_task(task) if isinstance(task, str) else task
        if cluster is None:
            cluster_name, default_gpus = deployment_for(model_name)
            gpus = num_gpus or default_gpus
            cluster = (
                a100_cluster(gpus) if cluster_name == "A100" else a40_cluster(gpus)
            )
        elif num_gpus is not None and num_gpus != cluster.num_gpus:
            cluster = cluster.subcluster(num_gpus)
        return cls(
            model=model,
            cluster=cluster,
            input_distribution=task_spec.input_distribution(),
            output_distribution=task_spec.output_distribution(),
            max_encode_batch=max_encode_batch,
        )

    @classmethod
    def for_trace(
        cls,
        model_name: str,
        trace: WorkloadTrace,
        num_gpus: int | None = None,
        cluster: Cluster | None = None,
        max_encode_batch: int = 128,
    ) -> "ExeGPT":
        """Build an instance whose distributions are estimated from a trace."""
        instance = cls.for_task(
            model_name,
            task="S",
            num_gpus=num_gpus,
            cluster=cluster,
            max_encode_batch=max_encode_batch,
        )
        input_dist, output_dist = trace.estimate_distributions()
        instance.input_distribution = input_dist
        instance.output_distribution = output_dist
        return instance

    # -- components ----------------------------------------------------------------

    @property
    def profile(self) -> ProfileTable:
        """The (cached) per-layer profile of the model on the cluster."""
        if self._profile is None:
            max_len = max(
                self.input_distribution.max_len,
                self.output_distribution.max_len + self.input_distribution.max_len,
            )
            self._profile = XProfiler(
                self.model, self.cluster, max_seq_len=max(max_len, 64)
            ).profile()
        return self._profile

    @property
    def simulator(self) -> XSimulator:
        """The (cached) XSimulator bound to the current distributions."""
        if self._simulator is None:
            self._simulator = XSimulator(
                self.profile, self.input_distribution, self.output_distribution
            )
        return self._simulator

    def scheduler(self) -> XScheduler:
        """A fresh XScheduler over the current simulator."""
        return XScheduler(self.simulator, max_encode_batch=self.max_encode_batch)

    # -- workflow -------------------------------------------------------------------

    def update_distributions(
        self,
        input_distribution: SequenceDistribution | None = None,
        output_distribution: SequenceDistribution | None = None,
    ) -> None:
        """Swap in new sequence distributions (schedules must be re-searched)."""
        if input_distribution is not None:
            self.input_distribution = input_distribution
        if output_distribution is not None:
            self.output_distribution = output_distribution
        self._simulator = None

    def schedule(
        self,
        constraint: LatencyConstraint | float,
        policies: tuple[SchedulePolicy, ...] = (
            SchedulePolicy.RRA,
            SchedulePolicy.WAA_C,
            SchedulePolicy.WAA_M,
        ),
        method: str = "branch_and_bound",
    ) -> SearchResult:
        """Find the throughput-optimal schedule under ``constraint``."""
        if not isinstance(constraint, LatencyConstraint):
            constraint = LatencyConstraint(bound_s=float(constraint))
        return self.scheduler().schedule(constraint, policies=policies, method=method)

    def estimate(self, config: ScheduleConfig) -> ScheduleEstimate:
        """Estimate throughput/latency of an explicit schedule."""
        return self.simulator.estimate(config)

    def estimate_batch(
        self, configs: list[ScheduleConfig]
    ) -> list[ScheduleEstimate | None]:
        """Vectorized estimate of many explicit schedules (input order kept)."""
        return self.simulator.estimate_batch(configs)

    def run(
        self,
        trace: WorkloadTrace,
        config: ScheduleConfig,
        dynamic_adjustment: bool = True,
    ) -> RunResult:
        """Execute a trace under ``config`` on the simulated cluster."""
        runner = XRunner(self.simulator, config, dynamic_adjustment=dynamic_adjustment)
        return runner.run(trace)

    def schedule_and_run(
        self,
        trace: WorkloadTrace,
        constraint: LatencyConstraint | float,
        policies: tuple[SchedulePolicy, ...] = (
            SchedulePolicy.RRA,
            SchedulePolicy.WAA_C,
            SchedulePolicy.WAA_M,
        ),
    ) -> tuple[SearchResult, RunResult | None]:
        """Convenience: search for a schedule and, if found, execute the trace."""
        search = self.schedule(constraint, policies=policies)
        if search.best is None:
            return search, None
        return search, self.run(trace, search.best.config)

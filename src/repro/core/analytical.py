"""Analytical timeline building blocks shared by XSimulator and XRunner.

These functions turn a :class:`~repro.core.allocation.Placement` plus a
:class:`~repro.core.profiler.ProfileTable` into stage-level execution times
and steady-state pipeline periods.  They encode the pipeline algebra that
both the fast estimator (XSimulator) and the discrete-event runner share:

* a stage's time is its layer count times the profiled per-layer time plus
  the tensor-parallel synchronisation overhead,
* a pipelined decode iteration over ``m`` micro-batches and ``P`` stages has
  steady-state period ``max(m * t_bottleneck, sum_j t_j)`` -- the resource
  constraint of the bottleneck stage versus the autoregressive traversal
  constraint -- which is what makes decoder micro-batches (WAA) and the
  choice of ``N_D`` (RRA) genuine latency/throughput trade-offs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Placement, StagePlan, stage_weight_bytes
from repro.core.profiler import ProfileTable


@dataclass(frozen=True)
class StageTimes:
    """Per-stage execution times for one (micro-)batch.

    Attributes:
        times: Stage times in pipeline order, seconds.
    """

    times: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", tuple(float(t) for t in self.times))

    @property
    def bottleneck(self) -> float:
        """Time of the slowest stage."""
        return max(self.times) if self.times else 0.0

    @property
    def traversal(self) -> float:
        """Sum of all stage times: time for one micro-batch to cross the pipeline."""
        return float(sum(self.times))

    @property
    def num_stages(self) -> int:
        """Pipeline depth."""
        return len(self.times)


def encode_stage_time(
    profile: ProfileTable,
    placement: Placement,
    stage: StagePlan,
    batch: float,
    avg_input_len: float,
) -> float:
    """Time for ``stage`` to encode a (micro-)batch of ``batch`` sequences."""
    if batch <= 0 or stage.encoder_layers == 0:
        return 0.0
    spans = placement.stage_spans_nodes(stage)
    per_layer = profile.encode_layer_time(stage.tp_degree, batch, avg_input_len)
    sync = profile.encode_sync_time(stage.tp_degree, batch, avg_input_len, spans)
    return stage.encoder_layers * (per_layer + sync)


def decode_stage_time(
    profile: ProfileTable,
    placement: Placement,
    stage: StagePlan,
    batch: float,
    avg_context_len: float,
) -> float:
    """Time for ``stage`` to run one decode step for a (micro-)batch."""
    if batch <= 0 or stage.decoder_layers == 0:
        return 0.0
    spans = placement.stage_spans_nodes(stage)
    per_layer = profile.decode_layer_time(stage.tp_degree, batch, avg_context_len)
    sync = profile.decode_sync_time(stage.tp_degree, batch, spans)
    return stage.decoder_layers * (per_layer + sync)


@dataclass(frozen=True)
class StageTimesBatch:
    """Per-stage execution times for many (micro-)batches at once.

    The vectorized counterpart of :class:`StageTimes`: ``times[s, p]`` is the
    time of stage ``s`` for evaluation point ``p``.  Column ``p`` holds
    exactly the values ``StageTimes.times`` would hold for point ``p``.

    Attributes:
        times: Array of shape ``(num_stages, num_points)``, seconds.
    """

    times: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        if times.ndim != 2:
            raise ValueError("times must be a (num_stages, num_points) array")
        object.__setattr__(self, "times", times)

    @property
    def bottleneck(self) -> np.ndarray:
        """Per-point time of the slowest stage."""
        if self.times.shape[0] == 0:
            return np.zeros(self.times.shape[1])
        return np.max(self.times, axis=0)

    @property
    def traversal(self) -> np.ndarray:
        """Per-point sum of all stage times (pipeline traversal)."""
        if self.times.shape[0] == 0:
            return np.zeros(self.times.shape[1])
        return np.add.reduce(self.times, axis=0)

    @property
    def num_stages(self) -> int:
        """Pipeline depth."""
        return int(self.times.shape[0])

    @property
    def num_points(self) -> int:
        """Number of evaluation points."""
        return int(self.times.shape[1])


def encode_stage_times(
    profile: ProfileTable,
    placement: Placement,
    batch: float,
    avg_input_len: float,
) -> StageTimes:
    """Encode-phase times of all encode stages for one (micro-)batch."""
    return StageTimes(
        tuple(
            encode_stage_time(profile, placement, stage, batch, avg_input_len)
            for stage in placement.encode_stages
        )
    )


def decode_stage_times(
    profile: ProfileTable,
    placement: Placement,
    batch: float,
    avg_context_len: float,
) -> StageTimes:
    """Decode-step times of all decode stages for one (micro-)batch."""
    return StageTimes(
        tuple(
            decode_stage_time(profile, placement, stage, batch, avg_context_len)
            for stage in placement.decode_stages
        )
    )


def encode_stage_times_batch(
    profile: ProfileTable,
    placement: Placement,
    batch: np.ndarray,
    avg_input_len: float,
) -> StageTimesBatch:
    """Encode-phase times of all encode stages for many (micro-)batches.

    ``batch`` is a 1-D array of micro-batch sizes (one per evaluation point).
    Stages sharing a (TP degree, node-spanning) signature reuse one grid
    lookup, so the cost is one vectorized interpolation per distinct TP
    group rather than one scalar lookup per (stage, point).
    """
    batch = np.asarray(batch, dtype=float)
    stages = placement.encode_stages
    shared: dict[tuple[int, bool], np.ndarray] = {}
    rows: list[np.ndarray] = []
    for stage in stages:
        if stage.encoder_layers == 0:
            rows.append(np.zeros_like(batch))
            continue
        key = (stage.tp_degree, placement.stage_spans_nodes(stage))
        if key not in shared:
            tp, spans = key
            per_layer = profile.encode_layer_time_batch(tp, batch, avg_input_len)
            sync = profile.encode_sync_time_batch(tp, batch, avg_input_len, spans)
            shared[key] = per_layer + sync
        rows.append(stage.encoder_layers * shared[key])
    if not rows:
        return StageTimesBatch(np.zeros((0, batch.size)))
    return StageTimesBatch(np.stack(rows))


def decode_stage_times_batch(
    profile: ProfileTable,
    placement: Placement,
    batch: np.ndarray,
    avg_context_len: float,
) -> StageTimesBatch:
    """Decode-step times of all decode stages for many (micro-)batches."""
    batch = np.asarray(batch, dtype=float)
    stages = placement.decode_stages
    shared: dict[tuple[int, bool], np.ndarray] = {}
    rows: list[np.ndarray] = []
    for stage in stages:
        if stage.decoder_layers == 0:
            rows.append(np.zeros_like(batch))
            continue
        key = (stage.tp_degree, placement.stage_spans_nodes(stage))
        if key not in shared:
            tp, spans = key
            per_layer = profile.decode_layer_time_batch(tp, batch, avg_context_len)
            sync = profile.decode_sync_time_batch(tp, batch, spans)
            shared[key] = per_layer + sync
        rows.append(stage.decoder_layers * shared[key])
    if not rows:
        return StageTimesBatch(np.zeros((0, batch.size)))
    return StageTimesBatch(np.stack(rows))


# --- pipeline algebra -------------------------------------------------------------


def pipelined_iteration_period(stage_times: StageTimes, micro_batches: int) -> float:
    """Steady-state wall time of one decode iteration over ``micro_batches``.

    ``stage_times`` are per-*micro-batch* stage times.  The period is the
    larger of the bottleneck-stage occupancy (``m * t_max``) and the
    autoregressive traversal (``sum_j t_j``): the next iteration of a
    micro-batch can neither start before the bottleneck stage has drained all
    micro-batches of the current iteration nor before the micro-batch's own
    token has left the last stage.
    """
    if micro_batches < 1:
        raise ValueError("micro_batches must be >= 1")
    return max(micro_batches * stage_times.bottleneck, stage_times.traversal)


def pipelined_batch_completion(stage_times: StageTimes, micro_batches: int) -> float:
    """Wall time for ``micro_batches`` independent micro-batches to clear a pipeline.

    Classic pipeline fill + steady state: ``sum_j t_j + (m - 1) * t_max``.
    Used for the encoding phase, where micro-batches have no mutual
    dependency.
    """
    if micro_batches < 1:
        raise ValueError("micro_batches must be >= 1")
    return stage_times.traversal + (micro_batches - 1) * stage_times.bottleneck


def token_latency(stage_times: StageTimes) -> float:
    """Latency contribution of generating one token: pipeline traversal time."""
    return stage_times.traversal


def pipelined_iteration_period_batch(
    stage_times: StageTimesBatch, micro_batches: int | np.ndarray
) -> np.ndarray:
    """Vectorized :func:`pipelined_iteration_period`.

    ``micro_batches`` may be a scalar or a per-point array (WAA searches vary
    ``B_m`` per configuration).
    """
    micro = np.asarray(micro_batches)
    if np.any(micro < 1):
        raise ValueError("micro_batches must be >= 1")
    return np.maximum(micro * stage_times.bottleneck, stage_times.traversal)


def pipelined_batch_completion_batch(
    stage_times: StageTimesBatch, micro_batches: int | np.ndarray
) -> np.ndarray:
    """Vectorized :func:`pipelined_batch_completion`."""
    micro = np.asarray(micro_batches)
    if np.any(micro < 1):
        raise ValueError("micro_batches must be >= 1")
    return stage_times.traversal + (micro - 1) * stage_times.bottleneck


# --- memory estimation --------------------------------------------------------------


@dataclass(frozen=True)
class StageMemory:
    """Estimated memory footprint of one stage (per GPU of its TP group).

    Attributes:
        stage_id: The stage.
        role: ``both`` / ``encode`` / ``decode``.
        weights_gib: Weight bytes per GPU, in GiB.
        kv_cache_gib: Steady-state KV-cache bytes per GPU, in GiB.
        activation_gib: Peak activation bytes per GPU, in GiB.
        capacity_gib: Usable device capacity in GiB.
    """

    stage_id: int
    role: str
    weights_gib: float
    kv_cache_gib: float
    activation_gib: float
    capacity_gib: float

    @property
    def total_gib(self) -> float:
        """Total used memory per GPU in GiB."""
        return self.weights_gib + self.kv_cache_gib + self.activation_gib

    @property
    def fits(self) -> bool:
        """Whether the stage fits in device memory."""
        return self.total_gib <= self.capacity_gib


GIB = 1024 ** 3
_RESERVED_FRACTION = 0.08


def estimate_stage_memory(
    placement: Placement,
    stage: StagePlan,
    encode_batch: float,
    decode_batch: float,
    avg_input_len: float,
    avg_context_len: float,
) -> StageMemory:
    """Estimate one stage's per-GPU memory use under a schedule.

    Encoder-role stages hold their encoder layers' weights (for decoder-only
    models these are decoder layers, i.e. the replicated copy) plus prefill
    activations; decoder-role stages hold decoder weights plus the standing
    KV cache of the in-flight decode batch; RRA stages hold both.
    """
    model = placement.model
    tp = stage.tp_degree
    weights = stage_weight_bytes(model, stage) / tp
    kv = 0.0
    act = 0.0
    if stage.encoder_layers > 0:
        act += (
            4.0
            * encode_batch
            * avg_input_len
            * model.hidden_size
            * model.dtype_bytes
            / tp
        )
        if model.is_encoder_decoder:
            # Encoder output kept for cross-attention until handover.
            kv += (
                encode_batch
                * avg_input_len
                * model.hidden_size
                * model.dtype_bytes
                / tp
            )
    if stage.decoder_layers > 0:
        kv += (
            decode_batch
            * avg_context_len
            * stage.decoder_layers
            * model.kv_bytes_per_token_per_layer()
            / tp
        )
        act += 2.0 * decode_batch * model.hidden_size * model.dtype_bytes / tp
    # Embedding / LM-head weights live on the first and last stages; spread the
    # cost evenly as an approximation.
    weights += model.embedding_parameters * model.dtype_bytes / placement.num_gpus
    capacity = placement.cluster.gpu.memory_bytes * (1.0 - _RESERVED_FRACTION)
    return StageMemory(
        stage_id=stage.stage_id,
        role=stage.role,
        weights_gib=weights / GIB,
        kv_cache_gib=kv / GIB,
        activation_gib=act / GIB,
        capacity_gib=capacity / GIB,
    )


def estimate_placement_memory(
    placement: Placement,
    encode_batch: float,
    decode_batch: float,
    avg_input_len: float,
    avg_context_len: float,
) -> list[StageMemory]:
    """Memory estimate for every stage of a placement."""
    return [
        estimate_stage_memory(
            placement, stage, encode_batch, decode_batch, avg_input_len, avg_context_len
        )
        for stage in placement.stages
    ]


def placement_fits_memory(stage_memory: list[StageMemory]) -> bool:
    """Whether every stage of a placement fits on its GPUs."""
    return all(m.fits for m in stage_memory)


@dataclass(frozen=True)
class StageMemoryBatch:
    """Per-GPU memory estimate of one stage across many configurations.

    The vectorized counterpart of :class:`StageMemory`: ``kv_cache_gib[p]``
    and ``activation_gib[p]`` vary with the evaluated configuration while the
    weight and capacity terms are configuration-independent.

    Attributes:
        stage_id: The stage.
        role: ``both`` / ``encode`` / ``decode``.
        weights_gib: Weight bytes per GPU, in GiB (scalar).
        kv_cache_gib: Per-point steady-state KV-cache GiB per GPU.
        activation_gib: Per-point peak activation GiB per GPU.
        capacity_gib: Usable device capacity in GiB (scalar).
    """

    stage_id: int
    role: str
    weights_gib: float
    kv_cache_gib: np.ndarray
    activation_gib: np.ndarray
    capacity_gib: float

    @property
    def total_gib(self) -> np.ndarray:
        """Per-point total used memory per GPU in GiB."""
        return self.weights_gib + self.kv_cache_gib + self.activation_gib

    @property
    def fits(self) -> np.ndarray:
        """Per-point boolean: does the stage fit in device memory?"""
        return self.total_gib <= self.capacity_gib

    def at(self, point: int) -> StageMemory:
        """The scalar :class:`StageMemory` of one evaluation point."""
        return StageMemory(
            stage_id=self.stage_id,
            role=self.role,
            weights_gib=self.weights_gib,
            kv_cache_gib=float(self.kv_cache_gib[point]),
            activation_gib=float(self.activation_gib[point]),
            capacity_gib=self.capacity_gib,
        )


def estimate_stage_memory_batch(
    placement: Placement,
    stage: StagePlan,
    encode_batch: np.ndarray,
    decode_batch: np.ndarray,
    avg_input_len: float,
    avg_context_len: float,
) -> StageMemoryBatch:
    """Vectorized :func:`estimate_stage_memory` over per-point batch sizes.

    Element-wise identical to the scalar function (same arithmetic in the
    same order), so feasibility verdicts cannot diverge between the scalar
    and batched estimators.
    """
    encode_batch = np.asarray(encode_batch, dtype=float)
    decode_batch = np.asarray(decode_batch, dtype=float)
    model = placement.model
    tp = stage.tp_degree
    weights = stage_weight_bytes(model, stage) / tp
    kv = np.zeros_like(encode_batch)
    act = np.zeros_like(encode_batch)
    if stage.encoder_layers > 0:
        act = act + (
            4.0
            * encode_batch
            * avg_input_len
            * model.hidden_size
            * model.dtype_bytes
            / tp
        )
        if model.is_encoder_decoder:
            kv = kv + (
                encode_batch
                * avg_input_len
                * model.hidden_size
                * model.dtype_bytes
                / tp
            )
    if stage.decoder_layers > 0:
        kv = kv + (
            decode_batch
            * avg_context_len
            * stage.decoder_layers
            * model.kv_bytes_per_token_per_layer()
            / tp
        )
        act = act + 2.0 * decode_batch * model.hidden_size * model.dtype_bytes / tp
    weights += model.embedding_parameters * model.dtype_bytes / placement.num_gpus
    capacity = placement.cluster.gpu.memory_bytes * (1.0 - _RESERVED_FRACTION)
    return StageMemoryBatch(
        stage_id=stage.stage_id,
        role=stage.role,
        weights_gib=weights / GIB,
        kv_cache_gib=kv / GIB,
        activation_gib=act / GIB,
        capacity_gib=capacity / GIB,
    )


def estimate_placement_memory_batch(
    placement: Placement,
    encode_batch: np.ndarray,
    decode_batch: np.ndarray,
    avg_input_len: float,
    avg_context_len: float,
) -> list[StageMemoryBatch]:
    """Vectorized memory estimate for every stage of a placement."""
    return [
        estimate_stage_memory_batch(
            placement, stage, encode_batch, decode_batch, avg_input_len, avg_context_len
        )
        for stage in placement.stages
    ]


def placement_fits_memory_batch(stage_memory: list[StageMemoryBatch]) -> np.ndarray:
    """Per-point boolean: does every stage of the placement fit on its GPUs?"""
    if not stage_memory:
        raise ValueError("placement has no stages")
    fits = stage_memory[0].fits
    for mem in stage_memory[1:]:
        fits = fits & mem.fits
    return fits

"""Analytical timeline building blocks shared by XSimulator and XRunner.

These functions turn a :class:`~repro.core.allocation.Placement` plus a
:class:`~repro.core.profiler.ProfileTable` into stage-level execution times
and steady-state pipeline periods.  They encode the pipeline algebra that
both the fast estimator (XSimulator) and the discrete-event runner share:

* a stage's time is its layer count times the profiled per-layer time plus
  the tensor-parallel synchronisation overhead,
* a pipelined decode iteration over ``m`` micro-batches and ``P`` stages has
  steady-state period ``max(m * t_bottleneck, sum_j t_j)`` -- the resource
  constraint of the bottleneck stage versus the autoregressive traversal
  constraint -- which is what makes decoder micro-batches (WAA) and the
  choice of ``N_D`` (RRA) genuine latency/throughput trade-offs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import Placement, StagePlan, stage_weight_bytes
from repro.core.profiler import ProfileTable


@dataclass(frozen=True)
class StageTimes:
    """Per-stage execution times for one (micro-)batch.

    Attributes:
        times: Stage times in pipeline order, seconds.
    """

    times: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", tuple(float(t) for t in self.times))

    @property
    def bottleneck(self) -> float:
        """Time of the slowest stage."""
        return max(self.times) if self.times else 0.0

    @property
    def traversal(self) -> float:
        """Sum of all stage times: time for one micro-batch to cross the pipeline."""
        return float(sum(self.times))

    @property
    def num_stages(self) -> int:
        """Pipeline depth."""
        return len(self.times)


def encode_stage_time(
    profile: ProfileTable,
    placement: Placement,
    stage: StagePlan,
    batch: float,
    avg_input_len: float,
) -> float:
    """Time for ``stage`` to encode a (micro-)batch of ``batch`` sequences."""
    if batch <= 0 or stage.encoder_layers == 0:
        return 0.0
    spans = placement.stage_spans_nodes(stage)
    per_layer = profile.encode_layer_time(stage.tp_degree, batch, avg_input_len)
    sync = profile.encode_sync_time(stage.tp_degree, batch, avg_input_len, spans)
    return stage.encoder_layers * (per_layer + sync)


def decode_stage_time(
    profile: ProfileTable,
    placement: Placement,
    stage: StagePlan,
    batch: float,
    avg_context_len: float,
) -> float:
    """Time for ``stage`` to run one decode step for a (micro-)batch."""
    if batch <= 0 or stage.decoder_layers == 0:
        return 0.0
    spans = placement.stage_spans_nodes(stage)
    per_layer = profile.decode_layer_time(stage.tp_degree, batch, avg_context_len)
    sync = profile.decode_sync_time(stage.tp_degree, batch, spans)
    return stage.decoder_layers * (per_layer + sync)


def encode_stage_times(
    profile: ProfileTable,
    placement: Placement,
    batch: float,
    avg_input_len: float,
) -> StageTimes:
    """Encode-phase times of all encode stages for one (micro-)batch."""
    return StageTimes(
        tuple(
            encode_stage_time(profile, placement, stage, batch, avg_input_len)
            for stage in placement.encode_stages
        )
    )


def decode_stage_times(
    profile: ProfileTable,
    placement: Placement,
    batch: float,
    avg_context_len: float,
) -> StageTimes:
    """Decode-step times of all decode stages for one (micro-)batch."""
    return StageTimes(
        tuple(
            decode_stage_time(profile, placement, stage, batch, avg_context_len)
            for stage in placement.decode_stages
        )
    )


# --- pipeline algebra -------------------------------------------------------------


def pipelined_iteration_period(stage_times: StageTimes, micro_batches: int) -> float:
    """Steady-state wall time of one decode iteration over ``micro_batches``.

    ``stage_times`` are per-*micro-batch* stage times.  The period is the
    larger of the bottleneck-stage occupancy (``m * t_max``) and the
    autoregressive traversal (``sum_j t_j``): the next iteration of a
    micro-batch can neither start before the bottleneck stage has drained all
    micro-batches of the current iteration nor before the micro-batch's own
    token has left the last stage.
    """
    if micro_batches < 1:
        raise ValueError("micro_batches must be >= 1")
    return max(micro_batches * stage_times.bottleneck, stage_times.traversal)


def pipelined_batch_completion(stage_times: StageTimes, micro_batches: int) -> float:
    """Wall time for ``micro_batches`` independent micro-batches to clear a pipeline.

    Classic pipeline fill + steady state: ``sum_j t_j + (m - 1) * t_max``.
    Used for the encoding phase, where micro-batches have no mutual
    dependency.
    """
    if micro_batches < 1:
        raise ValueError("micro_batches must be >= 1")
    return stage_times.traversal + (micro_batches - 1) * stage_times.bottleneck


def token_latency(stage_times: StageTimes) -> float:
    """Latency contribution of generating one token: pipeline traversal time."""
    return stage_times.traversal


# --- memory estimation --------------------------------------------------------------


@dataclass(frozen=True)
class StageMemory:
    """Estimated memory footprint of one stage (per GPU of its TP group).

    Attributes:
        stage_id: The stage.
        role: ``both`` / ``encode`` / ``decode``.
        weights_gib: Weight bytes per GPU, in GiB.
        kv_cache_gib: Steady-state KV-cache bytes per GPU, in GiB.
        activation_gib: Peak activation bytes per GPU, in GiB.
        capacity_gib: Usable device capacity in GiB.
    """

    stage_id: int
    role: str
    weights_gib: float
    kv_cache_gib: float
    activation_gib: float
    capacity_gib: float

    @property
    def total_gib(self) -> float:
        """Total used memory per GPU in GiB."""
        return self.weights_gib + self.kv_cache_gib + self.activation_gib

    @property
    def fits(self) -> bool:
        """Whether the stage fits in device memory."""
        return self.total_gib <= self.capacity_gib


GIB = 1024 ** 3
_RESERVED_FRACTION = 0.08


def estimate_stage_memory(
    placement: Placement,
    stage: StagePlan,
    encode_batch: float,
    decode_batch: float,
    avg_input_len: float,
    avg_context_len: float,
) -> StageMemory:
    """Estimate one stage's per-GPU memory use under a schedule.

    Encoder-role stages hold their encoder layers' weights (for decoder-only
    models these are decoder layers, i.e. the replicated copy) plus prefill
    activations; decoder-role stages hold decoder weights plus the standing
    KV cache of the in-flight decode batch; RRA stages hold both.
    """
    model = placement.model
    tp = stage.tp_degree
    weights = stage_weight_bytes(model, stage) / tp
    kv = 0.0
    act = 0.0
    if stage.encoder_layers > 0:
        act += (
            4.0
            * encode_batch
            * avg_input_len
            * model.hidden_size
            * model.dtype_bytes
            / tp
        )
        if model.is_encoder_decoder:
            # Encoder output kept for cross-attention until handover.
            kv += (
                encode_batch
                * avg_input_len
                * model.hidden_size
                * model.dtype_bytes
                / tp
            )
    if stage.decoder_layers > 0:
        kv += (
            decode_batch
            * avg_context_len
            * stage.decoder_layers
            * model.kv_bytes_per_token_per_layer()
            / tp
        )
        act += 2.0 * decode_batch * model.hidden_size * model.dtype_bytes / tp
    # Embedding / LM-head weights live on the first and last stages; spread the
    # cost evenly as an approximation.
    weights += model.embedding_parameters * model.dtype_bytes / placement.num_gpus
    capacity = placement.cluster.gpu.memory_bytes * (1.0 - _RESERVED_FRACTION)
    return StageMemory(
        stage_id=stage.stage_id,
        role=stage.role,
        weights_gib=weights / GIB,
        kv_cache_gib=kv / GIB,
        activation_gib=act / GIB,
        capacity_gib=capacity / GIB,
    )


def estimate_placement_memory(
    placement: Placement,
    encode_batch: float,
    decode_batch: float,
    avg_input_len: float,
    avg_context_len: float,
) -> list[StageMemory]:
    """Memory estimate for every stage of a placement."""
    return [
        estimate_stage_memory(
            placement, stage, encode_batch, decode_batch, avg_input_len, avg_context_len
        )
        for stage in placement.stages
    ]


def placement_fits_memory(stage_memory: list[StageMemory]) -> bool:
    """Whether every stage of a placement fits on its GPUs."""
    return all(m.fits for m in stage_memory)

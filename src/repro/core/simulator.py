"""XSimulator: estimate throughput and latency of a schedule (Section 6).

The simulator combines the profiled per-layer times, the allocation produced
by the chosen policy and the input/output sequence-length distributions to
construct the expected execution timeline of a schedule, without running any
requests.  It returns a :class:`ScheduleEstimate` with the throughput, the
latency of generating the target (99th-percentile) sequence length, and a
per-stage memory estimate used to reject infeasible schedules -- which is
what rules WAA out for the 175B/341B models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import (
    Placement,
    build_placement,
    waa_memory_weights,
)
from repro.core.analytical import (
    StageMemory,
    StageTimes,
    decode_stage_times,
    encode_stage_times,
    estimate_placement_memory,
    pipelined_batch_completion,
    pipelined_iteration_period,
    placement_fits_memory,
    token_latency,
)
from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.core.distributions import (
    SequenceDistribution,
    average_context_length,
    decode_batch_for_encode_batch,
    expected_decode_batch_per_iteration,
)
from repro.core.profiler import ProfileTable


@dataclass(frozen=True)
class ScheduleEstimate:
    """Simulator output for one schedule configuration.

    Attributes:
        config: The evaluated schedule.
        throughput_seq_per_s: Completed sequences per second at steady state.
        throughput_tokens_per_s: Generated tokens per second at steady state.
        latency_s: Expected latency of generating ``target_length`` tokens,
            measured from the start of the request's encoding phase.
        target_length: Output length the latency refers to (99th percentile
            by default).
        decode_batch: Steady-state decoder batch size ``B_D``.
        cycle_time_s: RRA cycle time (encode phase + ``N_D`` decode
            iterations) or the WAA per-iteration period.
        memory_feasible: Whether every stage fits in GPU memory.
        stage_memory: Per-stage memory breakdown.
        placement: The GPU/layer placement behind the estimate.
    """

    config: ScheduleConfig
    throughput_seq_per_s: float
    throughput_tokens_per_s: float
    latency_s: float
    target_length: int
    decode_batch: float
    cycle_time_s: float
    memory_feasible: bool
    stage_memory: tuple[StageMemory, ...]
    placement: Placement

    @property
    def feasible(self) -> bool:
        """Feasible means the schedule fits in memory."""
        return self.memory_feasible

    def satisfies(self, latency_bound_s: float, tolerance: float = 0.0) -> bool:
        """Whether the estimate meets a latency bound (and is feasible)."""
        return self.feasible and self.latency_s <= latency_bound_s + tolerance


class XSimulator:
    """Constructs execution timelines from profile results and distributions.

    Args:
        profile: Profiled per-layer execution times.
        input_distribution: Distribution ``P_E(S)`` of input lengths.
        output_distribution: Distribution ``P_D(S)`` of output lengths.
    """

    def __init__(
        self,
        profile: ProfileTable,
        input_distribution: SequenceDistribution,
        output_distribution: SequenceDistribution,
    ) -> None:
        self.profile = profile
        self.model = profile.model
        self.cluster = profile.cluster
        self.input_distribution = input_distribution
        self.output_distribution = output_distribution

    # -- public API -----------------------------------------------------------

    def estimate(
        self,
        config: ScheduleConfig,
        target_length: int | None = None,
    ) -> ScheduleEstimate:
        """Estimate throughput/latency/memory of ``config``.

        Args:
            config: Schedule configuration to evaluate.
            target_length: Output length whose generation latency is reported;
                defaults to the 99th percentile of the output distribution.
        """
        target = target_length or self.output_distribution.percentile(99)
        if config.policy is SchedulePolicy.RRA:
            return self._estimate_rra(config, target)
        return self._estimate_waa(config, target)

    def build_placement(self, config: ScheduleConfig) -> Placement:
        """The GPU/layer placement a config implies (exposed for the runner)."""
        if config.policy is SchedulePolicy.RRA:
            return build_placement(
                SchedulePolicy.RRA, self.model, self.cluster, config.tensor_parallel
            )
        encode_w, decode_w = self._waa_weights(config)
        return build_placement(
            config.policy,
            self.model,
            self.cluster,
            config.tensor_parallel,
            encode_weight=encode_w,
            decode_weight=decode_w,
        )

    def derived_decode_batch(self, config: ScheduleConfig) -> float:
        """Steady-state decoder batch ``B_D`` implied by ``B_E`` (Section 6)."""
        if config.decode_batch_override is not None:
            return float(config.decode_batch_override)
        if config.policy is SchedulePolicy.RRA:
            return decode_batch_for_encode_batch(
                config.encode_batch,
                self.output_distribution,
                config.decode_iterations,
            )
        return config.encode_batch * self.output_distribution.mean

    # -- RRA ---------------------------------------------------------------------

    def _estimate_rra(self, config: ScheduleConfig, target: int) -> ScheduleEstimate:
        placement = self.build_placement(config)
        avg_input = self.input_distribution.mean
        avg_context = average_context_length(
            self.input_distribution,
            self.output_distribution,
            decoder_only=not self.model.is_encoder_decoder,
        )
        decode_batch = self.derived_decode_batch(config)
        num_stages = len(placement.decode_stages)
        micro_batches = max(num_stages, 1)

        # Encoding phase: B_E split into as many micro-batches as stages.
        enc_micro = config.encode_batch / micro_batches
        enc_times = encode_stage_times(self.profile, placement, enc_micro, avg_input)
        encode_phase = pipelined_batch_completion(enc_times, micro_batches)

        # Decoding phase: N_D iterations over a shrinking batch.
        per_iter_batches = expected_decode_batch_per_iteration(
            decode_batch, self.output_distribution, config.decode_iterations
        )
        decode_phase = 0.0
        first_iter_period = 0.0
        for u, alive in enumerate(per_iter_batches):
            dec_times = decode_stage_times(
                self.profile, placement, alive / micro_batches, avg_context
            )
            period = pipelined_iteration_period(dec_times, micro_batches)
            decode_phase += period
            if u == 0:
                first_iter_period = period

        cycle_time = encode_phase + decode_phase
        completed_per_cycle = float(config.encode_batch)
        throughput_seq = completed_per_cycle / cycle_time if cycle_time > 0 else 0.0
        tokens_per_cycle = float(np.sum(per_iter_batches))
        throughput_tok = tokens_per_cycle / cycle_time if cycle_time > 0 else 0.0

        # Latency of generating `target` tokens: the query decodes N_D tokens
        # per cycle, interleaved with the encoding phases of later cycles.
        avg_iter = decode_phase / config.decode_iterations
        full_cycles = max(math.ceil(target / config.decode_iterations) - 1, 0)
        remaining = target - full_cycles * config.decode_iterations
        latency = encode_phase + full_cycles * cycle_time + remaining * avg_iter

        stage_memory = estimate_placement_memory(
            placement,
            encode_batch=config.encode_batch,
            decode_batch=decode_batch,
            avg_input_len=avg_input,
            avg_context_len=avg_context,
        )
        return ScheduleEstimate(
            config=config,
            throughput_seq_per_s=throughput_seq,
            throughput_tokens_per_s=throughput_tok,
            latency_s=latency,
            target_length=target,
            decode_batch=decode_batch,
            cycle_time_s=cycle_time,
            memory_feasible=placement_fits_memory(stage_memory),
            stage_memory=tuple(stage_memory),
            placement=placement,
        )

    # -- WAA ---------------------------------------------------------------------

    def _waa_weights(self, config: ScheduleConfig) -> tuple[float, float]:
        """Encode/decode weights used to split GPUs for a WAA config."""
        avg_input = self.input_distribution.mean
        avg_output = self.output_distribution.mean
        avg_context = average_context_length(
            self.input_distribution,
            self.output_distribution,
            decoder_only=not self.model.is_encoder_decoder,
        )
        decode_batch = (
            float(config.decode_batch_override)
            if config.decode_batch_override is not None
            else config.encode_batch * avg_output
        )
        if config.policy is SchedulePolicy.WAA_M:
            return waa_memory_weights(
                self.model,
                avg_input_len=avg_input,
                avg_output_len=avg_output,
                decode_batch=decode_batch,
                encode_batch=config.encode_batch,
            )
        # WAA-C: estimated per-iteration computation time of the full encoder
        # stack (for B_E fresh queries) versus the full decoder stack (for
        # the standing B_D batch), measured at TP=1 from the profile.
        encode_time = (
            self.profile.encode_layer_time(1, config.encode_batch, avg_input)
            * self.model.num_encoder_layers
        )
        decode_time = (
            self.profile.decode_layer_time(1, decode_batch, avg_context)
            * self.model.num_decoder_layers
        )
        return max(encode_time, 1e-12), max(decode_time, 1e-12)

    def _estimate_waa(self, config: ScheduleConfig, target: int) -> ScheduleEstimate:
        placement = self.build_placement(config)
        avg_input = self.input_distribution.mean
        avg_output = self.output_distribution.mean
        avg_context = average_context_length(
            self.input_distribution,
            self.output_distribution,
            decoder_only=not self.model.is_encoder_decoder,
        )
        decode_batch = self.derived_decode_batch(config)
        micro_batches = config.micro_batches

        # Decode side: B_m micro-batches pipelined across the decode stages.
        dec_times = decode_stage_times(
            self.profile, placement, decode_batch / micro_batches, avg_context
        )
        decode_period = pipelined_iteration_period(dec_times, micro_batches)

        # Encode side: the encoder pipeline must deliver B_E fresh queries per
        # decode iteration; consecutive encode batches pipeline freely, so its
        # period is the bottleneck encode stage time, and the handover adds a
        # KV transfer for decoder-only models.
        enc_times = encode_stage_times(
            self.profile, placement, config.encode_batch, avg_input
        )
        encode_period = enc_times.bottleneck
        kv_layers = self.model.num_decoder_layers
        kv_transfer = self.profile.kv_transfer_time(
            config.encode_batch, avg_input, kv_layers
        ) if not self.model.is_encoder_decoder else self.profile.kv_transfer_time(
            config.encode_batch, avg_input, 1
        )

        iteration_period = max(decode_period, encode_period)
        throughput_seq = (
            config.encode_batch / iteration_period if iteration_period > 0 else 0.0
        )
        throughput_tok = (
            decode_batch / iteration_period if iteration_period > 0 else 0.0
        )

        # Latency: wait for admission into an encode batch (up to one encode
        # period), traverse the encoder pipeline, hand over the KV cache, then
        # generate `target` tokens at one iteration period each, with the last
        # token's pipeline traversal exposed.
        latency = (
            encode_period
            + enc_times.traversal
            + kv_transfer
            + max(target - 1, 0) * iteration_period
            + token_latency(dec_times)
        )

        cycle_time = iteration_period
        stage_memory = estimate_placement_memory(
            placement,
            encode_batch=config.encode_batch,
            decode_batch=decode_batch,
            avg_input_len=avg_input,
            avg_context_len=avg_context,
        )
        return ScheduleEstimate(
            config=config,
            throughput_seq_per_s=throughput_seq,
            throughput_tokens_per_s=throughput_tok,
            latency_s=latency,
            target_length=target,
            decode_batch=decode_batch,
            cycle_time_s=cycle_time,
            memory_feasible=placement_fits_memory(stage_memory),
            stage_memory=tuple(stage_memory),
            placement=placement,
        )

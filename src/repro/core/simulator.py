"""XSimulator: estimate throughput and latency of a schedule (Section 6).

The simulator combines the profiled per-layer times, the allocation produced
by the chosen policy and the input/output sequence-length distributions to
construct the expected execution timeline of a schedule, without running any
requests.  It returns a :class:`ScheduleEstimate` with the throughput, the
latency of generating the target (99th-percentile) sequence length, and a
per-stage memory estimate used to reject infeasible schedules -- which is
what rules WAA out for the 175B/341B models.

Two estimation engines share one cost model:

* :meth:`XSimulator.estimate` is the scalar reference implementation -- one
  configuration in, one estimate out, with the per-iteration Python loop
  written the way Section 6 describes the timeline.
* :meth:`XSimulator.estimate_batch` evaluates *many* configurations in a
  handful of numpy passes: placements, distribution statistics and the RRA
  completion arrays are memoized in an :class:`EstimateContext`, the
  shrinking-batch decode phase of a whole column of configurations becomes a
  2-D (configuration x iteration) array fed through one vectorized grid
  interpolation, and memory feasibility is array arithmetic.  The batched
  engine replicates the scalar arithmetic operation-for-operation, so the
  two agree to floating-point noise (well below 1e-9 relative) and produce
  bit-identical feasibility verdicts -- which is what lets the scheduler's
  branch-and-bound and exhaustive searches use it as a drop-in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import (
    Placement,
    build_placement,
    waa_memory_weights,
    waa_stage_split,
)
from repro.core.analytical import (
    StageMemory,
    StageTimes,
    decode_stage_times,
    decode_stage_times_batch,
    encode_stage_times,
    encode_stage_times_batch,
    estimate_placement_memory,
    estimate_placement_memory_batch,
    pipelined_batch_completion,
    pipelined_batch_completion_batch,
    pipelined_iteration_period,
    pipelined_iteration_period_batch,
    placement_fits_memory,
    placement_fits_memory_batch,
    token_latency,
)
from repro.core.config import ScheduleConfig, SchedulePolicy, TensorParallelConfig
from repro.core.distributions import (
    SequenceDistribution,
    average_context_length,
    expected_completion_fraction,
    expected_decode_batch_per_iteration,
)
from repro.core.profiler import ProfileTable

# Cap on the number of configurations evaluated in one numpy pass; larger
# requests are processed in chunks to bound the size of the (configuration x
# decode-iteration) temporaries.
_BATCH_CHUNK = 4096


@dataclass(frozen=True)
class ScheduleEstimate:
    """Simulator output for one schedule configuration.

    Attributes:
        config: The evaluated schedule.
        throughput_seq_per_s: Completed sequences per second at steady state.
        throughput_tokens_per_s: Generated tokens per second at steady state.
        latency_s: Expected latency of generating ``target_length`` tokens,
            measured from the start of the request's encoding phase.
        target_length: Output length the latency refers to (99th percentile
            by default).
        decode_batch: Steady-state decoder batch size ``B_D``.
        cycle_time_s: RRA cycle time (encode phase + ``N_D`` decode
            iterations) or the WAA per-iteration period.
        memory_feasible: Whether every stage fits in GPU memory.
        stage_memory: Per-stage memory breakdown.
        placement: The GPU/layer placement behind the estimate.
    """

    config: ScheduleConfig
    throughput_seq_per_s: float
    throughput_tokens_per_s: float
    latency_s: float
    target_length: int
    decode_batch: float
    cycle_time_s: float
    memory_feasible: bool
    stage_memory: tuple[StageMemory, ...]
    placement: Placement

    @property
    def feasible(self) -> bool:
        """Feasible means the schedule fits in memory."""
        return self.memory_feasible

    def satisfies(self, latency_bound_s: float, tolerance: float = 0.0) -> bool:
        """Whether the estimate meets a latency bound (and is feasible)."""
        return self.feasible and self.latency_s <= latency_bound_s + tolerance


class EstimateContext:
    """Memoized, simulator-wide state shared across estimate calls.

    Everything here is a pure function of the simulator's (immutable) model,
    cluster, profile and distributions, yet the original scalar path
    recomputed it on every single evaluation point: the GPU/layer placement,
    the average input/context lengths, and the RRA completion-probability
    arrays.  A schedule search evaluates tens of thousands of points against
    the same simulator, so memoizing these turns per-point setup cost into
    one-time cost.

    Attributes:
        avg_input: Mean input length ``E[S_in]``.
        avg_output: Mean output length ``E[S_out]``.
        avg_context: Steady-state average attention context per decode step.
    """

    def __init__(self, simulator: "XSimulator") -> None:
        self.simulator = simulator
        self.model = simulator.model
        self.cluster = simulator.cluster
        self.profile = simulator.profile
        self.avg_input = simulator.input_distribution.mean
        self.avg_output = simulator.output_distribution.mean
        self.avg_context = average_context_length(
            simulator.input_distribution,
            simulator.output_distribution,
            decoder_only=not self.model.is_encoder_decoder,
        )
        self._placements: dict[tuple, Placement] = {}
        self._rra_decode: dict[int, tuple[float, np.ndarray]] = {}

    # -- RRA completion statistics ------------------------------------------------

    def rra_decode(self, num_decode_iterations: int) -> tuple[float, np.ndarray]:
        """``(completion fraction, per-iteration alive fraction)`` for one ``N_D``.

        The alive-fraction array has length ``N_D``; multiplying it by the
        steady-state decode batch gives the expected batch at each iteration
        of a decoding phase (the shrinking batch of Section 6).
        """
        cached = self._rra_decode.get(num_decode_iterations)
        if cached is None:
            fraction = expected_completion_fraction(
                self.simulator.output_distribution, num_decode_iterations
            )
            remaining = expected_decode_batch_per_iteration(
                1.0, self.simulator.output_distribution, num_decode_iterations
            )
            cached = (fraction, remaining)
            self._rra_decode[num_decode_iterations] = cached
        return cached

    def decode_batch_for(self, config: ScheduleConfig) -> float:
        """Steady-state decoder batch ``B_D`` implied by ``config`` (Section 6)."""
        if config.decode_batch_override is not None:
            return float(config.decode_batch_override)
        if config.policy is SchedulePolicy.RRA:
            fraction, _ = self.rra_decode(config.decode_iterations)
            if fraction <= 0:
                raise ValueError(
                    "completion fraction is zero; N_D too small for support"
                )
            return config.encode_batch / fraction
        return config.encode_batch * self.avg_output

    # -- placements ---------------------------------------------------------------

    def waa_weights(self, config: ScheduleConfig) -> tuple[float, float]:
        """Encode/decode weights used to split GPUs for a WAA config."""
        decode_batch = (
            float(config.decode_batch_override)
            if config.decode_batch_override is not None
            else config.encode_batch * self.avg_output
        )
        if config.policy is SchedulePolicy.WAA_M:
            return waa_memory_weights(
                self.model,
                avg_input_len=self.avg_input,
                avg_output_len=self.avg_output,
                decode_batch=decode_batch,
                encode_batch=config.encode_batch,
            )
        # WAA-C: estimated per-iteration computation time of the full encoder
        # stack (for B_E fresh queries) versus the full decoder stack (for
        # the standing B_D batch), measured at TP=1 from the profile.
        encode_time = (
            self.profile.encode_layer_time(1, config.encode_batch, self.avg_input)
            * self.model.num_encoder_layers
        )
        decode_time = (
            self.profile.decode_layer_time(1, decode_batch, self.avg_context)
            * self.model.num_decoder_layers
        )
        return max(encode_time, 1e-12), max(decode_time, 1e-12)

    def rra_placement(self, tensor_parallel: TensorParallelConfig) -> Placement:
        """The (memoized) RRA placement for one partial-TP setting."""
        key = (SchedulePolicy.RRA, tensor_parallel)
        placement = self._placements.get(key)
        if placement is None:
            placement = build_placement(
                SchedulePolicy.RRA, self.model, self.cluster, tensor_parallel
            )
            self._placements[key] = placement
        return placement

    def waa_placement(
        self,
        policy: SchedulePolicy,
        tensor_parallel: TensorParallelConfig,
        split: int,
        encode_weight: float,
        decode_weight: float,
    ) -> Placement:
        """The (memoized) WAA placement for one stage split.

        The weights only shape a WAA placement through the encoder-stage
        count (:func:`waa_stage_split`), so the split is the exact memo key;
        the weights of the first configuration that produced the split are
        used to build it.
        """
        key = (policy, tensor_parallel, split)
        placement = self._placements.get(key)
        if placement is None:
            placement = build_placement(
                policy,
                self.model,
                self.cluster,
                tensor_parallel,
                encode_weight=encode_weight,
                decode_weight=decode_weight,
            )
            self._placements[key] = placement
        return placement

    def placement_for(self, config: ScheduleConfig) -> Placement:
        """The GPU/layer placement a configuration implies (memoized)."""
        if config.policy is SchedulePolicy.RRA:
            return self.rra_placement(config.tensor_parallel)
        encode_w, decode_w = self.waa_weights(config)
        num_stages = config.tensor_parallel.stages_for(self.cluster.num_gpus)
        split = waa_stage_split(num_stages, encode_w, decode_w)
        return self.waa_placement(
            config.policy, config.tensor_parallel, split, encode_w, decode_w
        )


class XSimulator:
    """Constructs execution timelines from profile results and distributions.

    Args:
        profile: Profiled per-layer execution times.
        input_distribution: Distribution ``P_E(S)`` of input lengths.
        output_distribution: Distribution ``P_D(S)`` of output lengths.
    """

    def __init__(
        self,
        profile: ProfileTable,
        input_distribution: SequenceDistribution,
        output_distribution: SequenceDistribution,
    ) -> None:
        self.profile = profile
        self.model = profile.model
        self.cluster = profile.cluster
        self.input_distribution = input_distribution
        self.output_distribution = output_distribution
        self._context: EstimateContext | None = None

    # -- public API -----------------------------------------------------------

    @property
    def context(self) -> EstimateContext:
        """The (lazily built) memoized estimation context."""
        if self._context is None:
            self._context = EstimateContext(self)
        return self._context

    def estimate(
        self,
        config: ScheduleConfig,
        target_length: int | None = None,
    ) -> ScheduleEstimate:
        """Estimate throughput/latency/memory of ``config``.

        Args:
            config: Schedule configuration to evaluate.
            target_length: Output length whose generation latency is reported;
                defaults to the 99th percentile of the output distribution.
        """
        target = target_length or self.output_distribution.percentile(99)
        if config.policy is SchedulePolicy.RRA:
            return self._estimate_rra(config, target)
        return self._estimate_waa(config, target)

    def estimate_batch(
        self,
        configs: list[ScheduleConfig],
        target_length: int | None = None,
        strict: bool = True,
    ) -> list[ScheduleEstimate | None]:
        """Vectorized :meth:`estimate` over many configurations.

        Configurations are grouped by (policy, partial-TP setting) and each
        group is evaluated in a few numpy passes over the whole group;
        results come back in input order.  Agrees with the scalar
        :meth:`estimate` to floating-point noise (parity-tested at 1e-9) and
        produces bit-identical feasibility verdicts.

        Args:
            configs: Configurations to evaluate.
            target_length: Output length whose generation latency is
                reported; defaults to the 99th percentile.
            strict: When ``True`` (default) invalid configurations raise,
                exactly like the scalar path.  When ``False`` they yield
                ``None`` entries instead, which is what the scheduler uses to
                treat un-estimable points as infeasible.

        Returns:
            One :class:`ScheduleEstimate` per input configuration (or
            ``None`` in non-strict mode where estimation failed).
        """
        configs = list(configs)
        results: list[ScheduleEstimate | None] = [None] * len(configs)
        target = target_length or self.output_distribution.percentile(99)
        groups: dict[tuple, list[int]] = {}
        for idx, config in enumerate(configs):
            key = (config.policy, config.tensor_parallel)
            groups.setdefault(key, []).append(idx)
        for (policy, _tp), idxs in groups.items():
            for start in range(0, len(idxs), _BATCH_CHUNK):
                chunk = idxs[start : start + _BATCH_CHUNK]
                try:
                    if policy is SchedulePolicy.RRA:
                        self._estimate_rra_batch(configs, chunk, results, target)
                    else:
                        self._estimate_waa_batch(configs, chunk, results, target)
                except (ValueError, KeyError):
                    # A group-level failure (unprofiled TP degree, no valid
                    # WAA split, degenerate distribution, ...) falls back to
                    # the scalar path so that per-point errors surface -- or,
                    # in non-strict mode, turn into None entries.
                    for i in chunk:
                        try:
                            results[i] = self.estimate(
                                configs[i], target_length=target
                            )
                        except (ValueError, KeyError):
                            if strict:
                                raise
                            results[i] = None
        return results

    def build_placement(self, config: ScheduleConfig) -> Placement:
        """The GPU/layer placement a config implies (exposed for the runner)."""
        return self.context.placement_for(config)

    def derived_decode_batch(self, config: ScheduleConfig) -> float:
        """Steady-state decoder batch ``B_D`` implied by ``B_E`` (Section 6)."""
        return self.context.decode_batch_for(config)

    # -- RRA ---------------------------------------------------------------------

    def _estimate_rra(self, config: ScheduleConfig, target: int) -> ScheduleEstimate:
        ctx = self.context
        placement = ctx.placement_for(config)
        avg_input = ctx.avg_input
        avg_context = ctx.avg_context
        decode_batch = ctx.decode_batch_for(config)
        num_stages = len(placement.decode_stages)
        micro_batches = max(num_stages, 1)

        # Encoding phase: B_E split into as many micro-batches as stages.
        enc_micro = config.encode_batch / micro_batches
        enc_times = encode_stage_times(self.profile, placement, enc_micro, avg_input)
        encode_phase = pipelined_batch_completion(enc_times, micro_batches)

        # Decoding phase: N_D iterations over a shrinking batch.
        _, remaining = ctx.rra_decode(config.decode_iterations)
        per_iter_batches = decode_batch * remaining
        decode_phase = 0.0
        for alive in per_iter_batches:
            dec_times = decode_stage_times(
                self.profile, placement, alive / micro_batches, avg_context
            )
            decode_phase += pipelined_iteration_period(dec_times, micro_batches)

        cycle_time = encode_phase + decode_phase
        completed_per_cycle = float(config.encode_batch)
        throughput_seq = completed_per_cycle / cycle_time if cycle_time > 0 else 0.0
        tokens_per_cycle = float(np.sum(per_iter_batches))
        throughput_tok = tokens_per_cycle / cycle_time if cycle_time > 0 else 0.0

        # Latency of generating `target` tokens: the query decodes N_D tokens
        # per cycle, interleaved with the encoding phases of later cycles.
        avg_iter = decode_phase / config.decode_iterations
        full_cycles = max(math.ceil(target / config.decode_iterations) - 1, 0)
        remaining_tokens = target - full_cycles * config.decode_iterations
        latency = encode_phase + full_cycles * cycle_time + remaining_tokens * avg_iter

        stage_memory = estimate_placement_memory(
            placement,
            encode_batch=config.encode_batch,
            decode_batch=decode_batch,
            avg_input_len=avg_input,
            avg_context_len=avg_context,
        )
        return ScheduleEstimate(
            config=config,
            throughput_seq_per_s=throughput_seq,
            throughput_tokens_per_s=throughput_tok,
            latency_s=latency,
            target_length=target,
            decode_batch=decode_batch,
            cycle_time_s=cycle_time,
            memory_feasible=placement_fits_memory(stage_memory),
            stage_memory=tuple(stage_memory),
            placement=placement,
        )

    def _estimate_rra_batch(
        self,
        configs: list[ScheduleConfig],
        idxs: list[int],
        results: list[ScheduleEstimate | None],
        target: int,
    ) -> None:
        """Vectorized RRA estimation for one (policy, TP) group of configs.

        The shrinking-batch decode phase of *all* configurations is evaluated
        as one (configuration x iteration) array: row ``p`` holds the
        expected alive batch of configuration ``p`` at each of its ``N_D``
        decode iterations (zero-padded beyond), and a single vectorized grid
        interpolation prices every (stage, configuration, iteration) at once.
        """
        ctx = self.context
        placement = ctx.rra_placement(configs[idxs[0]].tensor_parallel)
        num_stages = len(placement.decode_stages)
        micro_batches = max(num_stages, 1)
        avg_input = ctx.avg_input
        avg_context = ctx.avg_context

        n = len(idxs)
        encode_batch = np.array(
            [configs[i].encode_batch for i in idxs], dtype=float
        )
        n_d = np.array([configs[i].decode_iterations for i in idxs], dtype=np.int64)
        max_nd = int(n_d.max())
        decode_batch = np.empty(n)
        remaining = np.zeros((n, max_nd))
        for pos, i in enumerate(idxs):
            config = configs[i]
            decode_batch[pos] = ctx.decode_batch_for(config)
            _, rem = ctx.rra_decode(config.decode_iterations)
            remaining[pos, : config.decode_iterations] = rem
        per_iter_batches = decode_batch[:, None] * remaining

        # Encoding phase: B_E split into as many micro-batches as stages.
        enc_micro = encode_batch / micro_batches
        enc_times = encode_stage_times_batch(
            self.profile, placement, enc_micro, avg_input
        )
        encode_phase = pipelined_batch_completion_batch(enc_times, micro_batches)

        # Decoding phase: all (configuration, iteration) points in one pass.
        # Padded entries have an alive batch of zero, price to a zero stage
        # time and therefore a zero period -- exactly like the scalar loop
        # never visiting them.
        alive_micro = (per_iter_batches / micro_batches).reshape(-1)
        dec_times = decode_stage_times_batch(
            self.profile, placement, alive_micro, avg_context
        )
        period = pipelined_iteration_period_batch(dec_times, micro_batches)
        decode_phase = np.sum(period.reshape(n, max_nd), axis=1)

        cycle_time = encode_phase + decode_phase
        positive = cycle_time > 0
        safe_cycle = np.where(positive, cycle_time, 1.0)
        throughput_seq = np.where(positive, encode_batch / safe_cycle, 0.0)
        tokens_per_cycle = np.sum(per_iter_batches, axis=1)
        throughput_tok = np.where(positive, tokens_per_cycle / safe_cycle, 0.0)

        avg_iter = decode_phase / n_d
        full_cycles = np.maximum(np.ceil(target / n_d) - 1, 0)
        remaining_tokens = target - full_cycles * n_d
        latency = encode_phase + full_cycles * cycle_time + remaining_tokens * avg_iter

        stage_memory = estimate_placement_memory_batch(
            placement,
            encode_batch=encode_batch,
            decode_batch=decode_batch,
            avg_input_len=avg_input,
            avg_context_len=avg_context,
        )
        feasible = placement_fits_memory_batch(stage_memory)
        for pos, i in enumerate(idxs):
            results[i] = ScheduleEstimate(
                config=configs[i],
                throughput_seq_per_s=float(throughput_seq[pos]),
                throughput_tokens_per_s=float(throughput_tok[pos]),
                latency_s=float(latency[pos]),
                target_length=target,
                decode_batch=float(decode_batch[pos]),
                cycle_time_s=float(cycle_time[pos]),
                memory_feasible=bool(feasible[pos]),
                stage_memory=tuple(m.at(pos) for m in stage_memory),
                placement=placement,
            )

    # -- WAA ---------------------------------------------------------------------

    def _waa_weights(self, config: ScheduleConfig) -> tuple[float, float]:
        """Encode/decode weights used to split GPUs for a WAA config."""
        return self.context.waa_weights(config)

    def _estimate_waa(self, config: ScheduleConfig, target: int) -> ScheduleEstimate:
        ctx = self.context
        placement = ctx.placement_for(config)
        avg_input = ctx.avg_input
        avg_context = ctx.avg_context
        decode_batch = ctx.decode_batch_for(config)
        micro_batches = config.micro_batches

        # Decode side: B_m micro-batches pipelined across the decode stages.
        dec_times = decode_stage_times(
            self.profile, placement, decode_batch / micro_batches, avg_context
        )
        decode_period = pipelined_iteration_period(dec_times, micro_batches)

        # Encode side: the encoder pipeline must deliver B_E fresh queries per
        # decode iteration; consecutive encode batches pipeline freely, so its
        # period is the bottleneck encode stage time, and the handover adds a
        # KV transfer for decoder-only models.
        enc_times = encode_stage_times(
            self.profile, placement, config.encode_batch, avg_input
        )
        encode_period = enc_times.bottleneck
        kv_layers = self.model.num_decoder_layers
        kv_transfer = self.profile.kv_transfer_time(
            config.encode_batch, avg_input, kv_layers
        ) if not self.model.is_encoder_decoder else self.profile.kv_transfer_time(
            config.encode_batch, avg_input, 1
        )

        iteration_period = max(decode_period, encode_period)
        throughput_seq = (
            config.encode_batch / iteration_period if iteration_period > 0 else 0.0
        )
        throughput_tok = (
            decode_batch / iteration_period if iteration_period > 0 else 0.0
        )

        # Latency: wait for admission into an encode batch (up to one encode
        # period), traverse the encoder pipeline, hand over the KV cache, then
        # generate `target` tokens at one iteration period each, with the last
        # token's pipeline traversal exposed.
        latency = (
            encode_period
            + enc_times.traversal
            + kv_transfer
            + max(target - 1, 0) * iteration_period
            + token_latency(dec_times)
        )

        cycle_time = iteration_period
        stage_memory = estimate_placement_memory(
            placement,
            encode_batch=config.encode_batch,
            decode_batch=decode_batch,
            avg_input_len=avg_input,
            avg_context_len=avg_context,
        )
        return ScheduleEstimate(
            config=config,
            throughput_seq_per_s=throughput_seq,
            throughput_tokens_per_s=throughput_tok,
            latency_s=latency,
            target_length=target,
            decode_batch=decode_batch,
            cycle_time_s=cycle_time,
            memory_feasible=placement_fits_memory(stage_memory),
            stage_memory=tuple(stage_memory),
            placement=placement,
        )

    def _estimate_waa_batch(
        self,
        configs: list[ScheduleConfig],
        idxs: list[int],
        results: list[ScheduleEstimate | None],
        target: int,
    ) -> None:
        """Vectorized WAA estimation for one (policy, TP) group of configs.

        The encode/decode GPU split can differ between configurations (the
        WAA weights depend on the batch sizes), so the group is partitioned
        by the resulting stage split; each partition shares one memoized
        placement and is evaluated in a single numpy pass.
        """
        ctx = self.context
        first = configs[idxs[0]]
        policy = first.policy
        tensor_parallel = first.tensor_parallel
        avg_input = ctx.avg_input
        avg_context = ctx.avg_context

        n = len(idxs)
        encode_batch = np.array(
            [configs[i].encode_batch for i in idxs], dtype=float
        )
        micro = np.array([configs[i].micro_batches for i in idxs], dtype=np.int64)
        decode_batch = np.array(
            [ctx.decode_batch_for(configs[i]) for i in idxs], dtype=float
        )

        # WAA weights for every configuration in one pass, then partition by
        # the stage split they imply.
        if policy is SchedulePolicy.WAA_M:
            enc_w, dec_w = waa_memory_weights(
                self.model,
                avg_input_len=avg_input,
                avg_output_len=ctx.avg_output,
                decode_batch=decode_batch,
                encode_batch=encode_batch,
            )
        else:
            enc_w = np.maximum(
                self.profile.encode_layer_time_batch(1, encode_batch, avg_input)
                * self.model.num_encoder_layers,
                1e-12,
            )
            dec_w = np.maximum(
                self.profile.decode_layer_time_batch(1, decode_batch, avg_context)
                * self.model.num_decoder_layers,
                1e-12,
            )
        num_stages = tensor_parallel.stages_for(self.cluster.num_gpus)
        split_groups: dict[int, list[int]] = {}
        for pos in range(n):
            split = waa_stage_split(num_stages, float(enc_w[pos]), float(dec_w[pos]))
            split_groups.setdefault(split, []).append(pos)

        kv_layers = (
            self.model.num_decoder_layers
            if not self.model.is_encoder_decoder
            else 1
        )
        for split, positions in split_groups.items():
            rep = positions[0]
            placement = ctx.waa_placement(
                policy, tensor_parallel, split, float(enc_w[rep]), float(dec_w[rep])
            )
            sub = np.array(positions)
            b_e = encode_batch[sub]
            b_d = decode_batch[sub]
            m = micro[sub]

            dec_times = decode_stage_times_batch(
                self.profile, placement, b_d / m, avg_context
            )
            decode_period = pipelined_iteration_period_batch(dec_times, m)

            enc_times = encode_stage_times_batch(
                self.profile, placement, b_e, avg_input
            )
            encode_period = enc_times.bottleneck
            kv_transfer = self.profile.kv_transfer_time_batch(
                b_e, avg_input, kv_layers
            )

            iteration_period = np.maximum(decode_period, encode_period)
            positive = iteration_period > 0
            safe_period = np.where(positive, iteration_period, 1.0)
            throughput_seq = np.where(positive, b_e / safe_period, 0.0)
            throughput_tok = np.where(positive, b_d / safe_period, 0.0)

            latency = (
                encode_period
                + enc_times.traversal
                + kv_transfer
                + max(target - 1, 0) * iteration_period
                + dec_times.traversal
            )

            stage_memory = estimate_placement_memory_batch(
                placement,
                encode_batch=b_e,
                decode_batch=b_d,
                avg_input_len=avg_input,
                avg_context_len=avg_context,
            )
            feasible = placement_fits_memory_batch(stage_memory)
            for local, pos in enumerate(positions):
                i = idxs[pos]
                results[i] = ScheduleEstimate(
                    config=configs[i],
                    throughput_seq_per_s=float(throughput_seq[local]),
                    throughput_tokens_per_s=float(throughput_tok[local]),
                    latency_s=float(latency[local]),
                    target_length=target,
                    decode_batch=float(decode_batch[pos]),
                    cycle_time_s=float(iteration_period[local]),
                    memory_feasible=bool(feasible[local]),
                    stage_memory=tuple(s.at(local) for s in stage_memory),
                    placement=placement,
                )

"""GPU/layer allocation policies: RRA, WAA-C and WAA-M (Section 4.1).

An allocation turns (model, cluster, TP configuration, policy) into a
:class:`Placement`: an ordered list of pipeline stages, each stage being a
tensor-parallel group of GPUs hosting a contiguous span of encoder and/or
decoder layers.

* **RRA** (Round-Robin Allocation) gives every stage an equal share of both
  encoder and decoder layers, so the same GPUs alternate between encoding
  and decoding phases.
* **WAA** (Workload-Aware Allocation) dedicates some stages to encoding and
  the rest to decoding.  WAA-C sizes the split by estimated computation time
  (``C_E`` vs ``C_D``), WAA-M by memory consumption.  For decoder-only
  models WAA stores a second copy of the (decoder) weights on the encoder
  GPUs, the memory overhead quantified in Figure 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SchedulePolicy, TensorParallelConfig
from repro.hardware.cluster import Cluster
from repro.models.spec import ModelSpec


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage: a TP group and the layers it hosts.

    Attributes:
        stage_id: Position in the pipeline (0-based).
        gpu_indices: GPUs forming this stage's tensor-parallel group.
        encoder_layers: Number of encoding-phase layers hosted.
        decoder_layers: Number of decoding-phase layers hosted.
        role: ``"both"`` (RRA), ``"encode"`` or ``"decode"`` (WAA).
    """

    stage_id: int
    gpu_indices: tuple[int, ...]
    encoder_layers: int
    decoder_layers: int
    role: str = "both"

    def __post_init__(self) -> None:
        if not self.gpu_indices:
            raise ValueError("a stage needs at least one GPU")
        if self.encoder_layers < 0 or self.decoder_layers < 0:
            raise ValueError("layer counts must be non-negative")
        if self.role not in ("both", "encode", "decode"):
            raise ValueError(f"unknown stage role {self.role!r}")

    @property
    def tp_degree(self) -> int:
        """Tensor-parallel degree of this stage."""
        return len(self.gpu_indices)


@dataclass(frozen=True)
class Placement:
    """A complete mapping of model layers onto cluster GPUs.

    Attributes:
        policy: The allocation policy that produced this placement.
        stages: All pipeline stages in execution order.  For WAA, encoder
            stages precede decoder stages.
        cluster: The cluster the placement targets.
        model: The placed model.
        weight_replication: Factor >= 1 accounting for duplicated weights
            (WAA on decoder-only models stores the stack twice).
    """

    policy: SchedulePolicy
    stages: tuple[StagePlan, ...]
    cluster: Cluster
    model: ModelSpec
    weight_replication: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise ValueError("placement needs at least one stage")
        used = [g for s in self.stages for g in s.gpu_indices]
        if len(used) != len(set(used)):
            raise ValueError("a GPU is assigned to more than one stage")

    # -- views ------------------------------------------------------------------

    @property
    def encode_stages(self) -> tuple[StagePlan, ...]:
        """Stages that execute the encoding phase, in pipeline order."""
        return tuple(s for s in self.stages if s.role in ("both", "encode"))

    @property
    def decode_stages(self) -> tuple[StagePlan, ...]:
        """Stages that execute decoding iterations, in pipeline order."""
        return tuple(s for s in self.stages if s.role in ("both", "decode"))

    @property
    def num_gpus(self) -> int:
        """GPUs used by the placement."""
        return sum(s.tp_degree for s in self.stages)

    @property
    def num_encode_gpus(self) -> int:
        """GPUs participating in encoding."""
        return sum(s.tp_degree for s in self.encode_stages)

    @property
    def num_decode_gpus(self) -> int:
        """GPUs participating in decoding."""
        return sum(s.tp_degree for s in self.decode_stages)

    def stage_spans_nodes(self, stage: StagePlan) -> bool:
        """Whether a stage's TP group crosses a node boundary."""
        return self.cluster.group_spans_nodes(list(stage.gpu_indices))

    def validate_layer_totals(self) -> None:
        """Check that every model layer is assigned exactly once per phase.

        Raises:
            ValueError: if encoder or decoder layer totals do not match the
                model.
        """
        enc = sum(s.encoder_layers for s in self.encode_stages)
        dec = sum(s.decoder_layers for s in self.decode_stages)
        if enc != self.model.num_encoder_layers:
            raise ValueError(
                f"placement hosts {enc} encoder layers, model has "
                f"{self.model.num_encoder_layers}"
            )
        if dec != self.model.num_decoder_layers:
            raise ValueError(
                f"placement hosts {dec} decoder layers, model has "
                f"{self.model.num_decoder_layers}"
            )


# --- helpers -------------------------------------------------------------------


def _split_evenly(total: int, parts: int) -> list[int]:
    """Split ``total`` items into ``parts`` nearly equal contiguous chunks."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def waa_stage_split(
    num_stages: int,
    encode_weight: float,
    decode_weight: float,
    min_encode_stages: int = 1,
    min_decode_stages: int = 1,
) -> int:
    """Number of encoder stages a WAA placement assigns out of ``num_stages``.

    This is the only way the (continuous) encode/decode weights influence the
    shape of a WAA placement, so memoizing placements by the returned split
    is exact.  Shared by :func:`allocate_waa` and the simulator's placement
    cache to keep the two from diverging.
    """
    if encode_weight < 0 or decode_weight < 0:
        raise ValueError("weights must be non-negative")
    if encode_weight + decode_weight == 0:
        raise ValueError("at least one weight must be positive")
    if num_stages < min_encode_stages + min_decode_stages:
        raise ValueError(
            f"WAA needs at least {min_encode_stages + min_decode_stages} pipeline "
            f"stages, got {num_stages}"
        )
    total = encode_weight + decode_weight
    encode_stages = int(round(num_stages * encode_weight / total))
    return min(max(encode_stages, min_encode_stages), num_stages - min_decode_stages)


def _build_tp_groups(
    num_gpus: int, tensor_parallel: TensorParallelConfig
) -> list[tuple[int, ...]]:
    """Group GPU indices 0..num_gpus-1 into pipeline stages under partial TP.

    The TP-covered GPUs come first (they host the earliest layers); the
    remaining GPUs form single-GPU stages.
    """
    if tensor_parallel.num_gpus > num_gpus:
        raise ValueError(
            f"TP covers {tensor_parallel.num_gpus} GPUs but only "
            f"{num_gpus} are available"
        )
    groups: list[tuple[int, ...]] = []
    degree = max(tensor_parallel.degree, 1)
    covered = tensor_parallel.num_gpus if degree > 1 else 0
    index = 0
    while index < covered:
        groups.append(tuple(range(index, index + degree)))
        index += degree
    while index < num_gpus:
        groups.append((index,))
        index += 1
    return groups


# --- allocation policies ----------------------------------------------------------


def allocate_rra(
    model: ModelSpec,
    cluster: Cluster,
    tensor_parallel: TensorParallelConfig | None = None,
) -> Placement:
    """Round-Robin Allocation: every stage hosts encoders and decoders.

    With ``N`` stages, each receives ``E/N`` consecutive encoder layers and
    ``D/N`` consecutive decoder layers (Figure 3, top).
    """
    tp = tensor_parallel or TensorParallelConfig()
    groups = _build_tp_groups(cluster.num_gpus, tp)
    enc_split = _split_evenly(model.num_encoder_layers, len(groups))
    dec_split = _split_evenly(model.num_decoder_layers, len(groups))
    stages = [
        StagePlan(
            stage_id=i,
            gpu_indices=group,
            encoder_layers=enc_split[i],
            decoder_layers=dec_split[i],
            role="both",
        )
        for i, group in enumerate(groups)
    ]
    return Placement(
        policy=SchedulePolicy.RRA,
        stages=tuple(stages),
        cluster=cluster,
        model=model,
        weight_replication=1.0,
    )


def allocate_waa(
    model: ModelSpec,
    cluster: Cluster,
    encode_weight: float,
    decode_weight: float,
    policy: SchedulePolicy,
    tensor_parallel: TensorParallelConfig | None = None,
    min_encode_stages: int = 1,
    min_decode_stages: int = 1,
) -> Placement:
    """Workload-Aware Allocation: dedicate stages to encoding or decoding.

    GPUs are assigned proportionally to ``encode_weight : decode_weight``
    (estimated computation times for WAA-C, memory consumption for WAA-M),
    with at least one stage on each side -- which is why WAA needs a minimum
    of two pipeline stages and can violate tight latency bounds (Section 7.3).

    Args:
        model: Model to place.
        cluster: Target (sub-)cluster.
        encode_weight: Relative weight of the encoding workload (``C_E``).
        decode_weight: Relative weight of the decoding workload (``C_D``).
        policy: ``WAA_C`` or ``WAA_M`` (recorded on the placement).
        tensor_parallel: Partial-TP configuration applied across all GPUs;
            encoder stages take the earliest groups.
        min_encode_stages / min_decode_stages: Lower bounds on the split.
    """
    if not policy.is_waa:
        raise ValueError("allocate_waa requires a WAA policy")
    tp = tensor_parallel or TensorParallelConfig()
    groups = _build_tp_groups(cluster.num_gpus, tp)
    num_stages = len(groups)
    encode_stages = waa_stage_split(
        num_stages,
        encode_weight,
        decode_weight,
        min_encode_stages=min_encode_stages,
        min_decode_stages=min_decode_stages,
    )
    decode_stages = num_stages - encode_stages

    enc_split = _split_evenly(model.num_encoder_layers, encode_stages)
    dec_split = _split_evenly(model.num_decoder_layers, decode_stages)
    stages: list[StagePlan] = []
    for i in range(encode_stages):
        stages.append(
            StagePlan(
                stage_id=i,
                gpu_indices=groups[i],
                encoder_layers=enc_split[i],
                decoder_layers=0,
                role="encode",
            )
        )
    for j in range(decode_stages):
        stages.append(
            StagePlan(
                stage_id=encode_stages + j,
                gpu_indices=groups[encode_stages + j],
                encoder_layers=0,
                decoder_layers=dec_split[j],
                role="decode",
            )
        )
    # Decoder-only models must replicate the decoder stack onto the encoder
    # GPUs (they run the same layers for prefill), which is WAA's memory
    # overhead on GPT/OPT-style models.
    replication = 1.0
    if not model.is_encoder_decoder:
        replication = 1.0 + model.num_encoder_layers / max(model.num_layers, 1)
    return Placement(
        policy=policy,
        stages=tuple(stages),
        cluster=cluster,
        model=model,
        weight_replication=replication,
    )


def stage_weight_bytes(model: ModelSpec, stage: StagePlan) -> float:
    """Weight bytes a stage must hold for its assigned layers.

    For decoder-only models the "encoder" layers of an RRA/baseline stage are
    the same physical decoder layers used for prefill, so they are counted
    once; WAA stages are dedicated to one phase and therefore a decoder-only
    model deployed with WAA ends up storing the stack twice across the
    cluster (the overhead Figure 9 quantifies).
    """
    if model.is_encoder_decoder:
        return (
            stage.encoder_layers * model.layer_bytes(False)
            + stage.decoder_layers * model.layer_bytes(True)
        )
    if stage.role == "both":
        layers = max(stage.encoder_layers, stage.decoder_layers)
    else:
        layers = stage.encoder_layers + stage.decoder_layers
    return layers * model.layer_bytes(False)


def waa_memory_weights(
    model: ModelSpec,
    avg_input_len: float,
    avg_output_len: float,
    decode_batch: float,
    encode_batch: float,
) -> tuple[float, float]:
    """Encode/decode *memory* weights used by WAA-M.

    Encoder GPUs hold the encoding weights plus transient activations;
    decoder GPUs hold the decoding weights plus the standing KV cache of the
    in-flight decode batch, which dominates for long outputs.

    ``encode_batch`` / ``decode_batch`` may be numpy arrays (one entry per
    candidate configuration); the returned weights then are arrays too.
    """
    if np.any(np.asarray(decode_batch) < 0) or np.any(np.asarray(encode_batch) < 0):
        raise ValueError("batch sizes must be non-negative")
    enc_weights = float(model.encoder_parameters * model.dtype_bytes)
    dec_weights = float(model.decoder_parameters * model.dtype_bytes)
    kv_per_token = model.kv_bytes_per_token()
    context = avg_input_len + avg_output_len / 2.0 if not model.is_encoder_decoder else avg_output_len / 2.0
    dec_kv = decode_batch * context * kv_per_token
    enc_act = encode_batch * avg_input_len * model.hidden_size * model.dtype_bytes * 4
    return enc_weights + enc_act, dec_weights + dec_kv


def build_placement(
    policy: SchedulePolicy,
    model: ModelSpec,
    cluster: Cluster,
    tensor_parallel: TensorParallelConfig | None = None,
    encode_weight: float = 1.0,
    decode_weight: float = 1.0,
) -> Placement:
    """Dispatch to the right allocation policy and validate the result."""
    if policy is SchedulePolicy.RRA:
        placement = allocate_rra(model, cluster, tensor_parallel)
    else:
        placement = allocate_waa(
            model,
            cluster,
            encode_weight=encode_weight,
            decode_weight=decode_weight,
            policy=policy,
            tensor_parallel=tensor_parallel,
        )
    placement.validate_layer_totals()
    return placement

"""XScheduler: constraint-aware schedule search (Section 5, Algorithm 1).

The optimisation problem is::

    maximise   Throughput(B_E, B_D, B_m, TP, F_E, S)
    subject to Latency(...) < L_Bound

over the four control variables, for a given policy ``S`` and sequence
distributions.  The objective and constraint are monotonic in each control
variable (Table 5 verifies this empirically), which lets a branch-and-bound
search over axis-aligned blocks prune most of the space: a block whose
upper-right corner cannot beat the incumbent throughput, or whose lower-left
corner already violates the latency bound, is discarded.

The scheduler runs the 2-D search once per (policy, TP option) combination --
the paper fixes the TP degree per run to preserve monotonicity -- and keeps
the best feasible result.  Exhaustive grid search and random search are also
provided as baselines for the Section 7.7 cost comparison.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import (
    LatencyConstraint,
    ScheduleConfig,
    SchedulePolicy,
    TensorParallelConfig,
)
from repro.core.simulator import ScheduleEstimate, XSimulator


@dataclass(frozen=True)
class PerfPoint:
    """Evaluation of one configuration point.

    Attributes:
        latency_s: Estimated latency (``inf`` for infeasible configurations).
        throughput: Estimated throughput in sequences per second (0 for
            infeasible configurations).
        estimate: The full simulator estimate, when the point was feasible.
    """

    latency_s: float
    throughput: float
    estimate: ScheduleEstimate | None

    @property
    def feasible(self) -> bool:
        """Whether the point produced a memory-feasible estimate."""
        return self.estimate is not None

    @property
    def throughput_upper_bound(self) -> float:
        """Throughput usable as a block upper bound.

        A memory-infeasible corner tells us nothing about the throughput of
        the feasible points inside the block, so it must not be used to prune
        the block; treat it as an unbounded optimistic estimate instead.
        """
        return self.throughput if self.feasible else float("inf")


@dataclass(frozen=True)
class SearchSpace:
    """Integer search box for one (policy, TP) combination.

    The second coordinate is an *index* into ``second_values`` chosen so that
    both throughput and latency increase with the coordinate, restoring the
    monotonic orientation Algorithm 1 expects (``N_D`` and ``B_m`` are
    naturally anti-monotonic, so their value lists are stored descending).

    Attributes:
        policy: Scheduling policy of this subspace.
        tensor_parallel: Fixed partial-TP setting of this subspace.
        encode_batch_range: Inclusive ``(min, max)`` for ``B_E``.
        second_values: Values of the second control variable, ordered so that
            a larger index means higher throughput and latency.
        second_name: ``"N_D"`` or ``"B_m"`` (for reporting).
    """

    policy: SchedulePolicy
    tensor_parallel: TensorParallelConfig
    encode_batch_range: tuple[int, int]
    second_values: tuple[int, ...]
    second_name: str

    def __post_init__(self) -> None:
        lo, hi = self.encode_batch_range
        if lo < 1 or hi < lo:
            raise ValueError("encode_batch_range must satisfy 1 <= min <= max")
        if not self.second_values:
            raise ValueError("second_values must be non-empty")

    def config_at(self, x1: int, x2: int) -> ScheduleConfig:
        """Schedule configuration at integer coordinates ``(x1, x2)``."""
        value = self.second_values[x2]
        if self.policy is SchedulePolicy.RRA:
            return ScheduleConfig(
                policy=self.policy,
                encode_batch=x1,
                decode_iterations=value,
                tensor_parallel=self.tensor_parallel,
            )
        return ScheduleConfig(
            policy=self.policy,
            encode_batch=x1,
            micro_batches=value,
            tensor_parallel=self.tensor_parallel,
        )

    @property
    def bounds(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """((x1_min, x1_max), (x2_min, x2_max)) of the search box."""
        return self.encode_batch_range, (0, len(self.second_values) - 1)

    @property
    def num_points(self) -> int:
        """Total configuration points in the box."""
        lo, hi = self.encode_batch_range
        return (hi - lo + 1) * len(self.second_values)


@dataclass
class SearchResult:
    """Outcome of a schedule search.

    Attributes:
        best: The best feasible estimate found, or ``None`` if no schedule
            satisfies the latency bound.
        evaluations: Number of distinct configuration points evaluated.
        elapsed_s: Wall-clock search time in seconds.
        method: Search method name.
        space_size: Total number of candidate points across all subspaces.
    """

    best: ScheduleEstimate | None
    evaluations: int
    elapsed_s: float
    method: str
    space_size: int

    @property
    def found(self) -> bool:
        """Whether any feasible schedule was found."""
        return self.best is not None


class _Evaluator:
    """Caches simulator evaluations at integer coordinates of one subspace.

    Args:
        simulator: The bound simulator.
        space: The subspace whose integer coordinates are evaluated.
        constraint: Latency bound (tracks the best satisfying estimate).
        batched: Route point evaluations through the simulator's vectorized
            ``estimate_batch`` engine (default).  ``False`` forces the scalar
            reference path -- kept for the perf-regression harness, which
            measures the speedup of one against the other.
    """

    def __init__(
        self,
        simulator: XSimulator,
        space: SearchSpace,
        constraint: LatencyConstraint,
        batched: bool = True,
    ) -> None:
        self.simulator = simulator
        self.space = space
        self.constraint = constraint
        self.batched = batched
        self.cache: dict[tuple[int, int], PerfPoint] = {}
        self.best: ScheduleEstimate | None = None

    def _store(self, key: tuple[int, int], estimate: ScheduleEstimate | None) -> PerfPoint:
        if estimate is None or not estimate.feasible:
            point = PerfPoint(float("inf"), 0.0, None)
        else:
            point = PerfPoint(estimate.latency_s, estimate.throughput_seq_per_s, estimate)
            if self.constraint.satisfied_by(estimate.latency_s) and (
                self.best is None
                or estimate.throughput_seq_per_s > self.best.throughput_seq_per_s
            ):
                self.best = estimate
        self.cache[key] = point
        return point

    def perf(self, x1: int, x2: int) -> PerfPoint:
        key = (x1, x2)
        if key in self.cache:
            return self.cache[key]
        config = self.space.config_at(x1, x2)
        try:
            estimate = self.simulator.estimate(
                config, target_length=self.constraint.target_length
            )
        except (ValueError, KeyError):
            estimate = None
        return self._store(key, estimate)

    def perf_batch(self, coords: list[tuple[int, int]]) -> list[PerfPoint]:
        """Evaluate many coordinates at once through the vectorized engine.

        Uncached coordinates are estimated in one ``estimate_batch`` call (in
        input order, so incumbent tracking matches a scalar left-to-right
        sweep); cached ones are returned as-is.
        """
        if not self.batched:
            return [self.perf(x1, x2) for x1, x2 in coords]
        missing: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for key in coords:
            if key not in self.cache and key not in seen:
                seen.add(key)
                missing.append(key)
        if missing:
            configs = [self.space.config_at(x1, x2) for x1, x2 in missing]
            estimates = self.simulator.estimate_batch(
                configs, target_length=self.constraint.target_length, strict=False
            )
            for key, estimate in zip(missing, estimates):
                self._store(key, estimate)
        return [self.cache[key] for key in coords]

    @property
    def evaluations(self) -> int:
        return len(self.cache)


@dataclass(order=True)
class _Block:
    """A search block ordered by (negated) upper-bound throughput."""

    sort_key: float
    lo: tuple[int, int] = field(compare=False)
    hi: tuple[int, int] = field(compare=False)
    upper: PerfPoint = field(compare=False)
    lower: PerfPoint = field(compare=False)


def _split_children(
    block: _Block,
    p_tl: PerfPoint,
    p_br: PerfPoint,
    constraint: LatencyConstraint,
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Children of one block under the split-direction heuristic.

    The corner with the higher feasible throughput is kept intact by
    splitting across the other axis.
    """
    (a1, a2), (b1, b2) = block.lo, block.hi
    tl_ok = constraint.satisfied_by(p_tl.latency_s) and p_tl.estimate is not None
    br_ok = constraint.satisfied_by(p_br.latency_s) and p_br.estimate is not None
    if tl_ok and (not br_ok or p_tl.throughput >= p_br.throughput):
        split_vertical = True
    elif br_ok:
        split_vertical = False
    else:
        split_vertical = (b1 - a1) >= (b2 - a2)

    if split_vertical and b1 > a1:
        mid = (a1 + b1) // 2
        return [((a1, a2), (mid, b2)), ((mid + 1, a2), (b1, b2))]
    if b2 > a2:
        mid = (a2 + b2) // 2
        return [((a1, a2), (b1, mid)), ((a1, mid + 1), (b1, b2))]
    if b1 > a1:
        mid = (a1 + b1) // 2
        return [((a1, a2), (mid, b2)), ((mid + 1, a2), (b1, b2))]
    return []


def branch_and_bound(
    evaluator: _Evaluator,
    constraint: LatencyConstraint,
    throughput_tolerance: float = 0.02,
    latency_tolerance: float = 0.05,
    max_evaluations: int = 4096,
    block_batch: int = 8,
) -> ScheduleEstimate | None:
    """Algorithm 1: branch-and-bound over one monotonic 2-D search box.

    Blocks are expanded in *rounds*: up to ``block_batch`` blocks are popped
    from the priority queue together and all their corner evaluations --
    the split-direction heuristic corners, then the children's bounding
    corners -- go through one ``estimate_batch`` call each.  Per-corner
    calls of ~4 points dominated branch-and-bound wall time; batching them
    across queued blocks amortizes the vectorized engine's per-call
    overhead.  Pruning decisions always use the incumbent at the time of
    the check, and a stale (lower) incumbent only prunes *less*, so as
    long as the ``max_evaluations`` budget does not bind (the default is
    sized so it never does on the paper-scale spaces) the search explores
    a superset of the classic one-block expansion and returns the same
    optimum.  When the cap does bind, the rounds may spend budget on
    blocks the classic order would have pruned, so the incumbent at
    exhaustion can differ -- the cap is a runaway-safety valve, not an
    accuracy knob.

    Args:
        evaluator: Cached point evaluator for the subspace.
        constraint: Latency bound.
        throughput_tolerance: ``epsilon_T`` as a fraction of the incumbent
            throughput; blocks whose upper bound is below the incumbent by
            more than this are pruned.
        latency_tolerance: ``epsilon_L`` as a fraction of the latency bound;
            blocks whose lower-left latency exceeds the bound by more than
            this are pruned.
        max_evaluations: Safety cap on simulator evaluations.
        block_batch: Blocks expanded per round (1 restores the classic
            one-block-at-a-time expansion order).
    """
    if block_batch < 1:
        raise ValueError("block_batch must be >= 1")
    (x1_lo, x1_hi), (x2_lo, x2_hi) = evaluator.space.bounds
    bound = constraint.bound_s
    eps_l = latency_tolerance * bound if math.isfinite(bound) else float("inf")

    # Fast path: if the most aggressive corner already satisfies the bound it
    # is optimal by monotonicity.
    top_right, lower = evaluator.perf_batch([(x1_hi, x2_hi), (x1_lo, x2_lo)])
    if top_right.estimate is not None and constraint.satisfied_by(top_right.latency_s):
        return evaluator.best

    queue: list[_Block] = []
    upper = top_right
    heapq.heappush(
        queue,
        _Block(
            sort_key=-upper.throughput_upper_bound,
            lo=(x1_lo, x2_lo),
            hi=(x1_hi, x2_hi),
            upper=upper,
            lower=lower,
        ),
    )

    # Expanding one block costs ~6 evaluations (2 heuristic corners + 4
    # child corners); cap each round's block count by the remaining budget
    # so batching does not overshoot max_evaluations any further than the
    # classic one-block loop did.
    _EVALS_PER_BLOCK = 6
    while queue and evaluator.evaluations < max_evaluations:
        # --- round selection: pop up to block_batch expandable blocks ---------
        budget_blocks = max(
            (max_evaluations - evaluator.evaluations) // _EVALS_PER_BLOCK, 1
        )
        blocks: list[_Block] = []
        while queue and len(blocks) < min(block_batch, budget_blocks):
            block = heapq.heappop(queue)
            incumbent = (
                evaluator.best.throughput_seq_per_s
                if evaluator.best is not None
                else 0.0
            )
            upper_bound = block.upper.throughput_upper_bound
            if upper_bound + throughput_tolerance * max(incumbent, 1e-12) < incumbent:
                continue
            if block.lo == block.hi:
                continue
            blocks.append(block)
        if not blocks:
            continue

        # --- split heuristic: every block's off-diagonal corners in one call --
        heuristic_points = evaluator.perf_batch(
            [
                corner
                for block in blocks
                for corner in (
                    (block.lo[0], block.hi[1]),
                    (block.hi[0], block.lo[1]),
                )
            ]
        )
        children_per_block = [
            _split_children(
                block,
                heuristic_points[2 * i],
                heuristic_points[2 * i + 1],
                constraint,
            )
            for i, block in enumerate(blocks)
        ]

        # --- children bounds: every child's corners in one call ----------------
        corner_points = evaluator.perf_batch(
            [
                corner
                for children in children_per_block
                for lo, hi in children
                for corner in (hi, lo)
            ]
        )
        index = 0
        for children in children_per_block:
            for lo, hi in children:
                child_upper = corner_points[index]
                child_lower = corner_points[index + 1]
                index += 2
                # Prune blocks whose cheapest corner already violates the bound.
                if child_lower.latency_s > bound + eps_l:
                    continue
                incumbent = (
                    evaluator.best.throughput_seq_per_s
                    if evaluator.best is not None
                    else 0.0
                )
                child_bound = child_upper.throughput_upper_bound
                if child_bound + throughput_tolerance * max(incumbent, 1e-12) < incumbent:
                    continue
                heapq.heappush(
                    queue,
                    _Block(
                        sort_key=-child_bound,
                        lo=lo,
                        hi=hi,
                        upper=child_upper,
                        lower=child_lower,
                    ),
                )
    return evaluator.best


def exhaustive_search(
    evaluator: _Evaluator, constraint: LatencyConstraint
) -> ScheduleEstimate | None:
    """Evaluate every point of the subspace (the paper's slow baseline).

    With a batched evaluator the whole grid becomes a single vectorized
    evaluation (chunked internally), which is what makes the Section 7.7
    cost comparison itself cheap to reproduce.
    """
    (x1_lo, x1_hi), (x2_lo, x2_hi) = evaluator.space.bounds
    coords = [
        (x1, x2)
        for x1 in range(x1_lo, x1_hi + 1)
        for x2 in range(x2_lo, x2_hi + 1)
    ]
    evaluator.perf_batch(coords)
    return evaluator.best


def random_search(
    evaluator: _Evaluator,
    constraint: LatencyConstraint,
    num_samples: int = 64,
    seed: int = 0,
) -> ScheduleEstimate | None:
    """Uniform random sampling of the subspace (black-box baseline)."""
    rng = np.random.default_rng(seed)
    (x1_lo, x1_hi), (x2_lo, x2_hi) = evaluator.space.bounds
    coords = [
        (int(rng.integers(x1_lo, x1_hi + 1)), int(rng.integers(x2_lo, x2_hi + 1)))
        for _ in range(num_samples)
    ]
    evaluator.perf_batch(coords)
    return evaluator.best


class XScheduler:
    """Finds the optimal schedule for a latency constraint.

    Args:
        simulator: XSimulator bound to the model, cluster and distributions.
        max_encode_batch: Upper bound of the ``B_E`` search range.
        max_decode_iterations: Upper bound of the ``N_D`` search range (RRA).
        max_micro_batches: Upper bound of the ``B_m`` search range (WAA).
    """

    def __init__(
        self,
        simulator: XSimulator,
        max_encode_batch: int = 128,
        max_decode_iterations: int = 64,
        max_micro_batches: int = 8,
    ) -> None:
        if max_encode_batch < 1:
            raise ValueError("max_encode_batch must be >= 1")
        self.simulator = simulator
        self.max_encode_batch = max_encode_batch
        self.max_decode_iterations = max_decode_iterations
        self.max_micro_batches = max_micro_batches

    # -- search space construction ------------------------------------------------

    def tensor_parallel_options(
        self, max_options_per_degree: int = 3
    ) -> list[TensorParallelConfig]:
        """Partial-TP settings to try: each profiled degree over a few GPU subsets."""
        cluster = self.simulator.cluster
        options: list[TensorParallelConfig] = [TensorParallelConfig()]
        for degree in self.simulator.profile.tp_degrees:
            if degree <= 1 or degree > cluster.num_gpus:
                continue
            max_groups = cluster.num_gpus // degree
            group_counts = sorted(
                {1, max(max_groups // 2, 1), max_groups}
            )[:max_options_per_degree]
            for groups in group_counts:
                options.append(
                    TensorParallelConfig(degree=degree, num_gpus=groups * degree)
                )
        return options

    def search_spaces(
        self,
        policies: tuple[SchedulePolicy, ...] = (
            SchedulePolicy.RRA,
            SchedulePolicy.WAA_C,
            SchedulePolicy.WAA_M,
        ),
        tensor_parallel_options: list[TensorParallelConfig] | None = None,
    ) -> list[SearchSpace]:
        """Enumerate the per-(policy, TP) subspaces to search."""
        tp_options = tensor_parallel_options or self.tensor_parallel_options()
        max_nd = min(
            self.max_decode_iterations, self.simulator.output_distribution.max_len
        )
        spaces: list[SearchSpace] = []
        for policy, tp in itertools.product(policies, tp_options):
            if policy.is_waa:
                num_stages = max(tp.stages_for(self.simulator.cluster.num_gpus), 1)
                if num_stages < 2:
                    continue  # WAA needs separate encode and decode stages
                micro_values = tuple(
                    range(min(self.max_micro_batches, max(num_stages, 1)), 0, -1)
                )
                spaces.append(
                    SearchSpace(
                        policy=policy,
                        tensor_parallel=tp,
                        encode_batch_range=(1, self.max_encode_batch),
                        second_values=micro_values,
                        second_name="B_m",
                    )
                )
            else:
                nd_values = tuple(range(max_nd, 0, -1))
                spaces.append(
                    SearchSpace(
                        policy=policy,
                        tensor_parallel=tp,
                        encode_batch_range=(1, self.max_encode_batch),
                        second_values=nd_values,
                        second_name="N_D",
                    )
                )
        return spaces

    # -- top-level search ----------------------------------------------------------

    def schedule(
        self,
        constraint: LatencyConstraint,
        policies: tuple[SchedulePolicy, ...] = (
            SchedulePolicy.RRA,
            SchedulePolicy.WAA_C,
            SchedulePolicy.WAA_M,
        ),
        method: str = "branch_and_bound",
        tensor_parallel_options: list[TensorParallelConfig] | None = None,
        batched: bool = True,
    ) -> SearchResult:
        """Find the throughput-optimal schedule under ``constraint``.

        Args:
            constraint: The latency bound (SLA-(b) style: the latency of
                generating the target-length sequence).
            policies: Which policies to consider; the best across all is
                returned (the paper runs RRA and WAA searches separately and
                keeps the winner).
            method: ``"branch_and_bound"``, ``"exhaustive"`` or ``"random"``.
            tensor_parallel_options: Explicit partial-TP settings to search.
            batched: Evaluate candidate points through the vectorized
                ``estimate_batch`` engine (default); ``False`` forces the
                scalar reference path, used by the perf-regression harness.
        """
        start = time.perf_counter()
        best: ScheduleEstimate | None = None
        evaluations = 0
        space_size = 0
        for space in self.search_spaces(policies, tensor_parallel_options):
            evaluator = _Evaluator(self.simulator, space, constraint, batched=batched)
            if method == "branch_and_bound":
                candidate = branch_and_bound(evaluator, constraint)
            elif method == "exhaustive":
                candidate = exhaustive_search(evaluator, constraint)
            elif method == "random":
                candidate = random_search(evaluator, constraint)
            else:
                raise ValueError(f"unknown search method {method!r}")
            evaluations += evaluator.evaluations
            space_size += space.num_points
            if candidate is not None and (
                best is None
                or candidate.throughput_seq_per_s > best.throughput_seq_per_s
            ):
                best = candidate
        elapsed = time.perf_counter() - start
        return SearchResult(
            best=best,
            evaluations=evaluations,
            elapsed_s=elapsed,
            method=method,
            space_size=space_size,
        )

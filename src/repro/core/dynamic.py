"""Dynamic workload adjustment (Section 5.2).

Both RRA and WAA schedules are sized for *average* encoder/decoder batch
sizes, but individual batches deviate because input and output lengths vary.
The runtime therefore adjusts the encoder batch on every admission:

* the encoder workload (sum of input lengths in the admitted batch) is kept
  within a threshold of the scheduled average workload, and
* the decoder batch is monitored -- when the standing pool drifts below or
  above its target, the encoder batch is increased or decreased to steer it
  back.

:class:`DynamicWorkloadAdjuster` implements exactly this policy and is used
by XRunner; it can be disabled to reproduce the ablation of running with the
static schedule only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.request import RequestState


@dataclass
class DynamicWorkloadAdjuster:
    """Keeps encoder/decoder workloads near their scheduled averages.

    Attributes:
        target_encode_batch: Scheduled ``B_E``.
        target_decode_batch: Scheduled steady-state ``B_D``.
        avg_input_len: Average input length the schedule assumed.
        workload_threshold: Allowed relative deviation of the encoder
            workload from its average before admission stops.
        pool_threshold: Relative decoder-pool deviation that triggers an
            encoder batch correction.
        enabled: When False, always admit exactly ``target_encode_batch``.
    """

    target_encode_batch: int
    target_decode_batch: float
    avg_input_len: float
    workload_threshold: float = 0.1
    pool_threshold: float = 0.1
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.target_encode_batch < 1:
            raise ValueError("target_encode_batch must be >= 1")
        if self.target_decode_batch <= 0:
            raise ValueError("target_decode_batch must be positive")
        if self.avg_input_len <= 0:
            raise ValueError("avg_input_len must be positive")
        if not 0 <= self.workload_threshold <= 1:
            raise ValueError("workload_threshold must be in [0, 1]")
        if not 0 <= self.pool_threshold <= 1:
            raise ValueError("pool_threshold must be in [0, 1]")

    # -- encoder batch sizing -----------------------------------------------------

    def target_batch_for_pool(self, pool_size: int, freed_slots: int) -> int:
        """Encoder batch target given the current decoder pool occupancy.

        The encoder refills the standing decode pool back to its scheduled
        size ``B_D``: the admission target is the pool deficit, which at
        steady state equals the number of queries freed by early termination
        (i.e. roughly ``B_E``).  To keep the encoder workload predictable the
        target is capped near the scheduled encoder batch, so an empty pool
        (start-up) is filled over a few admissions rather than one giant
        encoding batch.

        ``freed_slots`` is the number of queries completed since the last
        admission and is used as a fallback when the pool is already full but
        slots were just freed.
        """
        if pool_size < 0 or freed_slots < 0:
            raise ValueError("pool_size and freed_slots must be non-negative")
        if not self.enabled:
            return self.target_encode_batch
        deficit = int(round(self.target_decode_batch)) - pool_size
        if deficit <= 0:
            return 0
        return min(deficit, self._admission_cap())

    def _admission_cap(self) -> int:
        """Near-``B_E`` cap on one admission's target count (see above)."""
        return max(
            int(round((1.0 + self.pool_threshold) * 2 * self.target_encode_batch)),
            1,
        )

    @property
    def max_admit(self) -> int:
        """Upper bound on the requests one admission can ever select.

        Callers feed :meth:`admit_count` a pending window of at most this
        many input lengths instead of materializing the whole queue; derived
        from the same cap :meth:`target_batch_for_pool` applies, so the
        window can never be shorter than the target count.
        """
        return max(self._admission_cap(), self.target_encode_batch)

    def admit_count(
        self,
        input_lens: np.ndarray,
        pool_size: int,
        freed_slots: int,
    ) -> int:
        """How many of the next pending requests join the encoder batch.

        ``input_lens`` holds the input lengths of the queue's head (at
        least :attr:`max_admit` entries, or the whole queue if shorter), in
        admission order.  The batch grows until either the target count is
        reached or the encoder workload (cumulative input length) exceeds
        the scheduled average workload by the threshold -- evaluated as one
        vectorized cumulative sum rather than a per-request loop.
        """
        available = len(input_lens)
        if available == 0:
            return 0
        target_count = self.target_batch_for_pool(pool_size, freed_slots)
        if target_count == 0:
            return 0
        if not self.enabled:
            return min(available, self.target_encode_batch)
        max_workload = (
            (1.0 + self.workload_threshold) * target_count * self.avg_input_len
        )
        window = np.asarray(input_lens[:target_count])
        cumulative = np.cumsum(window)
        over = cumulative > max_workload
        over[0] = False  # the first request is always admitted
        if over.any():
            return int(np.argmax(over))
        return int(window.size)

    def admit(
        self,
        pending: list[RequestState],
        pool_size: int,
        freed_slots: int,
    ) -> list[RequestState]:
        """Select the next encoder batch from ``pending`` (without removing).

        Per-object convenience wrapper over :meth:`admit_count` for callers
        holding request lists; the pool-backed drivers call
        :meth:`admit_count` on a column slice directly.
        """
        if not pending:
            return []
        window = np.array(
            [request.input_len for request in pending[: self.max_admit]],
            dtype=np.int64,
        )
        count = self.admit_count(window, pool_size, freed_slots)
        return list(pending[:count])

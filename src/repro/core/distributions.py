"""Sequence-length distributions and completion-probability math.

Two things live here:

1. :class:`SequenceDistribution` -- the probability distribution of input or
   output sequence lengths.  The paper found a truncated normal (truncated
   below zero) to best match public NLP datasets, and additionally uses skew
   normal variants for the sensitivity study of Section 7.6 and empirical
   distributions for the real-dataset experiments of Section 7.5.

2. The probabilistic analysis of Section 6: given the output-length
   distribution ``P_D(S)`` and the encoding frequency ``N_D`` of RRA
   scheduling, compute ``P_D(U)`` -- the probability that a query finishes
   decoding at the ``U``-th iteration after the most recent encoding phase --
   and from it the steady-state relationship between encoder and decoder
   batch sizes.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

import numpy as np
from scipy import stats


def _normalise(probabilities: np.ndarray) -> np.ndarray:
    total = float(probabilities.sum())
    if total <= 0:
        raise ValueError("distribution has no probability mass")
    return probabilities / total


@dataclass(frozen=True)
class SequenceDistribution:
    """Discrete distribution over positive integer sequence lengths.

    Instances are immutable and carry the full probability mass function on
    ``1..max_len``, so every statistic the scheduler needs (mean, percentile,
    completion probabilities) is an exact sum rather than a Monte-Carlo
    estimate.

    Attributes:
        lengths: Sorted array of support points (positive integers).
        probabilities: Probability of each support point; sums to one.
        name: Optional label, e.g. ``"summarization-output"``.
    """

    lengths: np.ndarray
    probabilities: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=np.int64)
        probs = np.asarray(self.probabilities, dtype=np.float64)
        if lengths.ndim != 1 or probs.ndim != 1:
            raise ValueError("lengths and probabilities must be 1-D")
        if lengths.shape != probs.shape:
            raise ValueError("lengths and probabilities must have equal length")
        if lengths.size == 0:
            raise ValueError("distribution must have at least one support point")
        if np.any(lengths <= 0):
            raise ValueError("sequence lengths must be positive")
        if np.any(np.diff(lengths) <= 0):
            raise ValueError("lengths must be strictly increasing")
        if np.any(probs < 0):
            raise ValueError("probabilities must be non-negative")
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "probabilities", _normalise(probs))
        # Memo for percentile() lookups; the instance is immutable, so every
        # statistic can be computed once (the scheduler's hot loop queries
        # mean/percentile on every estimate otherwise).
        object.__setattr__(self, "_percentile_memo", {})
        object.__setattr__(self, "_cdf", None)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def truncated_normal(
        cls,
        mean: float,
        std: float,
        max_len: int,
        min_len: int = 1,
        name: str = "",
    ) -> "SequenceDistribution":
        """Normal distribution truncated to ``[min_len, max_len]`` and discretised.

        This is the distribution family the paper uses for the synthetic
        workloads (Section 7.1).
        """
        if std <= 0:
            raise ValueError("std must be positive")
        if max_len < min_len or min_len < 1:
            raise ValueError("need 1 <= min_len <= max_len")
        lengths = np.arange(min_len, max_len + 1)
        density = stats.norm.pdf(lengths, loc=mean, scale=std)
        if density.sum() <= 0:
            # Mean far outside the window; fall back to the nearest endpoint.
            density = np.zeros_like(density)
            density[np.argmin(np.abs(lengths - mean))] = 1.0
        return cls(lengths=lengths, probabilities=density, name=name)

    @classmethod
    def skew_normal(
        cls,
        mean: float,
        std: float,
        skewness: float,
        max_len: int,
        min_len: int = 1,
        name: str = "",
    ) -> "SequenceDistribution":
        """Skew-normal distribution with the requested mean/std/skewness.

        Used by the Section 7.6 sensitivity study, which varies the skewness
        in (-1, 1) while keeping mean and standard deviation fixed.  The
        shape parameter ``alpha`` is recovered from the target skewness and
        the location/scale are adjusted so the first two moments match.
        """
        if std <= 0:
            raise ValueError("std must be positive")
        if not -1.0 < skewness < 1.0:
            raise ValueError("skewness of a skew normal is limited to (-1, 1)")
        if abs(skewness) < 1e-12:
            return cls.truncated_normal(mean, std, max_len, min_len, name)
        # Solve for delta from |skewness| using the standard skew-normal moment
        # formula, then recover alpha = delta / sqrt(1 - delta^2).
        abs_skew = abs(skewness)
        num = (2.0 * abs_skew / (4.0 - math.pi)) ** (1.0 / 3.0)
        delta = math.copysign(
            num / math.sqrt(2.0 / math.pi * (1.0 + num ** 2)), skewness
        )
        delta = max(min(delta, 0.999), -0.999)
        alpha = delta / math.sqrt(1.0 - delta ** 2)
        # Match mean and std: X = loc + scale * Z, Z ~ SkewNormal(alpha).
        z_mean = math.sqrt(2.0 / math.pi) * delta
        z_std = math.sqrt(1.0 - z_mean ** 2)
        scale = std / z_std
        loc = mean - scale * z_mean
        lengths = np.arange(min_len, max_len + 1)
        density = stats.skewnorm.pdf(lengths, a=alpha, loc=loc, scale=scale)
        if density.sum() <= 0:
            density = np.zeros_like(density, dtype=float)
            density[np.argmin(np.abs(lengths - mean))] = 1.0
        return cls(lengths=lengths, probabilities=density, name=name)

    @classmethod
    def empirical(
        cls, samples: np.ndarray | list[int], name: str = ""
    ) -> "SequenceDistribution":
        """Empirical distribution from observed sequence lengths.

        This is how a deployment would feed observed service statistics into
        the scheduler, and how the real-dataset experiments (Section 7.5)
        estimate the distribution from 10% of the dataset.
        """
        arr = np.asarray(samples, dtype=np.int64)
        if arr.size == 0:
            raise ValueError("samples must be non-empty")
        arr = np.clip(arr, 1, None)
        values, counts = np.unique(arr, return_counts=True)
        return cls(lengths=values, probabilities=counts.astype(float), name=name)

    @classmethod
    def constant(cls, length: int, name: str = "") -> "SequenceDistribution":
        """Point mass at a single length (useful in tests)."""
        if length < 1:
            raise ValueError("length must be >= 1")
        return cls(
            lengths=np.array([length]), probabilities=np.array([1.0]), name=name
        )

    # -- statistics ------------------------------------------------------------
    #
    # All statistics are cached: instances are immutable, and the scheduler's
    # hot loop reads mean/std/percentile on every single estimate.

    @functools.cached_property
    def mean(self) -> float:
        """Expected sequence length."""
        return float(np.dot(self.lengths, self.probabilities))

    @functools.cached_property
    def std(self) -> float:
        """Standard deviation of the sequence length."""
        mean = self.mean
        var = float(np.dot((self.lengths - mean) ** 2, self.probabilities))
        return math.sqrt(max(var, 0.0))

    @functools.cached_property
    def max_len(self) -> int:
        """Largest length in the support."""
        return int(self.lengths[-1])

    @functools.cached_property
    def min_len(self) -> int:
        """Smallest length in the support."""
        return int(self.lengths[0])

    def percentile(self, q: float) -> int:
        """Smallest length whose CDF reaches ``q`` (``q`` in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        memo = self._percentile_memo
        if q in memo:
            return memo[q]
        if self._cdf is None:
            object.__setattr__(self, "_cdf", np.cumsum(self.probabilities))
        idx = int(np.searchsorted(self._cdf, q / 100.0, side="left"))
        idx = min(idx, len(self.lengths) - 1)
        value = int(self.lengths[idx])
        memo[q] = value
        return value

    def pmf(self, length: int) -> float:
        """Probability of exactly ``length``."""
        idx = np.searchsorted(self.lengths, length)
        if idx < len(self.lengths) and self.lengths[idx] == length:
            return float(self.probabilities[idx])
        return 0.0

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` lengths i.i.d. from the distribution."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return rng.choice(self.lengths, size=size, p=self.probabilities)

    def scaled_mean(self, factor: float, name: str = "") -> "SequenceDistribution":
        """A copy with the mean scaled by ``factor`` (std preserved).

        Mirrors the Section 7.6 experiment that shifts the average output
        length while keeping the other moments fixed.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        new_mean = self.mean * factor
        max_len = max(int(round(self.max_len * max(factor, 1.0))), self.max_len)
        return SequenceDistribution.truncated_normal(
            new_mean, self.std, max_len, name=name or f"{self.name}*mu{factor:g}"
        )

    def scaled_std(self, factor: float, name: str = "") -> "SequenceDistribution":
        """A copy with the standard deviation scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return SequenceDistribution.truncated_normal(
            self.mean,
            max(self.std * factor, 1e-6),
            self.max_len,
            name=name or f"{self.name}*sigma{factor:g}",
        )


# --- Section 6: completion probability for RRA scheduling ---------------------


def completion_probability(
    output_dist: SequenceDistribution, num_decode_iterations: int
) -> np.ndarray:
    """``P_D(U)`` for ``U = 1..N_D`` under RRA scheduling.

    ``P_D(U | S)`` is 1 at ``U = S`` when ``S <= N_D`` (the query finishes in
    the first decoding phase after its encoding), and ``1 / ceil(S / N_D)``
    at ``U = 1 + ((S - 1) mod N_D)`` when ``S > N_D`` (the query finishes in
    one specific iteration of one of its ``ceil(S / N_D)`` decoding phases,
    each phase being equally likely to be "the one" observed at steady state).

    Returns:
        Array of length ``num_decode_iterations`` where entry ``U-1`` is
        ``P_D(U) = sum_S P_D(U | S) P_D(S)``.  The entries sum to the
        expected fraction of an in-flight batch that completes per decoding
        phase, which is at most one and strictly less than one whenever some
        outputs are longer than ``N_D``.
    """
    if num_decode_iterations < 1:
        raise ValueError("num_decode_iterations must be >= 1")
    n_d = num_decode_iterations
    p_u = np.zeros(n_d, dtype=np.float64)
    for length, prob in zip(output_dist.lengths, output_dist.probabilities):
        s = int(length)
        if s <= n_d:
            p_u[s - 1] += prob
        else:
            phases = math.ceil(s / n_d)
            u = 1 + ((s - 1) % n_d)
            p_u[u - 1] += prob / phases
    return p_u


def expected_completion_fraction(
    output_dist: SequenceDistribution, num_decode_iterations: int
) -> float:
    """``sum_U P_D(U)``: expected fraction of the batch completing per phase."""
    return float(completion_probability(output_dist, num_decode_iterations).sum())


def decode_batch_for_encode_batch(
    encode_batch: float,
    output_dist: SequenceDistribution,
    num_decode_iterations: int,
) -> float:
    """Steady-state decoder batch ``B_D = B_E / sum_U P_D(U)`` (Section 6).

    At steady state the number of queries completing per decoding phase must
    equal the number of freshly encoded queries fed in, so the standing
    decoder batch is the encoder batch divided by the per-phase completion
    fraction.
    """
    if encode_batch < 0:
        raise ValueError("encode_batch must be non-negative")
    fraction = expected_completion_fraction(output_dist, num_decode_iterations)
    if fraction <= 0:
        raise ValueError("completion fraction is zero; N_D too small for support")
    return encode_batch / fraction


def expected_decode_batch_per_iteration(
    decode_batch: float,
    output_dist: SequenceDistribution,
    num_decode_iterations: int,
) -> np.ndarray:
    """Expected batch size at each of the ``N_D`` iterations of a decode phase.

    Queries that complete at iteration ``U`` (with probability ``P_D(U)``)
    are early-terminated and no longer occupy a batch slot at iterations
    ``> U``; this array feeds the per-iteration workload estimate of the
    timeline simulator.
    """
    p_u = completion_probability(output_dist, num_decode_iterations)
    remaining = np.empty(num_decode_iterations, dtype=np.float64)
    alive = 1.0
    for u in range(num_decode_iterations):
        remaining[u] = alive
        alive = max(alive - p_u[u], 0.0)
    return decode_batch * remaining


def average_context_length(
    input_dist: SequenceDistribution,
    output_dist: SequenceDistribution,
    decoder_only: bool,
) -> float:
    """Average attention context per decode step at steady state.

    A request that eventually generates ``S`` tokens spends ``S`` steps in
    the decoder, and at a uniformly random observation step has generated
    about ``S / 2`` tokens; weighting by residence time (length-biased
    sampling) gives ``E[S^2] / (2 E[S])`` generated tokens on average.  For
    decoder-only models the cached input tokens (length-biased as well) are
    part of the context too.
    """
    out_mean = output_dist.mean
    out_sq = float(np.dot(output_dist.lengths.astype(float) ** 2, output_dist.probabilities))
    generated = out_sq / (2.0 * out_mean) if out_mean > 0 else 0.0
    if not decoder_only:
        return generated
    # Inputs of requests currently decoding are length-biased by output length
    # only if correlated; the paper assumes independence, so use the plain mean.
    return generated + input_dist.mean

"""Execution metrics: per-request latencies and aggregate throughput.

These are the quantities the paper's figures report: throughput in completed
sequences per second (Figures 6-8, 10; Table 6), latency percentiles against
the bound (Figure 11), per-stage execution-time variance (Table 7), and
per-GPU memory use (Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.request import RequestState


@dataclass(frozen=True)
class RunResult:
    """Measured outcome of executing a trace under some schedule.

    Attributes:
        system: Name of the executing system ("exegpt-rra", "ft", ...).
        makespan_s: Wall-clock time from start to last completion.
        num_requests: Requests completed.
        total_generated_tokens: Tokens generated across all requests.
        latencies_s: Per-request end-to-end latencies (encode start to last
            token), in trace-request order.
        completion_times_s: Per-request completion timestamps, in the same
            order; used for steady-state throughput windows.
        warmup_requests: Number of leading requests admitted during the
            initial pool fill; latency statistics can exclude them.
        stage_utilization: Busy fraction per pipeline stage.
        stage_times: Raw per-execution stage durations, keyed by phase
            ("encode"/"decode"), for the Table 7 variance analysis.
        peak_memory_gib: Peak per-stage memory use in GiB (stage id -> GiB),
            when the driver tracks it.
        extra: Free-form additional measurements.
    """

    system: str
    makespan_s: float
    num_requests: int
    total_generated_tokens: int
    latencies_s: tuple[float, ...]
    completion_times_s: tuple[float, ...] = ()
    output_lengths: tuple[int, ...] = ()
    warmup_requests: int = 0
    stage_utilization: dict[object, float] = field(default_factory=dict)
    stage_times: dict[str, tuple[float, ...]] = field(default_factory=dict)
    peak_memory_gib: dict[object, float] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)

    # -- throughput ---------------------------------------------------------------

    @property
    def throughput_seq_per_s(self) -> float:
        """Completed sequences per second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.num_requests / self.makespan_s

    @property
    def throughput_tokens_per_s(self) -> float:
        """Generated tokens per second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_generated_tokens / self.makespan_s

    def steady_state_throughput(self, trim: float = 0.1) -> float:
        """Sequences per second over the central completion window.

        Finite traces spend a sizeable fraction of their makespan filling and
        draining the standing decode batch; trimming the first and last
        ``trim`` fraction of completions measures the steady-state rate the
        paper's long-running experiments observe.  Falls back to the overall
        throughput for very small traces.
        """
        if not 0 <= trim < 0.5:
            raise ValueError("trim must be in [0, 0.5)")
        times = np.sort(np.asarray(self.completion_times_s, dtype=float))
        if times.size < 10 or trim == 0:
            return self.throughput_seq_per_s
        lo = int(times.size * trim)
        hi = int(times.size * (1.0 - trim)) - 1
        if hi <= lo or times[hi] <= times[lo]:
            return self.throughput_seq_per_s
        window = times[hi] - times[lo]
        if window < 0.2 * self.makespan_s:
            # Completions are bunched (the whole trace fit into one standing
            # batch); the trimmed window is not representative, fall back to
            # the overall rate.
            return self.throughput_seq_per_s
        return (hi - lo) / window

    # -- latency ---------------------------------------------------------------------

    def latency_percentile(self, q: float, skip_warmup: bool = False) -> float:
        """Latency at percentile ``q`` (in [0, 100]).

        With ``skip_warmup`` the leading ``warmup_requests`` requests (the
        initial pool fill, whose encode phases are atypically large) are
        excluded, mirroring steady-state measurement.
        """
        if not self.latencies_s:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        values = np.asarray(self.latencies_s)
        if skip_warmup and 0 < self.warmup_requests < len(values):
            values = values[self.warmup_requests:]
        return float(np.percentile(values, q))

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile request latency."""
        return self.latency_percentile(99.0)

    @property
    def mean_latency_s(self) -> float:
        """Mean request latency."""
        if not self.latencies_s:
            return 0.0
        return float(np.mean(self.latencies_s))

    @property
    def max_latency_s(self) -> float:
        """Worst-case request latency."""
        if not self.latencies_s:
            return 0.0
        return float(np.max(self.latencies_s))

    def reference_length_latency(self, target_length: int) -> float:
        """Worst latency among requests of at most ``target_length`` tokens.

        This is the SLA-(b) measurement of the paper: the latency bound
        applies to generating a sequence of a pre-specified (99th-percentile)
        length, so only requests up to that length are held against it.
        Warm-up requests are excluded.  Falls back to the skip-warmup p99
        when per-request lengths were not recorded.
        """
        if target_length < 1:
            raise ValueError("target_length must be >= 1")
        if not self.output_lengths or len(self.output_lengths) != len(self.latencies_s):
            return self.latency_percentile(99.0, skip_warmup=True)
        latencies = np.asarray(self.latencies_s)
        lengths = np.asarray(self.output_lengths)
        start = self.warmup_requests if 0 < self.warmup_requests < len(latencies) else 0
        latencies = latencies[start:]
        lengths = lengths[start:]
        mask = lengths <= target_length
        if not np.any(mask):
            return self.latency_percentile(99.0, skip_warmup=True)
        return float(np.max(latencies[mask]))

    def satisfies_bound(self, bound_s: float) -> bool:
        """Whether the 99th-percentile latency meets a bound."""
        return self.p99_latency_s <= bound_s

    # -- stage-time variance (Table 7) ------------------------------------------------

    def stage_time_stats(self, phase: str) -> dict[str, float]:
        """Mean and 99th-percentile half-range of a phase's stage times.

        Returns a dict with ``mean``, ``p99_range`` (half-width of the
        central 99% interval) and ``p99_range_pct`` (the same as a percentage
        of the mean), matching the format of Table 7.
        """
        times = np.asarray(self.stage_times.get(phase, ()), dtype=float)
        if times.size == 0:
            return {"mean": 0.0, "p99_range": 0.0, "p99_range_pct": 0.0}
        mean = float(times.mean())
        lo, hi = np.percentile(times, [0.5, 99.5])
        half_range = float((hi - lo) / 2.0)
        pct = 100.0 * half_range / mean if mean > 0 else 0.0
        return {"mean": mean, "p99_range": half_range, "p99_range_pct": pct}


def collect_pool_result(
    system: str,
    pool,
    ids,
    makespan_s: float,
    stage_utilization: dict[object, float] | None = None,
    stage_times: dict[str, list[float]] | None = None,
    peak_memory_gib: dict[object, float] | None = None,
    extra: dict[str, float] | None = None,
    warmup_requests: int = 0,
) -> RunResult:
    """Assemble a :class:`RunResult` from a request pool's columns.

    The columnar twin of :func:`collect_result`: latencies, completion
    times and output lengths come out of the pool in one vectorized pass
    (``pool.completion_arrays``) instead of per-request attribute reads.

    Raises:
        ValueError: if any request is unfinished or missing timestamps.
    """
    latencies, completions, lengths, tokens = pool.completion_arrays(ids)
    return RunResult(
        system=system,
        makespan_s=makespan_s,
        num_requests=int(ids.size),
        total_generated_tokens=tokens,
        latencies_s=tuple(latencies.tolist()),
        completion_times_s=tuple(completions.tolist()),
        output_lengths=tuple(lengths.tolist()),
        warmup_requests=max(int(warmup_requests), 0),
        stage_utilization=dict(stage_utilization or {}),
        stage_times={k: tuple(v) for k, v in (stage_times or {}).items()},
        peak_memory_gib=dict(peak_memory_gib or {}),
        extra=dict(extra or {}),
    )


def collect_result(
    system: str,
    requests: list[RequestState],
    makespan_s: float,
    stage_utilization: dict[object, float] | None = None,
    stage_times: dict[str, list[float]] | None = None,
    peak_memory_gib: dict[object, float] | None = None,
    extra: dict[str, float] | None = None,
    warmup_requests: int = 0,
) -> RunResult:
    """Assemble a :class:`RunResult` from completed request states.

    Raises:
        ValueError: if any request is unfinished or missing timestamps.
    """
    latencies: list[float] = []
    completions: list[float] = []
    lengths: list[int] = []
    tokens = 0
    for request in requests:
        if not request.done or request.finish_s < 0:
            raise ValueError(
                f"request {request.request_id} did not complete; cannot collect metrics"
            )
        latency = request.latency_s
        if latency < 0 or math.isnan(latency):
            raise ValueError(f"request {request.request_id} has invalid latency")
        latencies.append(latency)
        completions.append(request.finish_s)
        lengths.append(request.output_len)
        tokens += request.generated
    return RunResult(
        system=system,
        makespan_s=makespan_s,
        num_requests=len(requests),
        total_generated_tokens=tokens,
        latencies_s=tuple(latencies),
        completion_times_s=tuple(completions),
        output_lengths=tuple(lengths),
        warmup_requests=max(int(warmup_requests), 0),
        stage_utilization=dict(stage_utilization or {}),
        stage_times={k: tuple(v) for k, v in (stage_times or {}).items()},
        peak_memory_gib=dict(peak_memory_gib or {}),
        extra=dict(extra or {}),
    )

"""Unified iteration-graph execution engine.

Every driver in this repository -- the offline :class:`~repro.core.runner.XRunner`
replaying RRA/WAA schedules, the continuous-batching baselines
(ORCA/vLLM/FasterTransformer/DSI) and the online arrival-driven servers --
expresses its schedule as the same kind of structure: chains of per-stage
tasks on the discrete-event :class:`~repro.engine.timeline.Timeline`, with
micro-batch splitting, early-termination compaction, WAA encoder→decoder
KV handover and deferred timestamp bookkeeping.  Before this module each
driver hand-rolled that construction, so the offline and online simulators
(and the baselines) could silently diverge on the same cost model.

:class:`ExecutionEngine` is the one implementation of those semantics.
Drivers describe one scheduling cycle declaratively as an
:class:`IterationPlan` -- encode chains, pipelined decode iterations, mixed
continuous-batching iterations, KV transfers -- and ``commit()`` prices and
emits the cycle's tasks:

* **Construction** is shared: per-stage task chaining, dependency wiring
  (pipeline hand-offs, autoregressive feedback, merge/transfer edges),
  micro-batch iteration, compaction after early termination, and the
  first-token/completion bookkeeping all live here.
* **Pricing** is batched: a plan collects every (stage, batch, length)
  tuple of the cycle and resolves the durations with one vectorized grid
  interpolation per (phase, TP-signature) group -- the same batched profile
  lookups that power :meth:`~repro.core.simulator.XSimulator.estimate_batch`
  -- instead of one scalar ``encode_stage_time``/``decode_stage_time`` call
  per task.  The batched lookups are element-wise bit-identical to the
  scalar ones (see :meth:`MeasurementGrid.lookup_batch`), and tasks are
  emitted in plan order, so replays are bit-identical to the historical
  per-task scalar path (pinned by ``tests/core/test_runner_parity.py``).
  ``batched_pricing=False`` keeps the scalar reference path for the
  perf-regression harness.

Timestamp decisions never feed back into construction *within* a cycle
(admission and completion depend only on request state), which is what
makes the collect-then-price design exact; online drivers query the clock
only between committed cycles.

Request lifecycle state lives in a :mod:`~repro.engine.pool` request pool:
the engine's helpers take *id arrays* (micro-batch groups, admitted
batches, alive sets) and resolve batch sizes, context sums and
advancement through the pool's vectorized columns; bookkeeping stamps
timestamps straight into the pool's timestamp columns at resolve time.
The same engine runs against the columnar :class:`~repro.engine.pool.
RequestPool` (production) or the per-object :class:`~repro.engine.pool.
ListPool` reference backend (perf harness), byte-for-byte identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Placement, StagePlan
from repro.core.profiler import ProfileTable
from repro.engine.pool import EMPTY_IDS
from repro.engine.timeline import Timeline

ENCODE = "encode"
DECODE = "decode"


# ---------------------------------------------------------------------------
# Priced work items
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StageWork:
    """One priced component of a stage task.

    Attributes:
        kind: ``"encode"`` or ``"decode"`` -- which profile grid prices it.
        layers: Layers the stage hosts for this phase.
        tp_degree: Tensor-parallel degree of the stage.
        spans_nodes: Whether the stage's TP group crosses a node boundary.
        batch: (Micro-)batch size of the work.
        length: Average input length (encode) or attention-context length
            (decode) of the batch.
    """

    kind: str
    layers: int
    tp_degree: int
    spans_nodes: bool
    batch: float
    length: float


# Below this many work items a vectorized lookup costs more than it saves
# (array construction and the wider lookup_batch kernel dominate), so tiny
# plans -- e.g. single-stage online cycles -- price through the scalar path.
# Both paths are element-wise bit-identical, so the choice is invisible in
# the results.
_SMALL_PLAN_ITEMS = 8


def price_work(
    profile: ProfileTable,
    items: list[StageWork],
    overhead_s: float = 0.0,
    batched: bool = True,
) -> np.ndarray:
    """Durations of ``items``, one vectorized lookup per (kind, TP) group.

    Replicates the scalar :func:`~repro.core.analytical.encode_stage_time` /
    :func:`~repro.core.analytical.decode_stage_time` arithmetic exactly:
    ``layers * (per_layer + sync)``, plus ``overhead_s`` on components with a
    positive base time (the baselines' per-iteration engine overhead).  With
    ``batched=False`` every item is priced through the scalar profile
    lookups instead -- the historical reference path, kept measurable by the
    perf harness.
    """
    out = np.zeros(len(items))
    if not items:
        return out
    if not batched or len(items) < _SMALL_PLAN_ITEMS:
        for pos, item in enumerate(items):
            if item.batch <= 0 or item.layers == 0:
                continue
            if item.kind == ENCODE:
                per = profile.encode_layer_time(item.tp_degree, item.batch, item.length)
                sync = profile.encode_sync_time(
                    item.tp_degree, item.batch, item.length, item.spans_nodes
                )
            else:
                per = profile.decode_layer_time(item.tp_degree, item.batch, item.length)
                sync = profile.decode_sync_time(
                    item.tp_degree, item.batch, item.spans_nodes
                )
            base = item.layers * (per + sync)
            out[pos] = base + (overhead_s if base > 0 else 0.0)
        return out
    groups: dict[tuple[str, int, bool], list[int]] = {}
    for pos, item in enumerate(items):
        groups.setdefault((item.kind, item.tp_degree, item.spans_nodes), []).append(pos)
    for (kind, tp, spans), positions in groups.items():
        batch = np.array([items[p].batch for p in positions], dtype=float)
        length = np.array([items[p].length for p in positions], dtype=float)
        layers = np.array([items[p].layers for p in positions], dtype=float)
        if kind == ENCODE:
            per = profile.encode_layer_time_batch(tp, batch, length)
            sync = profile.encode_sync_time_batch(tp, batch, length, spans)
        else:
            per = profile.decode_layer_time_batch(tp, batch, length)
            sync = profile.decode_sync_time_batch(tp, batch, spans)
        base = layers * (per + sync)
        if overhead_s:
            base = np.where(base > 0, base + overhead_s, base)
        out[positions] = base
    return out


def encode_chain_times(
    profile: ProfileTable,
    placement: Placement,
    stages: tuple[StagePlan, ...],
    batch: float,
    input_len: float,
    overhead_s: float = 0.0,
    batched: bool = True,
) -> list[float]:
    """Encode time of each stage of a chain, priced in one batched lookup."""
    items = [
        StageWork(
            ENCODE, s.encoder_layers, s.tp_degree,
            placement.stage_spans_nodes(s), batch, input_len,
        )
        for s in stages
    ]
    return [float(v) for v in price_work(profile, items, overhead_s, batched)]


def decode_chain_times(
    profile: ProfileTable,
    placement: Placement,
    stages: tuple[StagePlan, ...],
    batch: float,
    context_len: float,
    overhead_s: float = 0.0,
    batched: bool = True,
) -> list[float]:
    """Decode-step time of each stage of a chain, one batched lookup."""
    items = [
        StageWork(
            DECODE, s.decoder_layers, s.tp_degree,
            placement.stage_spans_nodes(s), batch, context_len,
        )
        for s in stages
    ]
    return [float(v) for v in price_work(profile, items, overhead_s, batched)]


# ---------------------------------------------------------------------------
# Declarative iteration plans
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TaskRef:
    """Handle for a planned task; its timeline id is assigned at commit."""

    task_id: int = -1

    @property
    def committed(self) -> bool:
        """Whether the owning plan has been committed."""
        return self.task_id >= 0


@dataclass(slots=True)
class _PlannedTask:
    """One task of an iteration plan, before pricing/emission."""

    stage: object
    work: list[StageWork]
    fixed_s: float
    deps: list[object]
    tag: str
    bucket: str | None
    release_s: float
    ref: TaskRef = field(default_factory=TaskRef)


class IterationPlan:
    """Declarative description of one scheduling cycle's task graph.

    Tasks are appended through the engine's chain/iteration helpers (or
    :meth:`add_task` directly) and hold :class:`TaskRef` placeholders;
    :meth:`ExecutionEngine.commit` prices every collected
    :class:`StageWork` item in batched profile lookups and emits the tasks
    onto the timeline in plan order.
    """

    def __init__(self) -> None:
        self.tasks: list[_PlannedTask] = []
        self.committed = False

    def add_task(
        self,
        stage: object,
        work: list[StageWork] | tuple[StageWork, ...] = (),
        fixed_s: float = 0.0,
        deps: list[object] | tuple[object, ...] = (),
        tag: str = "",
        bucket: str | None = None,
        release_s: float = 0.0,
    ) -> TaskRef:
        """Append one planned task; ``deps`` may mix TaskRefs and task ids."""
        if self.committed:
            raise RuntimeError("cannot add tasks to a committed plan")
        task = _PlannedTask(
            stage=stage,
            work=list(work),
            fixed_s=fixed_s,
            deps=list(deps),
            tag=tag,
            bucket=bucket,
            release_s=release_s,
        )
        self.tasks.append(task)
        return task.ref

    @property
    def num_tasks(self) -> int:
        """Planned tasks so far."""
        return len(self.tasks)


def _dep_id(dep: object) -> int:
    if isinstance(dep, TaskRef):
        if not dep.committed:
            raise ValueError("dependency TaskRef belongs to an uncommitted plan")
        return dep.task_id
    return int(dep)


# ---------------------------------------------------------------------------
# Bookkeeping and WAA handover
# ---------------------------------------------------------------------------


class Bookkeeping:
    """Deferred timestamp assignments resolved after the timeline runs.

    Construction-time decisions never depend on task times, so drivers
    record (id-batch, task) pairs while building and resolve them once at
    the end: encode starts map to task *start* times, first tokens and
    completions to task *finish* times.  Offline resolution stamps the
    times straight into the pool's timestamp columns, one vectorized
    assignment per recorded batch.
    """

    def __init__(self, pool) -> None:
        self.pool = pool
        self.encode_starts: list[tuple[np.ndarray, TaskRef]] = []
        self.first_tokens: list[tuple[np.ndarray, TaskRef]] = []
        self.completions: list[tuple[np.ndarray, TaskRef]] = []

    def resolve(self, timeline: Timeline) -> None:
        """Offline semantics: stamp the pool's timestamp columns."""
        timeline.run()
        pool = self.pool
        for ids, ref in self.encode_starts:
            pool.stamp_encode_start(ids, timeline.start_time(ref.task_id))
        for ids, ref in self.completions:
            pool.stamp_finish(ids, timeline.finish_time(ref.task_id))

    def resolve_events(self, timeline: Timeline):
        """Online semantics: yield ``(event, ids, time)`` triples.

        Events are ``"admitted"`` (task start), ``"first_token"`` and
        ``"finish"`` (task finishes); ``ids`` is the id batch the event
        applies to.  The serving layer maps them onto its per-request
        records.
        """
        timeline.schedule_pending()
        for ids, ref in self.encode_starts:
            yield "admitted", ids, timeline.start_time(ref.task_id)
        for ids, ref in self.first_tokens:
            yield "first_token", ids, timeline.finish_time(ref.task_id)
        for ids, ref in self.completions:
            yield "finish", ids, timeline.finish_time(ref.task_id)


class KVHandover:
    """WAA encoder→decoder handover queue.

    Encoded batches (id arrays) wait here until their KV transfer may
    merge into the decode pool; at most one batch merges per decode
    iteration (the handover granularity of WAA), and a batch whose
    transfer was issued in the *current* iteration only merges early when
    the pool is empty.
    """

    def __init__(self) -> None:
        self._incoming: list[tuple[np.ndarray, TaskRef]] = []

    def push(self, ids: np.ndarray, transfer: TaskRef) -> None:
        """Queue an encoded id batch behind its KV-transfer task."""
        self._incoming.append((ids, transfer))

    def merge_one(
        self,
        pool_ids: np.ndarray,
        latest_transfer: TaskRef | None,
    ) -> tuple[np.ndarray, list[TaskRef]]:
        """Merge at most one ready batch into the alive set ``pool_ids``.

        Returns ``(new_pool_ids, deps)`` where ``deps`` is the merge
        dependency (the batch's transfer task) the next decode iteration
        must wait on; ``deps`` is empty when nothing merged.
        """
        if not self._incoming:
            return pool_ids, []
        ids, transfer = self._incoming[0]
        if transfer is latest_transfer and pool_ids.size:
            return pool_ids, []
        self._incoming.pop(0)
        return np.concatenate([pool_ids, ids]), [transfer]

    def pending_ids(self) -> np.ndarray:
        """Ids of every queued batch (encoded, not yet merged), in order."""
        if not self._incoming:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([ids for ids, _ in self._incoming])

    @property
    def pending_count(self) -> int:
        """Total ids queued across batches (no concatenation)."""
        return sum(ids.size for ids, _ in self._incoming)

    def __bool__(self) -> bool:
        return bool(self._incoming)

    def __len__(self) -> int:
        return len(self._incoming)


# ---------------------------------------------------------------------------
# Outcomes of the iteration helpers
# ---------------------------------------------------------------------------


@dataclass
class DecodeOutcome:
    """Result of planning one pipelined decode iteration.

    Attributes:
        any_alive: Whether any micro-batch still had live requests.
        freed: Requests that completed (slots freed for admission).
        completed: Ids of the completed requests, in completion order.
    """

    any_alive: bool
    freed: int
    completed: np.ndarray


@dataclass
class MixedOutcome:
    """Result of planning one continuous-batching iteration.

    Attributes:
        first: First stage task of the iteration (admission timestamps).
        last: Last stage task (first-token/completion timestamps).
        completed: Ids of requests that finished in this iteration.
    """

    first: TaskRef | None
    last: TaskRef | None
    completed: np.ndarray


def _identity_key(stage: StagePlan) -> object:
    return stage.stage_id


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ExecutionEngine:
    """Builds iteration graphs on a timeline for one driver run.

    Args:
        timeline: The discrete-event timeline tasks are emitted onto.
        profile: Profiled per-layer times pricing the stage tasks.
        placement: The GPU/layer placement whose stages execute the tasks.
        pool: The request pool holding the run's lifecycle columns; every
            group/batch argument of the iteration helpers is an array of
            this pool's ids.
        decoder_only: Whether attention contexts include the prompt.
        overhead_s: Fixed per-component engine overhead (baselines).
        batched_pricing: Price plans through the vectorized profile lookups
            (default); ``False`` forces the scalar reference path, kept for
            the perf-regression harness.
    """

    def __init__(
        self,
        timeline: Timeline,
        profile: ProfileTable,
        placement: Placement,
        pool,
        decoder_only: bool,
        overhead_s: float = 0.0,
        batched_pricing: bool = True,
    ) -> None:
        self.timeline = timeline
        self.profile = profile
        self.placement = placement
        self.pool = pool
        self.decoder_only = decoder_only
        self.overhead_s = overhead_s
        self.batched_pricing = batched_pricing
        self.bookkeeping = Bookkeeping(pool)
        self.stage_times: dict[str, list[float]] = {"encode": [], "decode": []}
        self.peak_kv_tokens: dict[int, float] = {
            s.stage_id: 0.0 for s in placement.stages
        }
        # The placement is fixed for the engine's lifetime, so whether a
        # stage's TP group crosses a node boundary is too -- cache it
        # instead of re-deriving it for every planned task.
        self._spans_nodes: dict[StagePlan, bool] = {}

    def _stage_spans_nodes(self, stage: StagePlan) -> bool:
        spans = self._spans_nodes.get(stage)
        if spans is None:
            spans = self.placement.stage_spans_nodes(stage)
            self._spans_nodes[stage] = spans
        return spans

    # -- plan lifecycle ---------------------------------------------------------

    def plan(self) -> IterationPlan:
        """Start a new (empty) iteration plan."""
        return IterationPlan()

    def commit(self, plan: IterationPlan) -> None:
        """Price the plan's work in batched lookups and emit its tasks.

        Durations are resolved with one vectorized grid interpolation per
        (phase, TP-signature) group over *all* of the cycle's work items;
        tasks are then added to the timeline in plan order (preserving the
        per-stage FIFO semantics of the scalar construction), their
        :class:`TaskRef` handles are filled in, and per-phase stage times
        are recorded for the Table 7 variance analysis.
        """
        if plan.committed:
            raise RuntimeError("plan was already committed")
        items = [work for task in plan.tasks for work in task.work]
        priced = price_work(
            self.profile, items, self.overhead_s, self.batched_pricing
        )
        pos = 0
        for task in plan.tasks:
            duration = task.fixed_s
            for _ in task.work:
                duration += float(priced[pos])
                pos += 1
            self._emit(task, duration)
        plan.committed = True

    def _emit(self, task: _PlannedTask, duration: float) -> None:
        task.ref.task_id = self.timeline.add_task(
            task.stage,
            duration,
            tuple(_dep_id(d) for d in task.deps),
            tag=task.tag,
            earliest_start_s=task.release_s,
        )
        if task.bucket is not None:
            self.stage_times[task.bucket].append(duration)

    # -- encode construction -----------------------------------------------------

    def encode_chain(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        group: np.ndarray,
        stage_key=None,
        release_s: float = 0.0,
        track_peak: bool = False,
    ) -> tuple[TaskRef, TaskRef]:
        """Chain one encode (micro-)batch of pool ids across ``stages``.

        Tasks depend on their predecessor in the chain; the first task
        carries the release time (online admission clock).  Encode-start
        bookkeeping is recorded for the whole id batch against the first
        task.  Returns ``(first, last)`` refs.
        """
        if group.size == 0:
            raise ValueError("encode_chain needs a non-empty group")
        key = stage_key or _identity_key
        avg_input = self.pool.average_input(group)
        prev: TaskRef | None = None
        first: TaskRef | None = None
        for stage in stages:
            ref = plan.add_task(
                key(stage),
                work=[
                    StageWork(
                        ENCODE,
                        stage.encoder_layers,
                        stage.tp_degree,
                        self._stage_spans_nodes(stage),
                        group.size,
                        avg_input,
                    )
                ],
                deps=[prev] if prev is not None else [],
                tag="encode",
                bucket="encode",
                release_s=release_s if prev is None else 0.0,
            )
            if track_peak:
                kv_tokens = group.size * avg_input
                self.peak_kv_tokens[stage.stage_id] = max(
                    self.peak_kv_tokens.get(stage.stage_id, 0.0), float(kv_tokens)
                )
            if first is None:
                first = ref
            prev = ref
        self.bookkeeping.encode_starts.append((group, first))
        return first, prev

    def encode_phase(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        groups: list[np.ndarray],
        stage_key=None,
        release_s: float = 0.0,
        track_peak: bool = False,
    ) -> list[TaskRef]:
        """Encode several micro-batches; returns each chain's last task."""
        last_tasks: list[TaskRef] = []
        for group in groups:
            _, last = self.encode_chain(
                plan,
                stages,
                group,
                stage_key=stage_key,
                release_s=release_s,
                track_peak=track_peak,
            )
            last_tasks.append(last)
        return last_tasks

    def kv_transfer(
        self,
        plan: IterationPlan,
        group: np.ndarray,
        dep: TaskRef,
        kv_layers: int,
        handover: KVHandover | None = None,
        stage: object = "kv-transfer",
    ) -> TaskRef:
        """WAA encoder→decoder KV-cache transfer of one encoded batch.

        The transfer is a fixed-duration task on the host-staging link,
        dependent on the encode chain's last task; when ``handover`` is
        given the id batch is queued for a later :meth:`KVHandover.merge_one`.
        """
        duration = self.profile.kv_transfer_time(
            group.size, self.pool.average_input(group), kv_layers
        )
        ref = plan.add_task(
            stage, fixed_s=duration, deps=[dep], tag="kv-transfer"
        )
        if handover is not None:
            handover.push(group, ref)
        return ref

    # -- decode construction -------------------------------------------------------

    def decode_iteration(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        groups: list[np.ndarray],
        first_deps: list[object] = (),
        prev_last: dict[int, object] | None = None,
        stage_key=None,
        release_s: float = 0.0,
        track_peak: bool = False,
        early_termination: bool = True,
    ) -> DecodeOutcome:
        """One pipelined decode iteration over micro-batch id ``groups``.

        Each group's chain depends on ``first_deps`` (encode hand-offs or
        WAA merges) plus the group's previous-iteration tail from
        ``prev_last`` (autoregressive feedback; updated in place).  The
        pool advances every live member one token; with
        ``early_termination`` finished requests leave the batch (mask
        compaction, no per-request scans) and a KV-compaction task closes
        the holes they leave (appended to the group's chain tail).
        Without it -- FasterTransformer/DSI semantics -- completed requests
        keep occupying their slots and no compaction runs.
        """
        key = stage_key or _identity_key
        pool = self.pool
        prev_last = prev_last if prev_last is not None else {}
        freed = 0
        any_alive = False
        completed_all: list[np.ndarray] = []
        for g_index, group in enumerate(groups):
            # One fused pool pass per group: alive filtering, context sums
            # and the one-token advance with first/completion detection.
            step = pool.decode_step(group, self.decoder_only, early_termination)
            if step is None:
                continue
            any_alive = True
            avg_ctx = step.avg_context
            if track_peak:
                kv_tokens = float(step.context_tokens)
            deps_first: list[object] = list(first_deps)
            if g_index in prev_last:
                deps_first.append(prev_last[g_index])
            prev: TaskRef | None = None
            for stage in stages:
                ref = plan.add_task(
                    key(stage),
                    work=[
                        StageWork(
                            DECODE,
                            stage.decoder_layers,
                            stage.tp_degree,
                            self._stage_spans_nodes(stage),
                            step.batch,
                            avg_ctx,
                        )
                    ],
                    deps=[prev] if prev is not None else deps_first,
                    tag="decode",
                    bucket="decode",
                    release_s=release_s if prev is None else 0.0,
                )
                if track_peak and kv_tokens > self.peak_kv_tokens.get(
                    stage.stage_id, 0.0
                ):
                    self.peak_kv_tokens[stage.stage_id] = kv_tokens
                prev = ref
            last_decode = prev
            first_ids, completed = step.first_ids, step.completed_ids
            if first_ids.size:
                self.bookkeeping.first_tokens.append((first_ids, last_decode))
            if completed.size:
                self.bookkeeping.completions.append((completed, last_decode))
                freed += int(completed.size)
                completed_all.append(completed)
            if completed.size and early_termination:
                # Compaction copies the freed entries' worth of cache to
                # close the holes left by early termination; it occupies the
                # chain's last stage.
                compaction = self.profile.kv_compaction_time(
                    completed.size,
                    pool.average_context(completed, self.decoder_only),
                    stages[-1].decoder_layers,
                )
                if compaction > 0:
                    prev = plan.add_task(
                        key(stages[-1]),
                        fixed_s=compaction,
                        deps=[prev],
                        tag="compaction",
                    )
            prev_last[g_index] = prev
        return DecodeOutcome(
            any_alive=any_alive,
            freed=freed,
            completed=(
                np.concatenate(completed_all) if completed_all else EMPTY_IDS
            ),
        )

    # -- continuous batching ----------------------------------------------------------

    def mixed_iteration(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        alive: np.ndarray,
        admitted: np.ndarray,
        prev_last: object | None = None,
        release_s: float = 0.0,
    ) -> MixedOutcome:
        """One ORCA-style iteration: pool decodes + admitted prefills.

        ``alive`` and ``admitted`` are id batches; every member of
        ``alive`` must still owe tokens (callers keep their alive sets
        compacted).  Every stage task's duration sums the decode step of
        the running batch and one single-request prefill per admitted
        request (each component carrying the engine overhead), which is
        exactly what makes prefill-carrying iterations long -- the
        latency-variability effect the paper highlights.  Admission
        bookkeeping binds to the first stage task, first-token/completion
        bookkeeping to the last.
        """
        key = _identity_key
        pool = self.pool
        avg_ctx = (
            pool.average_context(alive, self.decoder_only) if alive.size else 0.0
        )
        prefill_lens = pool.input_lens(admitted) if admitted.size else ()
        prev: TaskRef | None = None
        first: TaskRef | None = None
        for stage in stages:
            work: list[StageWork] = []
            spans = self._stage_spans_nodes(stage)
            if alive.size:
                work.append(
                    StageWork(
                        DECODE, stage.decoder_layers, stage.tp_degree,
                        spans, alive.size, avg_ctx,
                    )
                )
            for input_len in prefill_lens:
                work.append(
                    StageWork(
                        ENCODE, stage.encoder_layers, stage.tp_degree,
                        spans, 1.0, input_len,
                    )
                )
            deps: list[object] = []
            if prev is not None:
                deps.append(prev)
            elif prev_last is not None:
                deps.append(prev_last)
            ref = plan.add_task(
                key(stage),
                work=work,
                deps=deps,
                tag="iteration",
                bucket="decode" if alive.size else "encode",
                release_s=release_s if prev is None else 0.0,
            )
            if first is None:
                first = ref
            prev = ref
        if admitted.size:
            self.bookkeeping.encode_starts.append((admitted, first))
        first_ids, completed = pool.advance(alive)
        if first_ids.size:
            self.bookkeeping.first_tokens.append((first_ids, prev))
        if completed.size:
            self.bookkeeping.completions.append((completed, prev))
        return MixedOutcome(first=first, last=prev, completed=completed)

"""Unified iteration-graph execution engine.

Every driver in this repository -- the offline :class:`~repro.core.runner.XRunner`
replaying RRA/WAA schedules, the continuous-batching baselines
(ORCA/vLLM/FasterTransformer/DSI) and the online arrival-driven servers --
expresses its schedule as the same kind of structure: chains of per-stage
tasks on the discrete-event :class:`~repro.engine.timeline.Timeline`, with
micro-batch splitting, early-termination compaction, WAA encoder→decoder
KV handover and deferred timestamp bookkeeping.  Before this module each
driver hand-rolled that construction, so the offline and online simulators
(and the baselines) could silently diverge on the same cost model.

:class:`ExecutionEngine` is the one implementation of those semantics.
Drivers describe one scheduling cycle declaratively as an
:class:`IterationPlan` -- encode chains, pipelined decode iterations, mixed
continuous-batching iterations, KV transfers -- and ``commit()`` prices and
emits the cycle's tasks:

* **Construction** is shared: per-stage task chaining, dependency wiring
  (pipeline hand-offs, autoregressive feedback, merge/transfer edges),
  micro-batch iteration, compaction after early termination, and the
  first-token/completion bookkeeping all live here.
* **Pricing** is batched: a plan collects every (stage, batch, length)
  tuple of the cycle and resolves the durations with one vectorized grid
  interpolation per (phase, TP-signature) group -- the same batched profile
  lookups that power :meth:`~repro.core.simulator.XSimulator.estimate_batch`
  -- instead of one scalar ``encode_stage_time``/``decode_stage_time`` call
  per task.  The batched lookups are element-wise bit-identical to the
  scalar ones (see :meth:`MeasurementGrid.lookup_batch`), and tasks are
  emitted in plan order, so replays are bit-identical to the historical
  per-task scalar path (pinned by ``tests/core/test_runner_parity.py``).
  ``batched_pricing=False`` keeps the scalar reference path for the
  perf-regression harness.

Timestamp decisions never feed back into construction *within* a cycle
(admission and completion depend only on request state), which is what
makes the collect-then-price design exact; online drivers query the clock
only between committed cycles.

Request lifecycle state lives in a :mod:`~repro.engine.pool` request pool:
the engine's helpers take *id arrays* (micro-batch groups, admitted
batches, alive sets) and resolve batch sizes, context sums and
advancement through the pool's vectorized columns; bookkeeping stamps
timestamps straight into the pool's timestamp columns at resolve time.
The same engine runs against the columnar :class:`~repro.engine.pool.
RequestPool` (production) or the per-object :class:`~repro.engine.pool.
ListPool` reference backend (perf harness), byte-for-byte identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Placement, StagePlan
from repro.core.profiler import ProfileTable
from repro.engine.pool import EMPTY_IDS
from repro.engine.timeline import Timeline

ENCODE = "encode"
DECODE = "decode"


# ---------------------------------------------------------------------------
# Priced work items
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StageWork:
    """One priced component of a stage task.

    Attributes:
        kind: ``"encode"`` or ``"decode"`` -- which profile grid prices it.
        layers: Layers the stage hosts for this phase.
        tp_degree: Tensor-parallel degree of the stage.
        spans_nodes: Whether the stage's TP group crosses a node boundary.
        batch: (Micro-)batch size of the work.
        length: Average input length (encode) or attention-context length
            (decode) of the batch.
    """

    kind: str
    layers: int
    tp_degree: int
    spans_nodes: bool
    batch: float
    length: float


# Integer kind codes of the columnar work buffer (kind column, int8).
KIND_ENCODE = 0
KIND_DECODE = 1

# Scalar/batched pricing crossover.  Below this many work items a vectorized
# lookup costs more than it saves: packing the query arrays and the wider
# ``lookup_batch`` kernel carry a fixed overhead worth a handful of scalar
# lookups.  The value is *measured*, not guessed: the ``pricing_crossover``
# micro-bench in ``benchmarks/perf/harness.py`` times both paths over plan
# sizes 1..64 and records the crossover point into the ``cycle_pricing``
# series of ``BENCH_search.json`` on every nightly run.  On the CI-class
# hosts tracked there the scalar loop still wins at 8 items (~311 us vs
# ~466 us per 3000 pricings) and the batched path has clearly overtaken it
# by 12 (~476 us vs ~396 us), so 10 is the default;
# ``ExecutionEngine(small_plan_items=...)`` overrides it per engine.  Both
# paths are element-wise bit-identical, so the choice is invisible in the
# results.
SMALL_PLAN_ITEMS = 10

# Plans larger than this bypass the pricing cache: probing a dict once per
# item only pays off for small steady-state cycles, while offline mega-plans
# (one plan for a whole replay) are already dominated by a handful of large
# vectorized lookups and would flood the cache with one-shot keys.
_PRICING_CACHE_MAX_PLAN_ITEMS = 4096


class PricingCache:
    """Bounded exact-key memo of priced work items.

    Keys are the exact ``(kind, tp_degree, spans_nodes, batch, length,
    layers, overhead_s, profile_token)`` tuples of a work item -- no
    rounding or quantisation -- so a hit returns the bit-identical duration
    the profile lookups would have produced; caching is therefore invisible
    in the results by construction.  ``profile_token`` is the owning
    :class:`~repro.core.profiler.ProfileTable`'s identity counter, which
    keeps entries from ever leaking between engines that share a cache but
    price against different profiles.  Eviction is FIFO (dict insertion
    order) once ``max_entries`` is exceeded; ``hits``/``misses`` counters
    feed :meth:`ExecutionEngine.pricing_cache_stats`.
    """

    __slots__ = ("max_entries", "hits", "misses", "entries")

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.entries: dict[tuple, float] = {}

    def stats(self) -> dict[str, float]:
        """Hit/miss counters plus occupancy, for perf reporting."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "size": len(self.entries),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self.entries.clear()
        self.hits = 0
        self.misses = 0


class PlanColumns:
    """Preallocated columnar (structure-of-arrays) buffer of work items.

    One slot per :class:`StageWork`-shaped item: ``kind`` (int8 code),
    ``layers``/``tp`` (int64), ``spans`` (bool), ``batch``/``length``
    (float64).  The buffer grows by doubling and is *reset*, never
    reallocated, between cycles -- the engine hands the same buffer to
    every plan it builds, so steady-state serving performs zero per-cycle
    allocation for plan storage.
    """

    __slots__ = ("kind", "layers", "tp", "spans", "batch", "length", "count")

    def __init__(self, capacity: int = 64) -> None:
        capacity = max(int(capacity), 1)
        self.kind = np.zeros(capacity, dtype=np.int8)
        self.layers = np.zeros(capacity, dtype=np.int64)
        self.tp = np.zeros(capacity, dtype=np.int64)
        self.spans = np.zeros(capacity, dtype=bool)
        self.batch = np.zeros(capacity, dtype=np.float64)
        self.length = np.zeros(capacity, dtype=np.float64)
        self.count = 0

    def reset(self) -> None:
        """Empty the buffer without releasing its capacity."""
        self.count = 0

    def _ensure(self, extra: int) -> None:
        need = self.count + extra
        cap = self.batch.size
        if need <= cap:
            return
        new_cap = max(cap * 2, need)
        for name in self.__slots__[:-1]:
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: self.count] = old[: self.count]
            setattr(self, name, grown)

    def push(
        self,
        kind: int,
        layers: int,
        tp: int,
        spans: bool,
        batch: float,
        length: float,
    ) -> int:
        """Append one item; returns its slot index."""
        i = self.count
        if i >= self.batch.size:
            self._ensure(1)
        self.kind[i] = kind
        self.layers[i] = layers
        self.tp[i] = tp
        self.spans[i] = spans
        self.batch[i] = batch
        self.length[i] = length
        self.count = i + 1
        return i

    def extend(
        self,
        kind: int,
        layers: int,
        tp: int,
        spans: bool,
        batch: np.ndarray,
        length: np.ndarray,
    ) -> int:
        """Bulk-append items sharing scalar kind/layers/tp/spans; returns start."""
        m = len(batch)
        start = self.count
        self._ensure(m)
        sl = slice(start, start + m)
        self.kind[sl] = kind
        self.layers[sl] = layers
        self.tp[sl] = tp
        self.spans[sl] = spans
        self.batch[sl] = batch
        self.length[sl] = length
        self.count = start + m
        return start


def _price_positions_scalar(
    profile: ProfileTable,
    cols: PlanColumns,
    positions,
    overhead_s: float,
    out: np.ndarray,
) -> None:
    """Price ``positions`` of ``cols`` through the scalar profile lookups."""
    kind = cols.kind
    layers = cols.layers
    tp_col = cols.tp
    spans_col = cols.spans
    batch_col = cols.batch
    length_col = cols.length
    for pos in positions:
        batch = float(batch_col[pos])
        lay = int(layers[pos])
        if batch <= 0 or lay == 0:
            continue
        tp = int(tp_col[pos])
        spans = bool(spans_col[pos])
        length = float(length_col[pos])
        if kind[pos] == KIND_ENCODE:
            per = profile.encode_layer_time(tp, batch, length)
            sync = profile.encode_sync_time(tp, batch, length, spans)
        else:
            per = profile.decode_layer_time(tp, batch, length)
            sync = profile.decode_sync_time(tp, batch, spans)
        base = lay * (per + sync)
        out[pos] = base + (overhead_s if base > 0 else 0.0)


def _price_positions_batched(
    profile: ProfileTable,
    cols: PlanColumns,
    positions: np.ndarray,
    overhead_s: float,
    out: np.ndarray,
) -> None:
    """Price ``positions`` of ``cols``, one vectorized lookup per group.

    Group-by is an argsort over a composite ``(kind, tp, spans)`` key code
    instead of a ``dict.setdefault`` loop; element-wise results are
    independent of the grouping, so this matches the scalar path bit for
    bit (see :meth:`MeasurementGrid.lookup_batch`).
    """
    code = (
        (cols.kind[positions].astype(np.int64) << 33)
        | (cols.tp[positions] << 1)
        | cols.spans[positions]
    )
    order = np.argsort(code, kind="stable")
    sorted_pos = positions[order]
    sorted_code = code[order]
    boundaries = np.flatnonzero(np.diff(sorted_code)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [sorted_code.size]))
    for s, e in zip(starts, ends):
        grp = sorted_pos[s:e]
        first = grp[0]
        tp = int(cols.tp[first])
        spans = bool(cols.spans[first])
        batch = cols.batch[grp]
        length = cols.length[grp]
        layers = cols.layers[grp].astype(float)
        if cols.kind[first] == KIND_ENCODE:
            per = profile.encode_layer_time_batch(tp, batch, length)
            sync = profile.encode_sync_time_batch(tp, batch, length, spans)
        else:
            per = profile.decode_layer_time_batch(tp, batch, length)
            sync = profile.decode_sync_time_batch(tp, batch, spans)
        base = layers * (per + sync)
        if overhead_s:
            base = np.where(base > 0, base + overhead_s, base)
        out[grp] = base


def price_columns(
    profile: ProfileTable,
    cols: PlanColumns,
    overhead_s: float = 0.0,
    batched: bool = True,
    cache: PricingCache | None = None,
    small_plan_items: int = SMALL_PLAN_ITEMS,
) -> np.ndarray:
    """Durations of a columnar work buffer.

    Replicates the scalar :func:`~repro.core.analytical.encode_stage_time` /
    :func:`~repro.core.analytical.decode_stage_time` arithmetic exactly:
    ``layers * (per_layer + sync)``, plus ``overhead_s`` on components with
    a positive base time (the baselines' per-iteration engine overhead).
    With ``batched=False`` every item is priced through the scalar profile
    lookups instead -- the historical reference path, kept measurable by
    the perf harness.  When ``cache`` is given (batched mode only), every
    item is first probed against the exact-key :class:`PricingCache`;
    misses are priced through the scalar-or-batched lookups as usual and
    inserted, so cache-on and cache-off runs are bit-identical.
    """
    n = cols.count
    out = np.zeros(n)
    if n == 0:
        return out
    if not batched or n < small_plan_items:
        _price_positions_scalar(profile, cols, range(n), overhead_s, out)
        return out
    if cache is None:
        _price_positions_batched(profile, cols, np.arange(n), overhead_s, out)
        return out
    token = profile.pricing_token
    entries = cache.entries
    kinds = cols.kind[:n].tolist()
    layers = cols.layers[:n].tolist()
    tps = cols.tp[:n].tolist()
    spans = cols.spans[:n].tolist()
    batches = cols.batch[:n].tolist()
    lengths = cols.length[:n].tolist()
    keys = [
        (kinds[i], tps[i], spans[i], batches[i], lengths[i], layers[i], overhead_s, token)
        for i in range(n)
    ]
    misses = []
    hits = 0
    for i, key_i in enumerate(keys):
        value = entries.get(key_i)
        if value is None:
            misses.append(i)
        else:
            out[i] = value
            hits += 1
    cache.hits += hits
    cache.misses += len(misses)
    if misses:
        if len(misses) < small_plan_items:
            _price_positions_scalar(profile, cols, misses, overhead_s, out)
        else:
            _price_positions_batched(
                profile, cols, np.asarray(misses, dtype=np.int64), overhead_s, out
            )
        for i in misses:
            entries[keys[i]] = float(out[i])
        max_entries = cache.max_entries
        while len(entries) > max_entries:
            del entries[next(iter(entries))]
    return out


def price_work(
    profile: ProfileTable,
    items: list[StageWork],
    overhead_s: float = 0.0,
    batched: bool = True,
    cache: PricingCache | None = None,
    small_plan_items: int = SMALL_PLAN_ITEMS,
) -> np.ndarray:
    """Durations of ``items`` -- object-list front-end of :func:`price_columns`.

    Kept as the public pricing entry point for callers that hold
    :class:`StageWork` lists (chain helpers, tests); plans built through
    the engine price their columnar buffers directly without materialising
    item objects.
    """
    cols = PlanColumns(max(len(items), 1))
    for item in items:
        cols.push(
            KIND_ENCODE if item.kind == ENCODE else KIND_DECODE,
            item.layers,
            item.tp_degree,
            item.spans_nodes,
            item.batch,
            item.length,
        )
    return price_columns(profile, cols, overhead_s, batched, cache, small_plan_items)


def encode_chain_times(
    profile: ProfileTable,
    placement: Placement,
    stages: tuple[StagePlan, ...],
    batch: float,
    input_len: float,
    overhead_s: float = 0.0,
    batched: bool = True,
) -> list[float]:
    """Encode time of each stage of a chain, priced in one batched lookup."""
    items = [
        StageWork(
            ENCODE, s.encoder_layers, s.tp_degree,
            placement.stage_spans_nodes(s), batch, input_len,
        )
        for s in stages
    ]
    return [float(v) for v in price_work(profile, items, overhead_s, batched)]


def decode_chain_times(
    profile: ProfileTable,
    placement: Placement,
    stages: tuple[StagePlan, ...],
    batch: float,
    context_len: float,
    overhead_s: float = 0.0,
    batched: bool = True,
) -> list[float]:
    """Decode-step time of each stage of a chain, one batched lookup."""
    items = [
        StageWork(
            DECODE, s.decoder_layers, s.tp_degree,
            placement.stage_spans_nodes(s), batch, context_len,
        )
        for s in stages
    ]
    return [float(v) for v in price_work(profile, items, overhead_s, batched)]


# ---------------------------------------------------------------------------
# Declarative iteration plans
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TaskRef:
    """Handle for a planned task; its timeline id is assigned at commit."""

    task_id: int = -1

    @property
    def committed(self) -> bool:
        """Whether the owning plan has been committed."""
        return self.task_id >= 0


@dataclass(slots=True)
class _PlannedTask:
    """One task of an iteration plan, before pricing/emission.

    ``work_start``/``work_count`` index the owning plan's columnar work
    buffer -- the per-item ``StageWork`` objects of the historical design
    survive only at the public :meth:`IterationPlan.add_task` boundary.
    """

    stage: object
    work_start: int
    work_count: int
    fixed_s: float
    deps: list[object]
    tag: str
    bucket: str | None
    release_s: float
    ref: TaskRef = field(default_factory=TaskRef)


class IterationPlan:
    """Declarative description of one scheduling cycle's task graph.

    Tasks are appended through the engine's chain/iteration helpers (or
    :meth:`add_task` directly) and hold :class:`TaskRef` placeholders.
    Work items live in a columnar :class:`PlanColumns` buffer -- engine
    helpers push scalars straight into the columns and register the span
    with :meth:`add_span_task`, so steady-state cycles build no per-item
    objects at all.  :meth:`ExecutionEngine.commit` prices the whole
    buffer in batched profile lookups and emits the tasks onto the
    timeline in plan order.
    """

    def __init__(self, columns: PlanColumns | None = None) -> None:
        self.tasks: list[_PlannedTask] = []
        self.columns = columns if columns is not None else PlanColumns()
        self.committed = False

    def add_task(
        self,
        stage: object,
        work: list[StageWork] | tuple[StageWork, ...] = (),
        fixed_s: float = 0.0,
        deps: list[object] | tuple[object, ...] = (),
        tag: str = "",
        bucket: str | None = None,
        release_s: float = 0.0,
    ) -> TaskRef:
        """Append one planned task; ``deps`` may mix TaskRefs and task ids."""
        if self.committed:
            raise RuntimeError("cannot add tasks to a committed plan")
        cols = self.columns
        start = cols.count
        for item in work:
            cols.push(
                KIND_ENCODE if item.kind == ENCODE else KIND_DECODE,
                item.layers,
                item.tp_degree,
                item.spans_nodes,
                item.batch,
                item.length,
            )
        task = _PlannedTask(
            stage=stage,
            work_start=start,
            work_count=cols.count - start,
            fixed_s=fixed_s,
            deps=list(deps),
            tag=tag,
            bucket=bucket,
            release_s=release_s,
        )
        self.tasks.append(task)
        return task.ref

    def add_span_task(
        self,
        stage: object,
        work_start: int,
        fixed_s: float = 0.0,
        deps: list[object] | tuple[object, ...] = (),
        tag: str = "",
        bucket: str | None = None,
        release_s: float = 0.0,
    ) -> TaskRef:
        """Append a task whose work is ``columns[work_start:count]``.

        The caller has already pushed the task's items onto
        :attr:`columns`; this just records the span boundary.
        """
        if self.committed:
            raise RuntimeError("cannot add tasks to a committed plan")
        task = _PlannedTask(
            stage=stage,
            work_start=work_start,
            work_count=self.columns.count - work_start,
            fixed_s=fixed_s,
            deps=list(deps),
            tag=tag,
            bucket=bucket,
            release_s=release_s,
        )
        self.tasks.append(task)
        return task.ref

    @property
    def num_tasks(self) -> int:
        """Planned tasks so far."""
        return len(self.tasks)


def _dep_id(dep: object) -> int:
    if isinstance(dep, TaskRef):
        if not dep.committed:
            raise ValueError("dependency TaskRef belongs to an uncommitted plan")
        return dep.task_id
    return int(dep)


# ---------------------------------------------------------------------------
# Bookkeeping and WAA handover
# ---------------------------------------------------------------------------


class Bookkeeping:
    """Deferred timestamp assignments resolved after the timeline runs.

    Construction-time decisions never depend on task times, so drivers
    record (id-batch, task) pairs while building and resolve them once at
    the end: encode starts map to task *start* times, first tokens and
    completions to task *finish* times.  Offline resolution stamps the
    times straight into the pool's timestamp columns, one vectorized
    assignment per recorded batch.
    """

    def __init__(self, pool) -> None:
        self.pool = pool
        self.encode_starts: list[tuple[np.ndarray, TaskRef]] = []
        self.first_tokens: list[tuple[np.ndarray, TaskRef]] = []
        self.completions: list[tuple[np.ndarray, TaskRef]] = []

    def resolve(self, timeline: Timeline) -> None:
        """Offline semantics: stamp the pool's timestamp columns."""
        timeline.run()
        pool = self.pool
        for ids, ref in self.encode_starts:
            pool.stamp_encode_start(ids, timeline.start_time(ref.task_id))
        for ids, ref in self.completions:
            pool.stamp_finish(ids, timeline.finish_time(ref.task_id))

    def resolve_events(self, timeline: Timeline):
        """Online semantics: yield ``(event, ids, time)`` triples.

        Events are ``"admitted"`` (task start), ``"first_token"`` and
        ``"finish"`` (task finishes); ``ids`` is the id batch the event
        applies to.  The serving layer maps them onto its per-request
        records.
        """
        timeline.schedule_pending()
        for ids, ref in self.encode_starts:
            yield "admitted", ids, timeline.start_time(ref.task_id)
        for ids, ref in self.first_tokens:
            yield "first_token", ids, timeline.finish_time(ref.task_id)
        for ids, ref in self.completions:
            yield "finish", ids, timeline.finish_time(ref.task_id)


class KVHandover:
    """WAA encoder→decoder handover queue.

    Encoded batches (id arrays) wait here until their KV transfer may
    merge into the decode pool; at most one batch merges per decode
    iteration (the handover granularity of WAA), and a batch whose
    transfer was issued in the *current* iteration only merges early when
    the pool is empty.
    """

    def __init__(self) -> None:
        self._incoming: list[tuple[np.ndarray, TaskRef]] = []

    def push(self, ids: np.ndarray, transfer: TaskRef) -> None:
        """Queue an encoded id batch behind its KV-transfer task."""
        self._incoming.append((ids, transfer))

    def merge_one(
        self,
        pool_ids: np.ndarray,
        latest_transfer: TaskRef | None,
    ) -> tuple[np.ndarray, list[TaskRef]]:
        """Merge at most one ready batch into the alive set ``pool_ids``.

        Returns ``(new_pool_ids, deps)`` where ``deps`` is the merge
        dependency (the batch's transfer task) the next decode iteration
        must wait on; ``deps`` is empty when nothing merged.
        """
        if not self._incoming:
            return pool_ids, []
        ids, transfer = self._incoming[0]
        if transfer is latest_transfer and pool_ids.size:
            return pool_ids, []
        self._incoming.pop(0)
        return np.concatenate([pool_ids, ids]), [transfer]

    def pending_ids(self) -> np.ndarray:
        """Ids of every queued batch (encoded, not yet merged), in order."""
        if not self._incoming:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([ids for ids, _ in self._incoming])

    @property
    def pending_count(self) -> int:
        """Total ids queued across batches (no concatenation)."""
        return sum(ids.size for ids, _ in self._incoming)

    def __bool__(self) -> bool:
        return bool(self._incoming)

    def __len__(self) -> int:
        return len(self._incoming)


# ---------------------------------------------------------------------------
# Outcomes of the iteration helpers
# ---------------------------------------------------------------------------


@dataclass
class DecodeOutcome:
    """Result of planning one pipelined decode iteration.

    Attributes:
        any_alive: Whether any micro-batch still had live requests.
        freed: Requests that completed (slots freed for admission).
        completed: Ids of the completed requests, in completion order.
    """

    any_alive: bool
    freed: int
    completed: np.ndarray


@dataclass
class MixedOutcome:
    """Result of planning one continuous-batching iteration.

    Attributes:
        first: First stage task of the iteration (admission timestamps).
        last: Last stage task (first-token/completion timestamps).
        completed: Ids of requests that finished in this iteration.
    """

    first: TaskRef | None
    last: TaskRef | None
    completed: np.ndarray


def _identity_key(stage: StagePlan) -> object:
    return stage.stage_id


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ExecutionEngine:
    """Builds iteration graphs on a timeline for one driver run.

    Args:
        timeline: The discrete-event timeline tasks are emitted onto.
        profile: Profiled per-layer times pricing the stage tasks.
        placement: The GPU/layer placement whose stages execute the tasks.
        pool: The request pool holding the run's lifecycle columns; every
            group/batch argument of the iteration helpers is an array of
            this pool's ids.
        decoder_only: Whether attention contexts include the prompt.
        overhead_s: Fixed per-component engine overhead (baselines).
        batched_pricing: Price plans through the vectorized profile lookups
            (default); ``False`` forces the scalar reference path (which
            also disables the pricing cache), kept for the perf-regression
            harness.
        pricing_cache: ``True`` (default) gives the engine its own
            :class:`PricingCache`, reused across every cycle it commits;
            ``False`` disables memoization; an explicit cache instance is
            shared as-is.  Only consulted in batched mode and for plans of
            at most ``_PRICING_CACHE_MAX_PLAN_ITEMS`` items; hits are
            bit-identical to fresh lookups by construction.
        small_plan_items: Scalar/batched pricing crossover; defaults to the
            measured module constant :data:`SMALL_PLAN_ITEMS`.
    """

    def __init__(
        self,
        timeline: Timeline,
        profile: ProfileTable,
        placement: Placement,
        pool,
        decoder_only: bool,
        overhead_s: float = 0.0,
        batched_pricing: bool = True,
        pricing_cache: bool | PricingCache = True,
        small_plan_items: int | None = None,
    ) -> None:
        self.timeline = timeline
        self.profile = profile
        self.placement = placement
        self.pool = pool
        self.decoder_only = decoder_only
        self.overhead_s = overhead_s
        self.batched_pricing = batched_pricing
        self.small_plan_items = (
            SMALL_PLAN_ITEMS if small_plan_items is None else int(small_plan_items)
        )
        if isinstance(pricing_cache, PricingCache):
            self.pricing_cache: PricingCache | None = pricing_cache
        elif pricing_cache and batched_pricing:
            self.pricing_cache = PricingCache()
        else:
            self.pricing_cache = None
        self.bookkeeping = Bookkeeping(pool)
        self.stage_times: dict[str, list[float]] = {"encode": [], "decode": []}
        self.peak_kv_tokens: dict[int, float] = {
            s.stage_id: 0.0 for s in placement.stages
        }
        # The placement is fixed for the engine's lifetime, so whether a
        # stage's TP group crosses a node boundary is too -- cache it
        # instead of re-deriving it for every planned task.
        self._spans_nodes: dict[StagePlan, bool] = {}
        # Reusable columnar buffers: one for the plan under construction,
        # one scratch buffer for the direct-emission fast paths
        # (decode_run / mixed_decode_template).  Reset, not reallocated.
        self._plan_columns = PlanColumns(128)
        self._columns_owner: IterationPlan | None = None
        self._scratch_columns = PlanColumns(256)

    def _stage_spans_nodes(self, stage: StagePlan) -> bool:
        spans = self._spans_nodes.get(stage)
        if spans is None:
            spans = self.placement.stage_spans_nodes(stage)
            self._spans_nodes[stage] = spans
        return spans

    def _cache_for(self, num_items: int) -> PricingCache | None:
        if (
            self.pricing_cache is not None
            and self.batched_pricing
            and num_items <= _PRICING_CACHE_MAX_PLAN_ITEMS
        ):
            return self.pricing_cache
        return None

    def pricing_cache_stats(self) -> dict[str, float] | None:
        """Hit/miss statistics of the engine's pricing cache (None if off)."""
        if self.pricing_cache is None:
            return None
        return self.pricing_cache.stats()

    # -- plan lifecycle ---------------------------------------------------------

    def plan(self) -> IterationPlan:
        """Start a new (empty) iteration plan.

        The engine's reusable columnar buffer backs the plan whenever the
        previous plan built on it has been committed; otherwise (two plans
        in flight -- unusual, but legal) the new plan gets its own buffer.
        """
        owner = self._columns_owner
        if owner is None or owner.committed:
            self._plan_columns.reset()
            plan = IterationPlan(self._plan_columns)
            self._columns_owner = plan
            return plan
        return IterationPlan()

    def commit(self, plan: IterationPlan) -> None:
        """Price the plan's work in batched lookups and emit its tasks.

        Durations are resolved straight from the plan's columnar buffer --
        a pricing-cache probe per item, then one vectorized grid
        interpolation per (phase, TP-signature) group over the misses;
        tasks are then added to the timeline in plan order (preserving the
        per-stage FIFO semantics of the scalar construction), their
        :class:`TaskRef` handles are filled in, and per-phase stage times
        are recorded for the Table 7 variance analysis.
        """
        if plan.committed:
            raise RuntimeError("plan was already committed")
        cols = plan.columns
        priced = price_columns(
            self.profile,
            cols,
            self.overhead_s,
            self.batched_pricing,
            self._cache_for(cols.count),
            self.small_plan_items,
        )
        for task in plan.tasks:
            duration = task.fixed_s
            end = task.work_start + task.work_count
            for pos in range(task.work_start, end):
                duration += float(priced[pos])
            self._emit(task, duration)
        plan.committed = True

    def _emit(self, task: _PlannedTask, duration: float) -> None:
        task.ref.task_id = self.timeline.add_task(
            task.stage,
            duration,
            tuple(_dep_id(d) for d in task.deps),
            tag=task.tag,
            earliest_start_s=task.release_s,
        )
        if task.bucket is not None:
            self.stage_times[task.bucket].append(duration)

    # -- encode construction -----------------------------------------------------

    def encode_chain(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        group: np.ndarray,
        stage_key=None,
        release_s: float = 0.0,
        track_peak: bool = False,
    ) -> tuple[TaskRef, TaskRef]:
        """Chain one encode (micro-)batch of pool ids across ``stages``.

        Tasks depend on their predecessor in the chain; the first task
        carries the release time (online admission clock).  Encode-start
        bookkeeping is recorded for the whole id batch against the first
        task.  Returns ``(first, last)`` refs.
        """
        if group.size == 0:
            raise ValueError("encode_chain needs a non-empty group")
        key = stage_key or _identity_key
        avg_input = self.pool.average_input(group)
        cols = plan.columns
        prev: TaskRef | None = None
        first: TaskRef | None = None
        for stage in stages:
            start = cols.push(
                KIND_ENCODE,
                stage.encoder_layers,
                stage.tp_degree,
                self._stage_spans_nodes(stage),
                group.size,
                avg_input,
            )
            ref = plan.add_span_task(
                key(stage),
                start,
                deps=[prev] if prev is not None else [],
                tag="encode",
                bucket="encode",
                release_s=release_s if prev is None else 0.0,
            )
            if track_peak:
                kv_tokens = group.size * avg_input
                self.peak_kv_tokens[stage.stage_id] = max(
                    self.peak_kv_tokens.get(stage.stage_id, 0.0), float(kv_tokens)
                )
            if first is None:
                first = ref
            prev = ref
        self.bookkeeping.encode_starts.append((group, first))
        return first, prev

    def encode_phase(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        groups: list[np.ndarray],
        stage_key=None,
        release_s: float = 0.0,
        track_peak: bool = False,
    ) -> list[TaskRef]:
        """Encode several micro-batches; returns each chain's last task."""
        last_tasks: list[TaskRef] = []
        for group in groups:
            _, last = self.encode_chain(
                plan,
                stages,
                group,
                stage_key=stage_key,
                release_s=release_s,
                track_peak=track_peak,
            )
            last_tasks.append(last)
        return last_tasks

    def kv_transfer(
        self,
        plan: IterationPlan,
        group: np.ndarray,
        dep: TaskRef,
        kv_layers: int,
        handover: KVHandover | None = None,
        stage: object = "kv-transfer",
    ) -> TaskRef:
        """WAA encoder→decoder KV-cache transfer of one encoded batch.

        The transfer is a fixed-duration task on the host-staging link,
        dependent on the encode chain's last task; when ``handover`` is
        given the id batch is queued for a later :meth:`KVHandover.merge_one`.
        """
        duration = self.profile.kv_transfer_time(
            group.size, self.pool.average_input(group), kv_layers
        )
        ref = plan.add_task(
            stage, fixed_s=duration, deps=[dep], tag="kv-transfer"
        )
        if handover is not None:
            handover.push(group, ref)
        return ref

    # -- decode construction -------------------------------------------------------

    def decode_iteration(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        groups: list[np.ndarray],
        first_deps: list[object] = (),
        prev_last: dict[int, object] | None = None,
        stage_key=None,
        release_s: float = 0.0,
        track_peak: bool = False,
        early_termination: bool = True,
    ) -> DecodeOutcome:
        """One pipelined decode iteration over micro-batch id ``groups``.

        Each group's chain depends on ``first_deps`` (encode hand-offs or
        WAA merges) plus the group's previous-iteration tail from
        ``prev_last`` (autoregressive feedback; updated in place).  The
        pool advances every live member one token; with
        ``early_termination`` finished requests leave the batch (mask
        compaction, no per-request scans) and a KV-compaction task closes
        the holes they leave (appended to the group's chain tail).
        Without it -- FasterTransformer/DSI semantics -- completed requests
        keep occupying their slots and no compaction runs.
        """
        key = stage_key or _identity_key
        pool = self.pool
        prev_last = prev_last if prev_last is not None else {}
        freed = 0
        any_alive = False
        completed_all: list[np.ndarray] = []
        cols = plan.columns
        for g_index, group in enumerate(groups):
            # One fused pool pass per group: alive filtering, context sums
            # and the one-token advance with first/completion detection.
            step = pool.decode_step(group, self.decoder_only, early_termination)
            if step is None:
                continue
            any_alive = True
            avg_ctx = step.avg_context
            if track_peak:
                kv_tokens = float(step.context_tokens)
            deps_first: list[object] = list(first_deps)
            if g_index in prev_last:
                deps_first.append(prev_last[g_index])
            prev: TaskRef | None = None
            for stage in stages:
                start = cols.push(
                    KIND_DECODE,
                    stage.decoder_layers,
                    stage.tp_degree,
                    self._stage_spans_nodes(stage),
                    step.batch,
                    avg_ctx,
                )
                ref = plan.add_span_task(
                    key(stage),
                    start,
                    deps=[prev] if prev is not None else deps_first,
                    tag="decode",
                    bucket="decode",
                    release_s=release_s if prev is None else 0.0,
                )
                if track_peak and kv_tokens > self.peak_kv_tokens.get(
                    stage.stage_id, 0.0
                ):
                    self.peak_kv_tokens[stage.stage_id] = kv_tokens
                prev = ref
            last_decode = prev
            first_ids, completed = step.first_ids, step.completed_ids
            if first_ids.size:
                self.bookkeeping.first_tokens.append((first_ids, last_decode))
            if completed.size:
                self.bookkeeping.completions.append((completed, last_decode))
                freed += int(completed.size)
                completed_all.append(completed)
            if completed.size and early_termination:
                # Compaction copies the freed entries' worth of cache to
                # close the holes left by early termination; it occupies the
                # chain's last stage.
                compaction = self.profile.kv_compaction_time(
                    completed.size,
                    pool.average_context(completed, self.decoder_only),
                    stages[-1].decoder_layers,
                )
                if compaction > 0:
                    prev = plan.add_task(
                        key(stages[-1]),
                        fixed_s=compaction,
                        deps=[prev],
                        tag="compaction",
                    )
            prev_last[g_index] = prev
        return DecodeOutcome(
            any_alive=any_alive,
            freed=freed,
            completed=(
                np.concatenate(completed_all) if completed_all else EMPTY_IDS
            ),
        )

    def decode_run(
        self,
        stages: tuple[StagePlan, ...],
        groups: list[np.ndarray],
        iterations: int,
        first_deps: list[object] = (),
        prev_last: dict[int, object] | None = None,
        stage_key=None,
        release_s: float = 0.0,
        track_peak: bool = False,
    ) -> DecodeOutcome:
        """Plan-free bulk equivalent of a :meth:`decode_iteration` loop.

        Emits up to ``iterations`` early-terminating decode iterations over
        ``groups`` directly onto the timeline -- the steady-state template
        fast path of the online servers.  Per-iteration batch sizes,
        context sums, first tokens, completions and compaction loads come
        from one vectorized :meth:`~repro.engine.pool.RequestPool.decode_run`
        pass per group instead of one ``decode_step`` per iteration, and
        durations are priced straight from the engine's scratch columns
        (pricing-cache probe, then grouped batched lookups).  Task order,
        dependencies, release stamps, bookkeeping and ``prev_last`` updates
        replicate the loop

        ``for i in range(iterations): decode_iteration(..., first_deps if
        i == 0 else [], prev_last, ...)``

        bit-for-bit (pinned by the template-parity serving tests).  Any
        plan whose tasks feed ``first_deps`` must be committed first, since
        emission is immediate.  ``prev_last`` is updated in place with
        committed task ids, interoperable with later plans and runs.
        """
        key = stage_key or _identity_key
        pool = self.pool
        timeline = self.timeline
        if prev_last is None:
            prev_last = {}
        n_stages = len(stages)
        runs = [pool.decode_run(g, self.decoder_only, iterations) for g in groups]
        if all(r is None for r in runs):
            return DecodeOutcome(any_alive=False, freed=0, completed=EMPTY_IDS)
        stage_meta = [
            (key(s), s.decoder_layers, s.tp_degree, self._stage_spans_nodes(s))
            for s in stages
        ]
        tail_layers = stages[-1].decoder_layers
        cols = self._scratch_columns
        cols.reset()
        offsets: list[int] = []
        comp_durations: list[np.ndarray | None] = []
        for r in runs:
            if r is None:
                offsets.append(0)
                comp_durations.append(None)
                continue
            offsets.append(cols.count)
            batch_f = r.batches.astype(np.float64)
            # int64/int64 division is the same correctly-rounded float64 the
            # scalar path's ``context_tokens / members.size`` produces.
            avg = r.context_tokens / r.batches
            for _, lay, tp, spans in stage_meta:
                cols.extend(KIND_DECODE, lay, tp, spans, batch_f, avg)
            comp = np.zeros(r.batches.size)
            mask = r.completed_counts > 0
            if mask.any():
                comp[mask] = self.profile.kv_compaction_time_batch(
                    r.completed_counts[mask].astype(np.float64),
                    r.completed_context[mask] / r.completed_counts[mask],
                    tail_layers,
                )
            comp_durations.append(comp)
        priced = price_columns(
            self.profile,
            cols,
            self.overhead_s,
            self.batched_pricing,
            self._cache_for(cols.count),
            self.small_plan_items,
        )
        first_dep_ids = tuple(_dep_id(d) for d in first_deps)
        stage_times_decode = self.stage_times["decode"]
        bookkeeping = self.bookkeeping
        peak = self.peak_kv_tokens if track_peak else None
        t_max = max(r.batches.size for r in runs if r is not None)
        freed = 0
        completed_all: list[np.ndarray] = []
        for i in range(t_max):
            base_deps = first_dep_ids if i == 0 else ()
            for g_index, r in enumerate(runs):
                if r is None or i >= r.batches.size:
                    continue
                prev_tail = prev_last.get(g_index)
                if prev_tail is not None:
                    head_deps = base_deps + (_dep_id(prev_tail),)
                else:
                    head_deps = base_deps
                off = offsets[g_index]
                t_g = r.batches.size
                last_tid = -1
                for s_index in range(n_stages):
                    duration = float(priced[off + s_index * t_g + i])
                    last_tid = timeline.add_task(
                        stage_meta[s_index][0],
                        duration,
                        head_deps if s_index == 0 else (last_tid,),
                        tag="decode",
                        earliest_start_s=release_s if s_index == 0 else 0.0,
                    )
                    stage_times_decode.append(duration)
                if peak is not None:
                    kv_tokens = float(r.context_tokens[i])
                    for stage in stages:
                        if kv_tokens > peak.get(stage.stage_id, 0.0):
                            peak[stage.stage_id] = kv_tokens
                tail = last_tid
                last_ref: TaskRef | None = None
                if i == 0 and r.first_ids.size:
                    last_ref = TaskRef(last_tid)
                    bookkeeping.first_tokens.append((r.first_ids, last_ref))
                comp_ids = r.completed[i]
                if comp_ids.size:
                    if last_ref is None:
                        last_ref = TaskRef(last_tid)
                    bookkeeping.completions.append((comp_ids, last_ref))
                    freed += int(comp_ids.size)
                    completed_all.append(comp_ids)
                    compaction = float(comp_durations[g_index][i])
                    if compaction > 0:
                        tail = timeline.add_task(
                            stage_meta[-1][0],
                            compaction,
                            (last_tid,),
                            tag="compaction",
                        )
                prev_last[g_index] = tail
        return DecodeOutcome(
            any_alive=True,
            freed=freed,
            completed=(
                np.concatenate(completed_all) if completed_all else EMPTY_IDS
            ),
        )

    # -- continuous batching ----------------------------------------------------------

    def mixed_iteration(
        self,
        plan: IterationPlan,
        stages: tuple[StagePlan, ...],
        alive: np.ndarray,
        admitted: np.ndarray,
        prev_last: object | None = None,
        release_s: float = 0.0,
    ) -> MixedOutcome:
        """One ORCA-style iteration: pool decodes + admitted prefills.

        ``alive`` and ``admitted`` are id batches; every member of
        ``alive`` must still owe tokens (callers keep their alive sets
        compacted).  Every stage task's duration sums the decode step of
        the running batch and one single-request prefill per admitted
        request (each component carrying the engine overhead), which is
        exactly what makes prefill-carrying iterations long -- the
        latency-variability effect the paper highlights.  Admission
        bookkeeping binds to the first stage task, first-token/completion
        bookkeeping to the last.
        """
        key = _identity_key
        pool = self.pool
        avg_ctx = (
            pool.average_context(alive, self.decoder_only) if alive.size else 0.0
        )
        prefill_lens = (
            pool.input_lens(admitted).tolist() if admitted.size else ()
        )
        cols = plan.columns
        prev: TaskRef | None = None
        first: TaskRef | None = None
        for stage in stages:
            spans = self._stage_spans_nodes(stage)
            start = cols.count
            if alive.size:
                cols.push(
                    KIND_DECODE, stage.decoder_layers, stage.tp_degree,
                    spans, alive.size, avg_ctx,
                )
            for input_len in prefill_lens:
                cols.push(
                    KIND_ENCODE, stage.encoder_layers, stage.tp_degree,
                    spans, 1.0, input_len,
                )
            deps: list[object] = []
            if prev is not None:
                deps.append(prev)
            elif prev_last is not None:
                deps.append(prev_last)
            ref = plan.add_span_task(
                key(stage),
                start,
                deps=deps,
                tag="iteration",
                bucket="decode" if alive.size else "encode",
                release_s=release_s if prev is None else 0.0,
            )
            if first is None:
                first = ref
            prev = ref
        if admitted.size:
            self.bookkeeping.encode_starts.append((admitted, first))
        first_ids, completed = pool.advance(alive)
        if first_ids.size:
            self.bookkeeping.first_tokens.append((first_ids, prev))
        if completed.size:
            self.bookkeeping.completions.append((completed, prev))
        return MixedOutcome(first=first, last=prev, completed=completed)

    def mixed_decode_template(
        self,
        stages: tuple[StagePlan, ...],
        alive: np.ndarray,
        prev_last: object | None = None,
        release_s: float = 0.0,
    ) -> MixedOutcome:
        """Plan-free :meth:`mixed_iteration` for decode-only cycles.

        When a continuous-batching cycle admits nothing, the plan structure
        is fixed -- one decode component per stage -- so the servers skip
        plan construction entirely: durations are rebuilt from the pricing
        cache (missing keys fall back to the usual lookups) and the tasks
        are re-stamped straight onto the timeline.  Task graph, pricing,
        bookkeeping and the returned refs are bit-identical to
        ``mixed_iteration(plan, stages, alive, admitted=EMPTY_IDS, ...)``
        followed by ``commit`` (pinned by the template-parity serving
        tests).  ``alive`` must be non-empty; ``prev_last`` must be
        committed.
        """
        pool = self.pool
        timeline = self.timeline
        avg_ctx = pool.average_context(alive, self.decoder_only)
        cols = self._scratch_columns
        cols.reset()
        for stage in stages:
            cols.push(
                KIND_DECODE,
                stage.decoder_layers,
                stage.tp_degree,
                self._stage_spans_nodes(stage),
                alive.size,
                avg_ctx,
            )
        priced = price_columns(
            self.profile,
            cols,
            self.overhead_s,
            self.batched_pricing,
            self._cache_for(cols.count),
            self.small_plan_items,
        )
        stage_times_decode = self.stage_times["decode"]
        first_tid = -1
        prev_tid = -1
        for s_index, stage in enumerate(stages):
            if s_index == 0:
                deps = (_dep_id(prev_last),) if prev_last is not None else ()
            else:
                deps = (prev_tid,)
            duration = float(priced[s_index])
            prev_tid = timeline.add_task(
                stage.stage_id,
                duration,
                deps,
                tag="iteration",
                earliest_start_s=release_s if s_index == 0 else 0.0,
            )
            stage_times_decode.append(duration)
            if s_index == 0:
                first_tid = prev_tid
        first_ids, completed = pool.advance(alive)
        last_ref = TaskRef(prev_tid)
        if first_ids.size:
            self.bookkeeping.first_tokens.append((first_ids, last_ref))
        if completed.size:
            self.bookkeeping.completions.append((completed, last_ref))
        return MixedOutcome(
            first=TaskRef(first_tid), last=last_ref, completed=completed
        )

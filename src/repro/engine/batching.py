"""Micro-batch partitioning helpers shared by the runner and baselines.

The drivers hold request-pool *id arrays* and partition them with
:func:`split_ids`; the :class:`RequestState`-list variants below implement
the same contiguous partition for per-object request lists (the reference
pool backend and a few external callers).
"""

from __future__ import annotations

import numpy as np

from repro.engine.request import RequestState


def split_ids(ids: np.ndarray, num_micro_batches: int) -> list[np.ndarray]:
    """Partition an id array into contiguous, near-even groups.

    Mirrors :func:`split_into_micro_batches` exactly -- same sizes, same
    order, empty groups dropped -- but returns zero-copy views into
    ``ids``.
    """
    if num_micro_batches < 1:
        raise ValueError("num_micro_batches must be >= 1")
    if ids.size == 0:
        return []
    base, rem = divmod(ids.size, num_micro_batches)
    groups: list[np.ndarray] = []
    index = 0
    for i in range(num_micro_batches):
        size = base + (1 if i < rem else 0)
        if size == 0:
            continue
        groups.append(ids[index : index + size])
        index += size
    return groups


def split_into_micro_batches(
    requests: list[RequestState], num_micro_batches: int
) -> list[list[RequestState]]:
    """Partition requests into ``num_micro_batches`` contiguous groups.

    Groups are as even as possible; empty groups are dropped, so the result
    may contain fewer lists than requested when there are few requests.
    """
    if num_micro_batches < 1:
        raise ValueError("num_micro_batches must be >= 1")
    if not requests:
        return []
    base, rem = divmod(len(requests), num_micro_batches)
    groups: list[list[RequestState]] = []
    index = 0
    for i in range(num_micro_batches):
        size = base + (1 if i < rem else 0)
        if size == 0:
            continue
        groups.append(requests[index : index + size])
        index += size
    return groups


def alive_requests(requests: list[RequestState]) -> list[RequestState]:
    """Requests that still have tokens to generate."""
    return [r for r in requests if not r.done]


def average_context(requests: list[RequestState], decoder_only: bool) -> float:
    """Mean attention-context length of the next decode step for ``requests``."""
    if not requests:
        return 0.0
    return sum(r.context_length(decoder_only) for r in requests) / len(requests)


def average_input_length(requests: list[RequestState]) -> float:
    """Mean input length of ``requests`` (0 for an empty list)."""
    if not requests:
        return 0.0
    return sum(r.input_len for r in requests) / len(requests)


def total_input_tokens(requests: list[RequestState]) -> int:
    """Sum of input lengths (the encoder workload of a batch)."""
    return sum(r.input_len for r in requests)

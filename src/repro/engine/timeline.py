"""Deterministic pipelined-execution timeline.

The runner and every baseline express their schedule as a partially ordered
set of *stage tasks*: "stage ``j`` spends ``d`` seconds processing micro-batch
``m`` of iteration ``u``".  The :class:`Timeline` executor assigns start and
finish times respecting two constraints:

* a stage executes one task at a time, in the order the driver enqueued them
  (FIFO per stage, which is how a real pipelined runner issues work),
* a task cannot start before all its dependencies have finished (pipeline
  hand-offs, autoregressive token feedback, KV-cache transfers), and
* a task cannot start before its *release time* (``earliest_start_s``),
  which online drivers use to model request arrivals: work on a request
  admitted at wall-clock ``t`` cannot begin before ``t``.

Because every driver enqueues tasks in its own execution order, dependencies
always point backwards and the timeline can be computed in a single linear
pass, which keeps even large traces fast while still exposing pipeline
bubbles, phase-boundary drains and communication stalls.  The pass can also
run *incrementally* (:meth:`Timeline.schedule_pending`): an online driver
alternates between appending an iteration's tasks and reading their assigned
times to decide what the next iteration admits.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageTask:
    """One unit of work executed by one pipeline stage.

    Attributes:
        task_id: Index assigned by the timeline when the task is added.
        stage: Identifier of the executing stage (any hashable, typically the
            stage index or a ``("encode", i)`` tuple).
        duration_s: Execution time in seconds.
        deps: Task ids that must finish before this task starts.
        tag: Free-form label used by metrics (e.g. ``"decode"``).
        earliest_start_s: Release time; the task cannot start earlier even if
            its stage and dependencies are ready (models request arrival).
        start_s / finish_s: Filled in by the timeline.
    """

    task_id: int
    stage: object
    duration_s: float
    deps: tuple[int, ...] = ()
    tag: str = ""
    earliest_start_s: float = 0.0
    start_s: float = field(default=-1.0)
    finish_s: float = field(default=-1.0)

    @property
    def scheduled(self) -> bool:
        """Whether the timeline has assigned times to this task."""
        return self.start_s >= 0.0


class Timeline:
    """Collects stage tasks and computes their start/finish times.

    Args:
        time_scale: Multiplier applied to every task duration as it is
            added.  The fleet layer uses this to model *straggler* replicas:
            a slowdown factor of 2.0 makes every iteration on that replica's
            timeline take twice as long, which the routing policies then
            observe through queue depth / outstanding work.  The default of
            1.0 leaves durations bit-identical (no multiply is performed).
    """

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._time_scale = time_scale
        self._tasks: list[StageTask] = []
        self._stage_free_at: dict[object, float] = {}
        self._stage_busy: dict[object, float] = {}
        self._next_unscheduled = 0
        self._finalized = False

    # -- construction ---------------------------------------------------------

    def add_task(
        self,
        stage: object,
        duration_s: float,
        deps: tuple[int, ...] | list[int] = (),
        tag: str = "",
        earliest_start_s: float = 0.0,
    ) -> int:
        """Append a task and return its id.

        Raises:
            ValueError: for negative durations, negative release times or
                forward dependencies.
        """
        if self._finalized:
            raise RuntimeError("cannot add tasks after the timeline was run")
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if earliest_start_s < 0:
            raise ValueError("earliest_start_s must be non-negative")
        if self._time_scale != 1.0:
            duration_s = duration_s * self._time_scale
        task_id = len(self._tasks)
        dep_tuple = tuple(int(d) for d in deps)
        for dep in dep_tuple:
            if dep < 0 or dep >= task_id:
                raise ValueError(
                    f"dependency {dep} of task {task_id} must reference an "
                    "earlier task"
                )
        self._tasks.append(
            StageTask(task_id=task_id, stage=stage, duration_s=duration_s,
                      deps=dep_tuple, tag=tag, earliest_start_s=earliest_start_s)
        )
        return task_id

    # -- execution --------------------------------------------------------------

    def schedule_pending(self) -> None:
        """Assign start/finish times to tasks added since the last pass.

        Unlike :meth:`run` this does not finalize the timeline: more tasks may
        be added afterwards.  Online drivers interleave task construction with
        time queries this way.
        """
        for task in self._tasks[self._next_unscheduled:]:
            ready = task.earliest_start_s
            for dep in task.deps:
                ready = max(ready, self._tasks[dep].finish_s)
            stage_free = self._stage_free_at.get(task.stage, 0.0)
            task.start_s = max(ready, stage_free)
            task.finish_s = task.start_s + task.duration_s
            self._stage_free_at[task.stage] = task.finish_s
            self._stage_busy[task.stage] = (
                self._stage_busy.get(task.stage, 0.0) + task.duration_s
            )
        self._next_unscheduled = len(self._tasks)

    def run(self) -> None:
        """Assign start/finish times to every task and finalize (idempotent)."""
        if self._finalized:
            return
        self.schedule_pending()
        self._finalized = True

    # -- queries ------------------------------------------------------------------

    def finish_time(self, task_id: int) -> float:
        """Finish time of a task (schedules pending tasks if needed)."""
        self.schedule_pending()
        return self._tasks[task_id].finish_s

    def start_time(self, task_id: int) -> float:
        """Start time of a task (schedules pending tasks if needed)."""
        self.schedule_pending()
        return self._tasks[task_id].start_s

    def stage_free_at(self, stage: object, default: float = 0.0) -> float:
        """Time at which a stage finishes its last scheduled task.

        Online drivers use this as the stage's wall clock when deciding what
        the next iteration can admit.
        """
        self.schedule_pending()
        return self._stage_free_at.get(stage, default)

    @property
    def tasks(self) -> tuple[StageTask, ...]:
        """All tasks, in insertion order."""
        return tuple(self._tasks)

    @property
    def num_tasks(self) -> int:
        """Number of tasks added so far."""
        return len(self._tasks)

    @property
    def makespan_s(self) -> float:
        """Finish time of the last-completing task (0 for an empty timeline)."""
        self.schedule_pending()
        if not self._tasks:
            return 0.0
        return max(task.finish_s for task in self._tasks)

    def stage_utilization(self) -> dict[object, float]:
        """Busy-time fraction of each stage over the makespan."""
        self.schedule_pending()
        makespan = self.makespan_s
        if makespan <= 0:
            return {stage: 0.0 for stage in self._stage_busy}
        return {
            stage: busy / makespan for stage, busy in sorted(
                self._stage_busy.items(), key=lambda kv: str(kv[0])
            )
        }

    def stage_busy_time(self) -> dict[object, float]:
        """Total busy seconds per stage."""
        self.schedule_pending()
        return dict(self._stage_busy)

"""Deterministic pipelined-execution timeline.

The runner and every baseline express their schedule as a partially ordered
set of *stage tasks*: "stage ``j`` spends ``d`` seconds processing micro-batch
``m`` of iteration ``u``".  The :class:`Timeline` executor assigns start and
finish times respecting two constraints:

* a stage executes one task at a time, in the order the driver enqueued them
  (FIFO per stage, which is how a real pipelined runner issues work), and
* a task cannot start before all its dependencies have finished (pipeline
  hand-offs, autoregressive token feedback, KV-cache transfers).

Because every driver enqueues tasks in its own execution order, dependencies
always point backwards and the timeline can be computed in a single linear
pass, which keeps even large traces fast while still exposing pipeline
bubbles, phase-boundary drains and communication stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageTask:
    """One unit of work executed by one pipeline stage.

    Attributes:
        task_id: Index assigned by the timeline when the task is added.
        stage: Identifier of the executing stage (any hashable, typically the
            stage index or a ``("encode", i)`` tuple).
        duration_s: Execution time in seconds.
        deps: Task ids that must finish before this task starts.
        tag: Free-form label used by metrics (e.g. ``"decode"``).
        start_s / finish_s: Filled in by the timeline.
    """

    task_id: int
    stage: object
    duration_s: float
    deps: tuple[int, ...] = ()
    tag: str = ""
    start_s: float = field(default=-1.0)
    finish_s: float = field(default=-1.0)

    @property
    def scheduled(self) -> bool:
        """Whether the timeline has assigned times to this task."""
        return self.start_s >= 0.0


class Timeline:
    """Collects stage tasks and computes their start/finish times."""

    def __init__(self) -> None:
        self._tasks: list[StageTask] = []
        self._stage_free_at: dict[object, float] = {}
        self._stage_busy: dict[object, float] = {}
        self._finalized = False

    # -- construction ---------------------------------------------------------

    def add_task(
        self,
        stage: object,
        duration_s: float,
        deps: tuple[int, ...] | list[int] = (),
        tag: str = "",
    ) -> int:
        """Append a task and return its id.

        Raises:
            ValueError: for negative durations or forward dependencies.
        """
        if self._finalized:
            raise RuntimeError("cannot add tasks after the timeline was run")
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        task_id = len(self._tasks)
        dep_tuple = tuple(int(d) for d in deps)
        for dep in dep_tuple:
            if dep < 0 or dep >= task_id:
                raise ValueError(
                    f"dependency {dep} of task {task_id} must reference an "
                    "earlier task"
                )
        self._tasks.append(
            StageTask(task_id=task_id, stage=stage, duration_s=duration_s,
                      deps=dep_tuple, tag=tag)
        )
        return task_id

    # -- execution --------------------------------------------------------------

    def run(self) -> None:
        """Assign start/finish times to every task (idempotent)."""
        if self._finalized:
            return
        for task in self._tasks:
            ready = 0.0
            for dep in task.deps:
                ready = max(ready, self._tasks[dep].finish_s)
            stage_free = self._stage_free_at.get(task.stage, 0.0)
            task.start_s = max(ready, stage_free)
            task.finish_s = task.start_s + task.duration_s
            self._stage_free_at[task.stage] = task.finish_s
            self._stage_busy[task.stage] = (
                self._stage_busy.get(task.stage, 0.0) + task.duration_s
            )
        self._finalized = True

    # -- queries ------------------------------------------------------------------

    def finish_time(self, task_id: int) -> float:
        """Finish time of a task (runs the timeline if needed)."""
        self.run()
        return self._tasks[task_id].finish_s

    def start_time(self, task_id: int) -> float:
        """Start time of a task (runs the timeline if needed)."""
        self.run()
        return self._tasks[task_id].start_s

    @property
    def tasks(self) -> tuple[StageTask, ...]:
        """All tasks, in insertion order."""
        return tuple(self._tasks)

    @property
    def num_tasks(self) -> int:
        """Number of tasks added so far."""
        return len(self._tasks)

    @property
    def makespan_s(self) -> float:
        """Finish time of the last-completing task (0 for an empty timeline)."""
        self.run()
        if not self._tasks:
            return 0.0
        return max(task.finish_s for task in self._tasks)

    def stage_utilization(self) -> dict[object, float]:
        """Busy-time fraction of each stage over the makespan."""
        self.run()
        makespan = self.makespan_s
        if makespan <= 0:
            return {stage: 0.0 for stage in self._stage_busy}
        return {
            stage: busy / makespan for stage, busy in sorted(
                self._stage_busy.items(), key=lambda kv: str(kv[0])
            )
        }

    def stage_busy_time(self) -> dict[object, float]:
        """Total busy seconds per stage."""
        self.run()
        return dict(self._stage_busy)

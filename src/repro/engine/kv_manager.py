"""Key/value cache managers.

Two flavours are provided:

* :class:`ContiguousKVCache` -- the FasterTransformer-style allocator that
  reserves a contiguous slot of ``max_len`` tokens per sequence up front.
  ExeGPT's runner extends it with early termination plus *compaction*: when
  a query finishes, its slot is released and remaining entries are packed.
* :class:`PagedKVCache` -- a vLLM-style block allocator that grows a
  sequence's cache on demand in fixed-size blocks, eliminating reservation
  waste.  The vLLM/ORCA baselines use it.

Both track peak usage so Figure 9's memory comparison and the engine's
feasibility checks can be reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.models.spec import ModelSpec


class KVCacheError(RuntimeError):
    """Raised when a cache allocation cannot be satisfied."""


@dataclass
class ContiguousKVCache:
    """Reservation-based KV cache (FasterTransformer style).

    Attributes:
        model: Model whose per-token KV size is used.
        num_layers: Decoder layers hosted by the GPU(s) this cache models.
        capacity_bytes: Total bytes available for KV storage.
    """

    model: ModelSpec
    num_layers: int
    capacity_bytes: float
    _reservations: dict[int, float] = field(default_factory=dict, init=False)
    _peak_bytes: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.num_layers < 0:
            raise ValueError("num_layers must be non-negative")
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")

    def bytes_for_tokens(self, tokens: int) -> float:
        """KV bytes needed to store ``tokens`` tokens across hosted layers."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return tokens * self.num_layers * self.model.kv_bytes_per_token_per_layer()

    @property
    def used_bytes(self) -> float:
        """Currently reserved bytes."""
        return sum(self._reservations.values())

    @property
    def peak_bytes(self) -> float:
        """High-water mark of reserved bytes."""
        return self._peak_bytes

    @property
    def free_bytes(self) -> float:
        """Remaining capacity."""
        return self.capacity_bytes - self.used_bytes

    def reserve(self, request_id: int, max_tokens: int) -> None:
        """Reserve a contiguous slot able to hold ``max_tokens`` tokens.

        Raises:
            KVCacheError: if the reservation does not fit or already exists.
        """
        if request_id in self._reservations:
            raise KVCacheError(f"request {request_id} already has a reservation")
        needed = self.bytes_for_tokens(max_tokens)
        if needed > self.free_bytes + 1e-9:
            raise KVCacheError(
                f"KV reservation of {needed:.3e} B for request {request_id} exceeds "
                f"free {self.free_bytes:.3e} B"
            )
        self._reservations[request_id] = needed
        self._peak_bytes = max(self._peak_bytes, self.used_bytes)

    def release(self, request_id: int) -> float:
        """Release a request's slot (early termination); returns freed bytes."""
        if request_id not in self._reservations:
            raise KVCacheError(f"request {request_id} has no reservation")
        return self._reservations.pop(request_id)

    def release_many(self, request_ids) -> float:
        """Release a batch of slots in order; returns total freed bytes.

        Equivalent to one :meth:`release` per id -- the batched epilogue of
        the iteration-level drivers, which free every request completing in
        an iteration at once.
        """
        pop = self._reservations.pop
        freed = 0.0
        for request_id in request_ids:
            slot = pop(request_id, None)
            if slot is None:
                raise KVCacheError(f"request {request_id} has no reservation")
            freed += slot
        return freed

    def compaction_bytes(self) -> float:
        """Bytes that must be copied to compact the cache after releases.

        Modelled as the currently live bytes (they are packed towards the
        start of the buffer), which the runner converts to a copy time.
        """
        return self.used_bytes


@dataclass
class PagedKVCache:
    """Block-based KV cache (vLLM's PagedAttention allocator).

    Attributes:
        model: Model whose per-token KV size is used.
        num_layers: Decoder layers hosted.
        capacity_bytes: Total bytes available.
        block_tokens: Tokens per block (vLLM's default is 16).
    """

    model: ModelSpec
    num_layers: int
    capacity_bytes: float
    block_tokens: int = 16
    _blocks_per_request: dict[int, int] = field(default_factory=dict, init=False)
    _peak_blocks: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if self.num_layers < 0:
            raise ValueError("num_layers must be non-negative")

    @property
    def block_bytes(self) -> float:
        """Bytes of one block across hosted layers."""
        return (
            self.block_tokens
            * self.num_layers
            * self.model.kv_bytes_per_token_per_layer()
        )

    @property
    def total_blocks(self) -> int:
        """Number of blocks the capacity provides."""
        if self.block_bytes <= 0:
            return 0
        return int(self.capacity_bytes // self.block_bytes)

    @property
    def used_blocks(self) -> int:
        """Blocks currently allocated."""
        return sum(self._blocks_per_request.values())

    @property
    def free_blocks(self) -> int:
        """Blocks still available."""
        return self.total_blocks - self.used_blocks

    @property
    def used_bytes(self) -> float:
        """Bytes currently allocated (whole blocks)."""
        return self.used_blocks * self.block_bytes

    @property
    def peak_bytes(self) -> float:
        """High-water mark in bytes."""
        return self._peak_blocks * self.block_bytes

    def blocks_needed(self, tokens: int) -> int:
        """Blocks required to hold ``tokens`` tokens."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return math.ceil(tokens / self.block_tokens) if tokens else 0

    def ensure(self, request_id: int, tokens: int) -> None:
        """Grow a request's allocation to cover ``tokens`` tokens.

        Raises:
            KVCacheError: if the pool has no free blocks for the growth.
        """
        needed = self.blocks_needed(tokens)
        current = self._blocks_per_request.get(request_id, 0)
        if needed <= current:
            return
        growth = needed - current
        if growth > self.free_blocks:
            raise KVCacheError(
                f"paged KV cache exhausted: need {growth} blocks, "
                f"{self.free_blocks} free"
            )
        self._blocks_per_request[request_id] = needed
        self._peak_blocks = max(self._peak_blocks, self.used_blocks)

    def release(self, request_id: int) -> int:
        """Free all blocks of a completed request; returns freed block count."""
        if request_id not in self._blocks_per_request:
            raise KVCacheError(f"request {request_id} has no allocation")
        return self._blocks_per_request.pop(request_id)

    def release_many(self, request_ids) -> int:
        """Free the blocks of a batch of completed requests at once."""
        pop = self._blocks_per_request.pop
        freed = 0
        for request_id in request_ids:
            blocks = pop(request_id, None)
            if blocks is None:
                raise KVCacheError(f"request {request_id} has no allocation")
            freed += blocks
        return freed

    def can_admit(self, tokens: int) -> bool:
        """Whether a new request needing ``tokens`` tokens can be admitted."""
        return self.blocks_needed(tokens) <= self.free_blocks

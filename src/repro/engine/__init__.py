"""Discrete-event execution engine shared by XRunner and the baselines."""

from repro.engine.batching import (
    alive_requests,
    average_context,
    average_input_length,
    split_ids,
    split_into_micro_batches,
    total_input_tokens,
)
from repro.engine.execution import (
    SMALL_PLAN_ITEMS,
    Bookkeeping,
    DecodeOutcome,
    ExecutionEngine,
    IterationPlan,
    KVHandover,
    MixedOutcome,
    PlanColumns,
    PricingCache,
    StageWork,
    TaskRef,
    decode_chain_times,
    encode_chain_times,
    price_columns,
    price_work,
)
from repro.engine.kv_manager import (
    ContiguousKVCache,
    KVCacheError,
    PagedKVCache,
)
from repro.engine.metrics import RunResult, collect_pool_result, collect_result
from repro.engine.pool import (
    EMPTY_IDS,
    DecodeRunSteps,
    ListPool,
    RequestPool,
    RequestView,
    make_pool,
)
from repro.engine.request import RequestState
from repro.engine.timeline import StageTask, Timeline

__all__ = [
    "Bookkeeping",
    "ContiguousKVCache",
    "DecodeOutcome",
    "DecodeRunSteps",
    "EMPTY_IDS",
    "ExecutionEngine",
    "IterationPlan",
    "KVCacheError",
    "KVHandover",
    "ListPool",
    "MixedOutcome",
    "PagedKVCache",
    "PlanColumns",
    "PricingCache",
    "RequestPool",
    "RequestState",
    "RequestView",
    "RunResult",
    "SMALL_PLAN_ITEMS",
    "StageTask",
    "StageWork",
    "TaskRef",
    "Timeline",
    "alive_requests",
    "average_context",
    "average_input_length",
    "collect_pool_result",
    "collect_result",
    "decode_chain_times",
    "encode_chain_times",
    "make_pool",
    "price_columns",
    "price_work",
    "split_ids",
    "split_into_micro_batches",
    "total_input_tokens",
]

"""Per-request runtime state.

Bulk request lifecycle state lives in the columnar
:class:`~repro.engine.pool.RequestPool`; drivers hold pool ids, not
``RequestState`` lists.  This class remains as the *per-object* model: the
:class:`~repro.engine.pool.ListPool` reference backend is a list of these,
and :meth:`RequestPool.view` returns an attribute-compatible per-request
window over the pool's columns for external callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.trace import RequestSpec


@dataclass
class RequestState:
    """Mutable execution state of one request.

    Attributes:
        spec: The underlying trace request (input/output lengths).
        generated: Tokens generated so far.
        encode_start_s / encode_finish_s: When encoding started / finished.
        finish_s: When the last token was generated (completion time).
        admitted_cycle: Scheduling cycle or iteration at which the request
            was admitted (for diagnostics).
    """

    spec: RequestSpec
    generated: int = 0
    encode_start_s: float = -1.0
    encode_finish_s: float = -1.0
    finish_s: float = -1.0
    admitted_cycle: int = -1

    @property
    def request_id(self) -> int:
        """Trace id of the request."""
        return self.spec.request_id

    @property
    def input_len(self) -> int:
        """Prompt length."""
        return self.spec.input_len

    @property
    def output_len(self) -> int:
        """Forced generation length."""
        return self.spec.output_len

    @property
    def remaining(self) -> int:
        """Tokens still to generate."""
        return max(self.spec.output_len - self.generated, 0)

    @property
    def done(self) -> bool:
        """Whether the request has generated all its tokens."""
        return self.generated >= self.spec.output_len

    @property
    def started(self) -> bool:
        """Whether encoding has started."""
        return self.encode_start_s >= 0.0

    @property
    def latency_s(self) -> float:
        """End-to-end latency (encode start to last token), -1 if unfinished."""
        if self.finish_s < 0 or self.encode_start_s < 0:
            return -1.0
        return self.finish_s - self.encode_start_s

    def advance(self, tokens: int = 1) -> None:
        """Record ``tokens`` newly generated tokens.

        Raises:
            ValueError: if advancing past the forced output length.
        """
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        if self.generated + tokens > self.spec.output_len:
            raise ValueError(
                f"request {self.request_id} would exceed its output length"
            )
        self.generated += tokens

    def context_length(self, decoder_only: bool) -> int:
        """Current attention context length for the next decode step."""
        if decoder_only:
            return self.spec.input_len + self.generated
        return max(self.generated, 1)

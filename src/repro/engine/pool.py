"""Columnar array-backed request pool.

Request lifecycle state used to live in per-request
:class:`~repro.engine.request.RequestState` dataclasses that every driver
held in Python lists: each scheduling cycle re-scanned those lists for
``done`` flags, summed context lengths request by request, and stamped
timestamps attribute by attribute.  After PR 2/3 vectorized pricing and
iteration construction, exactly those per-object scans dominated replay
profiles.

:class:`RequestPool` is the structure-of-arrays replacement: one numpy
column per lifecycle field (``input_len``, ``output_len``, ``generated``,
``encode_start_s``, ``encode_finish_s``, ``finish_s``, ``admitted_cycle``,
``arrival_s``) plus a ``done`` mask, all indexed by a *stable* request id
(the row index, assigned at admission and never reused or moved).  Every
hot operation is one vectorized pass:

* **batch admission** -- :meth:`from_trace` loads a whole trace at once;
* **advance** -- ``generated[ids] += tokens`` with first-token/completion
  detection as mask reductions;
* **compaction** -- :meth:`compact` filters an id array through the done
  mask (no per-request ``done`` scans, ids keep their identity);
* **grouped sums** -- :meth:`average_context` / :meth:`average_input` /
  :meth:`context_token_sum` reduce whole micro-batches in one call;
* **counts** -- :attr:`alive_count` / :attr:`done_count` are O(1),
  maintained incrementally by :meth:`advance`.

:class:`ListPool` implements the same interface over a plain list of
:class:`RequestState` objects with the historical per-object scans.  It is
the *reference model*: the hypothesis parity suite
(``tests/engine/test_pool.py``) drives both backends through random
schedules and asserts identical behaviour, and the perf harness replays
the same trace on both to record the list-vs-columnar speedup
(``BENCH_search.json`` series ``replay_pool``).

External callers that want one request's state use :meth:`RequestPool.view`,
which returns a :class:`RequestView` -- a thin per-request window with the
same attributes and properties :class:`RequestState` exposes, reading and
writing the pool's columns.

**Multi-owner discipline.**  Because ids are stable and every lifecycle
operation touches only the ids it is given, one pool can safely back many
*owners* at once -- e.g. a routing fleet (:mod:`repro.serving.fleet`) hands
each replica a disjoint replica-local id slice of one shared pool.  Owners
holding disjoint id arrays cannot observe each other's advances or
compactions (no shared alive list exists to scan), a completed id dropped
by one owner can never resurrect under another (the done mask is global and
monotone), and fleet-wide aggregates (queue depth, throughput, outstanding
work, SLO attainment) reduce over the shared columns -- O(1) counters or
one gather per id slice -- with no per-replica bookkeeping.  The hypothesis
suite pins this: interleaved schedules over disjoint slices of one shared
pool match N independent pools exactly.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.engine.request import RequestState
from repro.workloads.trace import RequestSpec, WorkloadTrace

#: Shared empty id array; drivers use it as the initial alive set.
EMPTY_IDS = np.empty(0, dtype=np.int64)


class DecodeStep(NamedTuple):
    """Result of one micro-batch's fused decode step (see ``decode_step``).

    Attributes:
        batch: Members the step computes over (prices the stage tasks).
        avg_context: Mean attention-context length of those members,
            *before* the advance.
        context_tokens: Total context tokens (peak-KV accounting).
        first_ids: Members that produced their first token this step.
        completed_ids: Members that finished this step (order preserved).
    """

    batch: int
    avg_context: float
    context_tokens: int
    first_ids: np.ndarray
    completed_ids: np.ndarray


class DecodeRunSteps(NamedTuple):
    """Per-iteration summary of a bulk decode run (see ``decode_run``).

    Arrays are indexed by executed iteration ``i`` (0-based); the run
    executes ``len(batches)`` iterations -- the requested count, or fewer
    when the group drains first.  Values are exactly what ``iterations``
    successive early-terminating ``decode_step`` calls would have produced.

    Attributes:
        batches: Members computed over at iteration ``i``.
        context_tokens: Their total attention-context tokens (pre-advance).
        first_ids: Members producing their first token (iteration 0 only,
            member order preserved).
        completed: Per-iteration completed ids (member order preserved).
        completed_counts: ``completed[i].size`` as one array.
        completed_context: Total post-advance context tokens of the
            iteration's completers (the compaction workload).
    """

    batches: np.ndarray
    context_tokens: np.ndarray
    first_ids: np.ndarray
    completed: tuple[np.ndarray, ...]
    completed_counts: np.ndarray
    completed_context: np.ndarray


class RequestView:
    """Thin per-request view over one :class:`RequestPool` row.

    Exposes the same attributes and derived properties as
    :class:`~repro.engine.request.RequestState`; reads and writes go
    straight to the pool's columns, so a view is always current and
    mutating it mutates the pool.
    """

    __slots__ = ("_pool", "_rid")

    def __init__(self, pool: "RequestPool", rid: int) -> None:
        self._pool = pool
        self._rid = int(rid)

    # -- static fields -----------------------------------------------------------

    @property
    def rid(self) -> int:
        """Stable pool id of the request (row index)."""
        return self._rid

    @property
    def request_id(self) -> int:
        """Trace id of the request."""
        return int(self._pool.request_id[self._rid])

    @property
    def input_len(self) -> int:
        """Prompt length."""
        return int(self._pool.input_len[self._rid])

    @property
    def output_len(self) -> int:
        """Forced generation length."""
        return int(self._pool.output_len[self._rid])

    @property
    def arrival_s(self) -> float:
        """Arrival time of the request."""
        return float(self._pool.arrival_s[self._rid])

    # -- mutable lifecycle fields ----------------------------------------------------

    @property
    def generated(self) -> int:
        """Tokens generated so far."""
        return int(self._pool.generated[self._rid])

    @property
    def encode_start_s(self) -> float:
        """When encoding started (-1 if not yet)."""
        return float(self._pool.encode_start_s[self._rid])

    @encode_start_s.setter
    def encode_start_s(self, value: float) -> None:
        self._pool.encode_start_s[self._rid] = value

    @property
    def encode_finish_s(self) -> float:
        """When encoding finished (-1 if not yet)."""
        return float(self._pool.encode_finish_s[self._rid])

    @encode_finish_s.setter
    def encode_finish_s(self, value: float) -> None:
        self._pool.encode_finish_s[self._rid] = value

    @property
    def finish_s(self) -> float:
        """When the last token was generated (-1 if unfinished)."""
        return float(self._pool.finish_s[self._rid])

    @finish_s.setter
    def finish_s(self, value: float) -> None:
        self._pool.finish_s[self._rid] = value

    @property
    def admitted_cycle(self) -> int:
        """Cycle/iteration at which the request was admitted (-1 if never)."""
        return int(self._pool.admitted_cycle[self._rid])

    @admitted_cycle.setter
    def admitted_cycle(self, value: int) -> None:
        self._pool.admitted_cycle[self._rid] = value

    # -- derived properties (same semantics as RequestState) ---------------------------

    @property
    def remaining(self) -> int:
        """Tokens still to generate."""
        return max(self.output_len - self.generated, 0)

    @property
    def done(self) -> bool:
        """Whether the request has generated all its tokens."""
        return bool(self._pool.done[self._rid])

    @property
    def started(self) -> bool:
        """Whether encoding has started."""
        return self.encode_start_s >= 0.0

    @property
    def latency_s(self) -> float:
        """End-to-end latency (encode start to last token), -1 if unfinished."""
        if self.finish_s < 0 or self.encode_start_s < 0:
            return -1.0
        return self.finish_s - self.encode_start_s

    def advance(self, tokens: int = 1) -> None:
        """Record ``tokens`` newly generated tokens for this request."""
        self._pool.advance(np.array([self._rid], dtype=np.int64), tokens)

    def context_length(self, decoder_only: bool) -> int:
        """Current attention context length for the next decode step."""
        if decoder_only:
            return self.input_len + self.generated
        return max(self.generated, 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestView(rid={self._rid}, request_id={self.request_id}, "
            f"generated={self.generated}/{self.output_len})"
        )


class RequestPool:
    """Columnar store of request lifecycle state.

    Rows are append-only: a request's id (row index) is assigned at
    admission and stays valid forever -- compaction filters *id arrays*,
    never moves rows -- so ids can be handed across cycles, KV handover
    queues and bookkeeping without invalidation.

    Columns (all numpy arrays of length :attr:`size`):

    ``request_id``, ``input_len``, ``output_len``, ``arrival_s``
        Static per-request properties loaded at admission.
    ``generated``
        Tokens generated so far (int64).
    ``encode_start_s``, ``encode_finish_s``, ``finish_s``
        Timestamps (-1 until stamped by the engine's bookkeeping).
    ``admitted_cycle``
        Scheduling cycle of admission (-1 until admitted).
    ``done``
        Boolean mask, ``generated >= output_len``; maintained by
        :meth:`advance` so compaction and counts never recompute it.
    """

    def __init__(self) -> None:
        self.request_id = EMPTY_IDS
        self.input_len = EMPTY_IDS
        self.output_len = EMPTY_IDS
        self.arrival_s = np.empty(0, dtype=float)
        self.generated = EMPTY_IDS
        self.encode_start_s = np.empty(0, dtype=float)
        self.encode_finish_s = np.empty(0, dtype=float)
        self.finish_s = np.empty(0, dtype=float)
        self.admitted_cycle = EMPTY_IDS
        self.done = np.empty(0, dtype=bool)
        self._done_count = 0

    # -- construction / admission -------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: WorkloadTrace) -> "RequestPool":
        """Load a whole trace in one batch admission (ids in trace order)."""
        pool = cls()
        pool.admit_specs(trace.requests)
        return pool

    @classmethod
    def from_arrays(
        cls,
        input_len: np.ndarray,
        output_len: np.ndarray,
        arrival_s: np.ndarray | None = None,
        request_id: np.ndarray | None = None,
    ) -> "RequestPool":
        """Batch admission straight from length/arrival columns.

        The million-request construction path: no per-request
        :class:`RequestSpec` objects are built.  ``request_id`` defaults
        to the row index (trace order), ``arrival_s`` to all-zero
        (already queued).  Validation matches :class:`RequestSpec`:
        lengths >= 1, arrivals >= 0.
        """
        input_len = np.asarray(input_len, dtype=np.int64)
        output_len = np.asarray(output_len, dtype=np.int64)
        n = input_len.shape[0]
        if output_len.shape[0] != n:
            raise ValueError("input_len and output_len must have equal length")
        if n and (input_len.min() < 1 or output_len.min() < 1):
            raise ValueError("input_len and output_len must be >= 1")
        if arrival_s is None:
            arrival_s = np.zeros(n, dtype=float)
        else:
            arrival_s = np.asarray(arrival_s, dtype=float)
            if arrival_s.shape[0] != n:
                raise ValueError("arrival_s must match the length columns")
            if n and arrival_s.min() < 0:
                raise ValueError("arrival_s must be non-negative")
        if request_id is None:
            request_id = np.arange(n, dtype=np.int64)
        else:
            request_id = np.asarray(request_id, dtype=np.int64)
            if request_id.shape[0] != n:
                raise ValueError("request_id must match the length columns")
        pool = cls()
        pool.request_id = request_id.copy()
        pool.input_len = input_len.copy()
        pool.output_len = output_len.copy()
        pool.arrival_s = arrival_s.copy()
        pool.generated = np.zeros(n, dtype=np.int64)
        pool.encode_start_s = np.full(n, -1.0)
        pool.encode_finish_s = np.full(n, -1.0)
        pool.finish_s = np.full(n, -1.0)
        pool.admitted_cycle = np.full(n, -1, dtype=np.int64)
        pool.done = np.zeros(n, dtype=bool)
        return pool

    def admit_specs(self, specs) -> np.ndarray:
        """Append a batch of :class:`RequestSpec`; returns the new ids."""
        specs = list(specs)
        if not specs:
            return EMPTY_IDS
        start = self.size
        n = len(specs)
        self.request_id = np.concatenate(
            [self.request_id, np.array([s.request_id for s in specs], dtype=np.int64)]
        )
        self.input_len = np.concatenate(
            [self.input_len, np.array([s.input_len for s in specs], dtype=np.int64)]
        )
        self.output_len = np.concatenate(
            [self.output_len, np.array([s.output_len for s in specs], dtype=np.int64)]
        )
        self.arrival_s = np.concatenate(
            [self.arrival_s, np.array([s.arrival_s for s in specs], dtype=float)]
        )
        self.generated = np.concatenate(
            [self.generated, np.zeros(n, dtype=np.int64)]
        )
        self.encode_start_s = np.concatenate(
            [self.encode_start_s, np.full(n, -1.0)]
        )
        self.encode_finish_s = np.concatenate(
            [self.encode_finish_s, np.full(n, -1.0)]
        )
        self.finish_s = np.concatenate([self.finish_s, np.full(n, -1.0)])
        self.admitted_cycle = np.concatenate(
            [self.admitted_cycle, np.full(n, -1, dtype=np.int64)]
        )
        self.done = np.concatenate([self.done, np.zeros(n, dtype=bool)])
        return np.arange(start, start + n, dtype=np.int64)

    # -- sizes and counts (O(1)) ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Total requests ever admitted to the pool."""
        return int(self.request_id.shape[0])

    def __len__(self) -> int:
        return self.size

    @property
    def done_count(self) -> int:
        """Requests that finished generation (O(1))."""
        return self._done_count

    @property
    def alive_count(self) -> int:
        """Requests still owing tokens (O(1))."""
        return self.size - self._done_count

    # -- id sets ------------------------------------------------------------------------

    def ids(self) -> np.ndarray:
        """All ids, in admission (trace) order."""
        return np.arange(self.size, dtype=np.int64)

    def arrival_order(self) -> np.ndarray:
        """All ids in ``(arrival_s, request_id)`` lexicographic order.

        The serving loop's ingest order: one lexsort up front replaces any
        per-arrival queue of request objects.
        """
        return np.lexsort((self.request_id, self.arrival_s))

    def compact(self, ids: np.ndarray) -> np.ndarray:
        """Ids of ``ids`` that are still alive, order preserved.

        This is the mask-based replacement for the per-object
        ``[r for r in pool if not r.done]`` scans; ids keep their identity,
        finished ids simply drop out and can never re-enter (the done mask
        is monotone).
        """
        if ids.size == 0:
            return ids
        return ids[~self.done[ids]]

    #: Alias: filtering an id array for alive members IS the compaction.
    alive = compact

    def done_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean done flags of ``ids``."""
        return self.done[ids]

    def alive_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean not-done flags of ``ids`` (one mask gather).

        The column reduction behind batched admission bookkeeping: a
        policy holding an id array asks in one call which of them are
        still in the system instead of testing ids one by one.
        """
        return ~self.done[ids]

    # -- vectorized lifecycle operations -------------------------------------------------

    def advance(
        self, ids: np.ndarray, tokens: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance every request of ``ids`` by ``tokens`` generated tokens.

        Returns ``(first_token_ids, completed_ids)`` -- the subsets (order
        preserved) that crossed the first-token and completion thresholds
        in this call.

        Raises:
            ValueError: if any request would exceed its output length.
        """
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        if ids.size == 0 or tokens == 0:
            return EMPTY_IDS, EMPTY_IDS
        new = self.generated[ids] + tokens
        over = new > self.output_len[ids]
        if np.any(over):
            culprit = int(self.request_id[ids[over][0]])
            raise ValueError(
                f"request {culprit} would exceed its output length"
            )
        self.generated[ids] = new
        completed = ids[new == self.output_len[ids]]
        if completed.size:
            self.done[completed] = True
            self._done_count += int(completed.size)
        # First tokens: requests whose count was 0 before this call and >= 1
        # after.  (With per-iteration single-token advances this is exactly
        # ``new == 1``; the general form keeps multi-token advances honest.)
        first = ids[(new - tokens) == 0]
        return first, completed

    def decode_step(
        self, group: np.ndarray, decoder_only: bool, early_termination: bool = True
    ) -> DecodeStep | None:
        """One micro-batch decode step, fused into a single gather pass.

        Combines what one decode iteration needs from its group -- alive
        filtering, batch size, average/total context length, the one-token
        advance with first-token/completion detection -- so the hot loop
        touches each column once instead of once per query.  With
        ``early_termination`` finished members leave the batch before the
        step; without it (FasterTransformer/DSI) they keep occupying their
        slots but still do not advance.  Returns ``None`` when the step has
        no members.
        """
        if group.size == 0:
            return None
        done = self.done[group]
        if early_termination:
            members = group[~done] if done.any() else group
            if members.size == 0:
                return None
            advancing = members
            generated = self.generated[members]
        else:
            members = group
            advancing = group[~done] if done.any() else group
            generated = self.generated[members]
        if decoder_only:
            context_tokens = int((self.input_len[members] + generated).sum())
        else:
            context_tokens = int(np.maximum(generated, 1).sum())
        avg_context = context_tokens / members.size
        if advancing.size == 0:
            return DecodeStep(
                int(members.size), avg_context, context_tokens, EMPTY_IDS, EMPTY_IDS
            )
        before = generated if advancing is members else self.generated[advancing]
        new = before + 1
        self.generated[advancing] = new
        first = advancing[before == 0]
        completed = advancing[new == self.output_len[advancing]]
        if completed.size:
            self.done[completed] = True
            self._done_count += int(completed.size)
        return DecodeStep(
            int(members.size), avg_context, context_tokens, first, completed
        )

    def decode_run(
        self, group: np.ndarray, decoder_only: bool, iterations: int
    ) -> DecodeRunSteps | None:
        """Bulk equivalent of ``iterations`` early-terminating decode steps.

        One vectorized pass replaces the per-iteration ``decode_step``
        loop of the serving hot path: per-iteration batch sizes and
        context sums fall out of a remaining-tokens histogram
        (``bincount`` over ``output_len - generated`` clipped at the run
        length), completions are grouped by a single stable argsort, and
        the pool advances every member to its final state in one column
        assignment.  Results and side effects are bit-identical to the
        step-by-step loop (the ``ListPool`` implementation *is* that loop;
        the hypothesis parity suite pins the two).  Returns ``None`` when
        the group has no live members.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if group.size == 0:
            return None
        done = self.done[group]
        members = group[~done] if done.any() else group
        if members.size == 0:
            return None
        gen0 = self.generated[members]
        outl = self.output_len[members]
        rem = outl - gen0
        t = int(min(iterations, int(rem.max())))
        # Histogram of remaining tokens, clipped at t+1: bin i+1 holds the
        # members completing at iteration i, bin t+1 the survivors.
        remc = np.minimum(rem, t + 1)
        counts = np.bincount(remc, minlength=t + 2)
        cum = np.cumsum(counts)
        n = members.size
        batches = n - cum[:t]
        if decoder_only:
            base = self.input_len[members] + gen0
        else:
            base = gen0
        wsum = np.bincount(remc, weights=base, minlength=t + 2)
        wcum = np.cumsum(wsum)
        # Sum over still-live members of (base + i); integer-valued float64
        # stays exact far below 2**53, so the int64 cast is lossless.
        still = base.sum() - wcum[:t]
        context_tokens = (
            still + batches * np.arange(t, dtype=np.int64)
        ).astype(np.int64)
        if not decoder_only:
            # Iteration 0 contexts clamp max(generated, 1); generated is
            # >= 1 from iteration 1 on.
            context_tokens[0] += int(np.count_nonzero(gen0 == 0))
        first_ids = members[gen0 == 0]
        order = np.argsort(remc, kind="stable")
        sorted_members = members[order]
        bounds = np.searchsorted(remc[order], np.arange(1, t + 2))
        completed = tuple(
            sorted_members[bounds[i] : bounds[i + 1]] for i in range(t)
        )
        if decoder_only:
            ctx_done = self.input_len[members] + outl
        else:
            ctx_done = outl
        completed_context = (
            np.bincount(remc, weights=ctx_done, minlength=t + 2)[1 : t + 1]
        ).astype(np.int64)
        self.generated[members] = gen0 + np.minimum(rem, t)
        newly_done = members[rem <= t]
        if newly_done.size:
            self.done[newly_done] = True
            self._done_count += int(newly_done.size)
        return DecodeRunSteps(
            batches=batches,
            context_tokens=context_tokens,
            first_ids=first_ids,
            completed=completed,
            completed_counts=counts[1 : t + 1],
            completed_context=completed_context,
        )

    def reset_progress(self) -> None:
        """Reset every request to the just-admitted state.

        Clears generation progress, timestamps and admission cycles while
        keeping the static columns (lengths, arrivals, trace ids) intact.
        Serving entry points call this so one pool can be served repeatedly
        -- e.g. the same million-request pool through several fleets or
        cores -- without a stale ``done`` mask silently emptying the run.
        """
        self.generated[:] = 0
        self.encode_start_s[:] = -1.0
        self.encode_finish_s[:] = -1.0
        self.finish_s[:] = -1.0
        self.admitted_cycle[:] = -1
        self.done[:] = False
        self._done_count = 0

    def set_admitted_cycle(self, ids: np.ndarray, cycle: int) -> None:
        """Record the admission cycle of a batch."""
        if ids.size:
            self.admitted_cycle[ids] = cycle

    def requeue(self, ids: np.ndarray) -> None:
        """Rewind a batch of *unfinished* requests to the just-admitted state.

        The fault-injection primitive: when a replica crashes (or a decode
        is preempted back to the queue), its queued and in-flight ids are
        reclaimed through the shared pool -- generation progress, pool
        timestamps and admission cycles reset in one vectorized column
        pass -- and re-routed as if freshly arrived.  Ids keep their
        identity (rows never move), so bookkeeping and routing state
        referencing them stay valid.

        Raises:
            ValueError: if any id is already done.  The done mask is
                monotone; a completed request can never be requeued, which
                is what makes resurrection across a crash impossible.
        """
        if ids.size == 0:
            return
        done = self.done[ids]
        if done.any():
            culprit = int(self.request_id[ids[done][0]])
            raise ValueError(
                f"request {culprit} already completed; cannot requeue"
            )
        self.generated[ids] = 0
        self.encode_start_s[ids] = -1.0
        self.encode_finish_s[ids] = -1.0
        self.finish_s[ids] = -1.0
        self.admitted_cycle[ids] = -1

    def stamp_encode_start(self, ids: np.ndarray, when: float) -> None:
        """Stamp encode-start timestamps of a batch."""
        if ids.size:
            self.encode_start_s[ids] = when

    def stamp_finish(self, ids: np.ndarray, when: float) -> None:
        """Stamp completion timestamps of a batch."""
        if ids.size:
            self.finish_s[ids] = when

    # -- grouped reductions --------------------------------------------------------------

    def average_input(self, ids: np.ndarray) -> float:
        """Mean input length of a batch (0 for an empty batch)."""
        if ids.size == 0:
            return 0.0
        return self.input_len[ids].sum() / ids.size

    def total_input(self, ids: np.ndarray) -> int:
        """Sum of input lengths (the encoder workload of a batch)."""
        return int(self.input_len[ids].sum())

    def context_token_sum(self, ids: np.ndarray, decoder_only: bool) -> int:
        """Total attention-context tokens of the batch's next decode step."""
        if ids.size == 0:
            return 0
        if decoder_only:
            return int((self.input_len[ids] + self.generated[ids]).sum())
        return int(np.maximum(self.generated[ids], 1).sum())

    def average_context(self, ids: np.ndarray, decoder_only: bool) -> float:
        """Mean attention-context length of the next decode step."""
        if ids.size == 0:
            return 0.0
        if decoder_only:
            return (self.input_len[ids] + self.generated[ids]).sum() / ids.size
        return np.maximum(self.generated[ids], 1).sum() / ids.size

    def max_output_len(self, ids: np.ndarray) -> int:
        """Largest forced output length in the batch."""
        if ids.size == 0:
            return 0
        return int(self.output_len[ids].max())

    def remaining_tokens(self, ids: np.ndarray) -> int:
        """Total tokens the batch still owes (one gather-subtract-sum).

        The outstanding-work column reduction behind least-outstanding-work
        routing: finished members contribute zero, so an owner may pass its
        whole (uncompacted) id slice.
        """
        if ids.size == 0:
            return 0
        return int(
            np.maximum(self.output_len[ids] - self.generated[ids], 0).sum()
        )

    def total_tokens(self, ids: np.ndarray) -> np.ndarray:
        """Per-request total (input + output) tokens of a batch (one gather).

        Batched routing's incremental-load column: the whole-request work
        an arrival adds to the replica that admits it.
        """
        if ids.size == 0:
            return EMPTY_IDS
        return self.input_len[ids] + self.output_len[ids]

    def done_count_of(self, ids: np.ndarray) -> int:
        """Finished requests among ``ids`` (one mask reduction)."""
        if ids.size == 0:
            return 0
        return int(np.count_nonzero(self.done[ids]))

    def alive_count_of(self, ids: np.ndarray) -> int:
        """Unfinished requests among ``ids`` (one mask reduction)."""
        return int(ids.size) - self.done_count_of(ids)

    def input_lens_range(self, start: int, stop: int) -> np.ndarray:
        """Input-length window of admission-ordered ids ``[start, stop)``.

        A zero-copy column slice -- the admission paths feed this to the
        dynamic workload adjuster without materializing pending lists.
        """
        return self.input_len[start:stop]

    def input_lens(self, ids: np.ndarray) -> np.ndarray:
        """Input lengths of an id batch (one gather)."""
        return self.input_len[ids]

    def request_ids_of(self, ids: np.ndarray) -> np.ndarray:
        """Trace ids of an id batch (one gather)."""
        return self.request_id[ids]

    # -- scalar accessors ---------------------------------------------------------------

    def request_id_of(self, rid: int) -> int:
        """Trace id of one request."""
        return int(self.request_id[rid])

    def input_len_of(self, rid: int) -> int:
        """Prompt length of one request."""
        return int(self.input_len[rid])

    def output_len_of(self, rid: int) -> int:
        """Forced generation length of one request."""
        return int(self.output_len[rid])

    def arrival_of(self, rid: int) -> float:
        """Arrival time of one request."""
        return float(self.arrival_s[rid])

    def view(self, rid: int) -> RequestView:
        """Thin :class:`RequestState`-compatible view of one request."""
        return RequestView(self, rid)

    def views(self) -> list[RequestView]:
        """Views of every request, in admission order."""
        return [RequestView(self, rid) for rid in range(self.size)]

    # -- collection ---------------------------------------------------------------------

    def completion_arrays(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """``(latencies, completion_times, output_lens, tokens)`` of ``ids``.

        One vectorized pass over the batch; used by
        :func:`~repro.engine.metrics.collect_pool_result`.

        Raises:
            ValueError: if any request is unfinished or missing timestamps.
        """
        finish = self.finish_s[ids]
        start = self.encode_start_s[ids]
        bad = ~self.done[ids] | (finish < 0)
        if np.any(bad):
            culprit = int(self.request_id[ids[bad][0]])
            raise ValueError(
                f"request {culprit} did not complete; cannot collect metrics"
            )
        latencies = finish - start
        invalid = (start < 0) | np.isnan(latencies)
        if np.any(invalid):
            culprit = int(self.request_id[ids[invalid][0]])
            raise ValueError(f"request {culprit} has invalid latency")
        return (
            latencies,
            finish,
            self.output_len[ids],
            int(self.generated[ids].sum()),
        )


class ListPool:
    """Reference pool backend: a list of per-request objects.

    Implements the exact :class:`RequestPool` interface over
    :class:`~repro.engine.request.RequestState` dataclasses using the
    historical per-object idioms -- ``done`` list comprehensions, Python
    ``sum`` loops, attribute stamping -- that the columnar pool replaces.

    Two consumers keep it alive:

    * the hypothesis parity suite (``tests/engine/test_pool.py``) uses it
      as the executable specification the columnar pool must match, and
    * the perf harness replays traces through it (``XRunner(...,
      columnar=False)``) to measure the list-vs-columnar speedup recorded
      in ``BENCH_search.json`` (series ``replay_pool``).
    """

    def __init__(self) -> None:
        self.states: list[RequestState] = []

    @classmethod
    def from_trace(cls, trace: WorkloadTrace) -> "ListPool":
        pool = cls()
        pool.admit_specs(trace.requests)
        return pool

    @classmethod
    def from_arrays(
        cls,
        input_len: np.ndarray,
        output_len: np.ndarray,
        arrival_s: np.ndarray | None = None,
        request_id: np.ndarray | None = None,
    ) -> "ListPool":
        # The reference path boxes each row back into a RequestSpec, whose
        # validation the columnar fast path must reproduce.
        input_len = np.asarray(input_len, dtype=np.int64)
        output_len = np.asarray(output_len, dtype=np.int64)
        n = input_len.shape[0]
        if output_len.shape[0] != n:
            raise ValueError("input_len and output_len must have equal length")
        if arrival_s is None:
            arrival_s = np.zeros(n, dtype=float)
        else:
            arrival_s = np.asarray(arrival_s, dtype=float)
            if arrival_s.shape[0] != n:
                raise ValueError("arrival_s must match the length columns")
        if request_id is None:
            request_id = np.arange(n, dtype=np.int64)
        else:
            request_id = np.asarray(request_id, dtype=np.int64)
            if request_id.shape[0] != n:
                raise ValueError("request_id must match the length columns")
        pool = cls()
        pool.admit_specs(
            RequestSpec(
                request_id=int(rid),
                input_len=int(inp),
                output_len=int(out),
                arrival_s=float(arr),
            )
            for rid, inp, out, arr in zip(
                request_id, input_len, output_len, arrival_s
            )
        )
        return pool

    def admit_specs(self, specs) -> np.ndarray:
        start = len(self.states)
        self.states.extend(RequestState(spec=spec) for spec in specs)
        return np.arange(start, len(self.states), dtype=np.int64)

    # -- sizes and counts ----------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.states)

    def __len__(self) -> int:
        return len(self.states)

    @property
    def done_count(self) -> int:
        return sum(1 for s in self.states if s.done)

    @property
    def alive_count(self) -> int:
        return sum(1 for s in self.states if not s.done)

    # -- id sets ------------------------------------------------------------------------

    def ids(self) -> np.ndarray:
        return np.arange(len(self.states), dtype=np.int64)

    def arrival_order(self) -> np.ndarray:
        # The historical idiom: sort request objects by (arrival, id).
        ranked = sorted(
            range(len(self.states)),
            key=lambda rid: (
                self.states[rid].spec.arrival_s,
                self.states[rid].request_id,
            ),
        )
        return np.array(ranked, dtype=np.int64)

    def compact(self, ids: np.ndarray) -> np.ndarray:
        # The historical per-object scan: `[r for r in pool if not r.done]`.
        return np.array(
            [rid for rid in ids.tolist() if not self.states[rid].done],
            dtype=np.int64,
        )

    alive = compact

    def done_mask(self, ids: np.ndarray) -> np.ndarray:
        return np.array([self.states[rid].done for rid in ids.tolist()], dtype=bool)

    def alive_mask(self, ids: np.ndarray) -> np.ndarray:
        return np.array(
            [not self.states[rid].done for rid in ids.tolist()], dtype=bool
        )

    # -- lifecycle operations ------------------------------------------------------------

    def advance(
        self, ids: np.ndarray, tokens: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        first: list[int] = []
        completed: list[int] = []
        if tokens == 0:
            return EMPTY_IDS, EMPTY_IDS
        for rid in ids.tolist():
            state = self.states[rid]
            before = state.generated
            state.advance(tokens)
            if before == 0:
                first.append(rid)
            if state.done:
                completed.append(rid)
        return (
            np.array(first, dtype=np.int64),
            np.array(completed, dtype=np.int64),
        )

    def decode_step(
        self, group: np.ndarray, decoder_only: bool, early_termination: bool = True
    ) -> DecodeStep | None:
        # The historical per-object decode loop, verbatim: filter done,
        # Python-sum contexts, advance one by one.
        pairs = [(rid, self.states[rid]) for rid in group.tolist()]
        if early_termination:
            pairs = [(rid, state) for rid, state in pairs if not state.done]
        if not pairs:
            return None
        context_tokens = sum(
            state.context_length(decoder_only) for _, state in pairs
        )
        avg_context = context_tokens / len(pairs)
        first: list[int] = []
        completed: list[int] = []
        for rid, state in pairs:
            if state.done:
                continue
            state.advance()
            if state.generated == 1:
                first.append(rid)
            if state.done:
                completed.append(rid)
        return DecodeStep(
            len(pairs),
            avg_context,
            context_tokens,
            np.array(first, dtype=np.int64),
            np.array(completed, dtype=np.int64),
        )

    def decode_run(
        self, group: np.ndarray, decoder_only: bool, iterations: int
    ) -> DecodeRunSteps | None:
        # The reference implementation IS the historical loop: one
        # early-terminating decode_step per iteration until the group
        # drains, collecting the per-iteration summaries the columnar
        # fast path computes in one pass.
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        batches: list[int] = []
        context_tokens: list[int] = []
        completed: list[np.ndarray] = []
        counts: list[int] = []
        completed_context: list[int] = []
        first_ids = EMPTY_IDS
        for i in range(iterations):
            step = self.decode_step(group, decoder_only, True)
            if step is None:
                break
            batches.append(step.batch)
            context_tokens.append(step.context_tokens)
            if i == 0:
                first_ids = step.first_ids
            comp = step.completed_ids
            completed.append(comp)
            counts.append(int(comp.size))
            completed_context.append(
                self.context_token_sum(comp, decoder_only) if comp.size else 0
            )
        if not batches:
            return None
        return DecodeRunSteps(
            batches=np.array(batches, dtype=np.int64),
            context_tokens=np.array(context_tokens, dtype=np.int64),
            first_ids=first_ids,
            completed=tuple(completed),
            completed_counts=np.array(counts, dtype=np.int64),
            completed_context=np.array(completed_context, dtype=np.int64),
        )

    def reset_progress(self) -> None:
        for state in self.states:
            state.generated = 0
            state.encode_start_s = -1.0
            state.encode_finish_s = -1.0
            state.finish_s = -1.0
            state.admitted_cycle = -1

    def set_admitted_cycle(self, ids: np.ndarray, cycle: int) -> None:
        for rid in ids.tolist():
            self.states[rid].admitted_cycle = cycle

    def requeue(self, ids: np.ndarray) -> None:
        # Two passes, like the columnar path: validate every id first so a
        # mixed batch with a done member mutates nothing.
        for rid in ids.tolist():
            if self.states[rid].done:
                raise ValueError(
                    f"request {self.states[rid].request_id} already "
                    "completed; cannot requeue"
                )
        for rid in ids.tolist():
            state = self.states[rid]
            state.generated = 0
            state.encode_start_s = -1.0
            state.encode_finish_s = -1.0
            state.finish_s = -1.0
            state.admitted_cycle = -1

    def stamp_encode_start(self, ids: np.ndarray, when: float) -> None:
        for rid in ids.tolist():
            self.states[rid].encode_start_s = when

    def stamp_finish(self, ids: np.ndarray, when: float) -> None:
        for rid in ids.tolist():
            self.states[rid].finish_s = when

    # -- grouped reductions --------------------------------------------------------------

    def average_input(self, ids: np.ndarray) -> float:
        if ids.size == 0:
            return 0.0
        return sum(self.states[rid].input_len for rid in ids.tolist()) / ids.size

    def total_input(self, ids: np.ndarray) -> int:
        return sum(self.states[rid].input_len for rid in ids.tolist())

    def context_token_sum(self, ids: np.ndarray, decoder_only: bool) -> int:
        return sum(
            self.states[rid].context_length(decoder_only) for rid in ids.tolist()
        )

    def average_context(self, ids: np.ndarray, decoder_only: bool) -> float:
        if ids.size == 0:
            return 0.0
        return (
            sum(self.states[rid].context_length(decoder_only) for rid in ids.tolist())
            / ids.size
        )

    def max_output_len(self, ids: np.ndarray) -> int:
        if ids.size == 0:
            return 0
        return max(self.states[rid].output_len for rid in ids.tolist())

    def remaining_tokens(self, ids: np.ndarray) -> int:
        return sum(self.states[rid].remaining for rid in ids.tolist())

    def total_tokens(self, ids: np.ndarray) -> np.ndarray:
        return np.array(
            [
                self.states[rid].input_len + self.states[rid].output_len
                for rid in ids.tolist()
            ],
            dtype=np.int64,
        )

    def done_count_of(self, ids: np.ndarray) -> int:
        return sum(1 for rid in ids.tolist() if self.states[rid].done)

    def alive_count_of(self, ids: np.ndarray) -> int:
        return sum(1 for rid in ids.tolist() if not self.states[rid].done)

    def input_lens_range(self, start: int, stop: int) -> np.ndarray:
        return np.array(
            [s.input_len for s in self.states[start:stop]], dtype=np.int64
        )

    def input_lens(self, ids: np.ndarray) -> np.ndarray:
        return np.array(
            [self.states[rid].input_len for rid in ids.tolist()], dtype=np.int64
        )

    def request_ids_of(self, ids: np.ndarray) -> np.ndarray:
        return np.array(
            [self.states[rid].request_id for rid in ids.tolist()], dtype=np.int64
        )

    # -- scalar accessors ---------------------------------------------------------------

    def request_id_of(self, rid: int) -> int:
        return self.states[rid].request_id

    def input_len_of(self, rid: int) -> int:
        return self.states[rid].input_len

    def output_len_of(self, rid: int) -> int:
        return self.states[rid].output_len

    def arrival_of(self, rid: int) -> float:
        return self.states[rid].spec.arrival_s

    def view(self, rid: int) -> RequestState:
        """The backing state itself is already a per-request view."""
        return self.states[rid]

    def views(self) -> list[RequestState]:
        return list(self.states)

    # -- collection ---------------------------------------------------------------------

    def completion_arrays(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        latencies: list[float] = []
        completions: list[float] = []
        lengths: list[int] = []
        tokens = 0
        for rid in ids.tolist():
            state = self.states[rid]
            if not state.done or state.finish_s < 0:
                raise ValueError(
                    f"request {state.request_id} did not complete; "
                    "cannot collect metrics"
                )
            latency = state.latency_s
            if latency < 0 or np.isnan(latency):
                raise ValueError(
                    f"request {state.request_id} has invalid latency"
                )
            latencies.append(latency)
            completions.append(state.finish_s)
            lengths.append(state.output_len)
            tokens += state.generated
        return (
            np.array(latencies, dtype=float),
            np.array(completions, dtype=float),
            np.array(lengths, dtype=np.int64),
            tokens,
        )


def make_pool(trace: WorkloadTrace, columnar: bool = True):
    """Build the requested pool backend for a trace."""
    backend = RequestPool if columnar else ListPool
    return backend.from_trace(trace)

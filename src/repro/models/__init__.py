"""Model catalog and analytical per-layer work calculators."""

from repro.models.catalog import (
    DEPLOYMENTS,
    GPT3_39B,
    GPT3_101B,
    GPT3_175B,
    GPT3_341B,
    OPT_13B,
    T5_11B,
    deployment_for,
    get_model,
    known_models,
)
from repro.models.flops import (
    LayerWork,
    decoder_layer_work,
    encoder_layer_work,
    sequence_flops,
)
from repro.models.kvcache import (
    kv_cache_bytes_for_batch,
    kv_cache_bytes_per_request,
    max_batch_for_memory,
)
from repro.models.spec import Architecture, ModelSpec

__all__ = [
    "Architecture",
    "DEPLOYMENTS",
    "GPT3_101B",
    "GPT3_175B",
    "GPT3_341B",
    "GPT3_39B",
    "LayerWork",
    "ModelSpec",
    "OPT_13B",
    "T5_11B",
    "decoder_layer_work",
    "deployment_for",
    "encoder_layer_work",
    "get_model",
    "known_models",
    "kv_cache_bytes_for_batch",
    "kv_cache_bytes_per_request",
    "max_batch_for_memory",
    "sequence_flops",
]

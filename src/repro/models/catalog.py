"""Catalog of the models evaluated in the paper (Table 1).

| Model      | Params | Layers | Hidden | Heads |
|------------|--------|--------|--------|-------|
| T5         | 11B    | 48     | 1024   | 128   |
| OPT        | 13B    | 40     | 5120   | 40    |
| GPT-3      | 39B    | 48     | 8192   | 64    |
| GPT-3      | 101B   | 80     | 10240  | 80    |
| GPT-3      | 175B   | 96     | 12288  | 96    |
| GPT-3      | 341B   | 120    | 15360  | 120   |

The T5 row follows the paper's table (hidden 1024, 128 heads, FFN 65536 as
in T5-11B); all other models use the standard ``ffn = 4 * hidden``.
"""

from __future__ import annotations

from repro.models.spec import Architecture, ModelSpec

T5_11B = ModelSpec(
    name="T5 11B",
    architecture=Architecture.ENCODER_DECODER,
    num_layers=48,
    hidden_size=1024,
    num_heads=128,
    ffn_size=65536,
    vocab_size=32128,
)

OPT_13B = ModelSpec(
    name="OPT 13B",
    architecture=Architecture.DECODER_ONLY,
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    vocab_size=50272,
)

GPT3_39B = ModelSpec(
    name="GPT-3 39B",
    architecture=Architecture.DECODER_ONLY,
    num_layers=48,
    hidden_size=8192,
    num_heads=64,
)

GPT3_101B = ModelSpec(
    name="GPT-3 101B",
    architecture=Architecture.DECODER_ONLY,
    num_layers=80,
    hidden_size=10240,
    num_heads=80,
)

GPT3_175B = ModelSpec(
    name="GPT-3 175B",
    architecture=Architecture.DECODER_ONLY,
    num_layers=96,
    hidden_size=12288,
    num_heads=96,
)

GPT3_341B = ModelSpec(
    name="GPT-3 341B",
    architecture=Architecture.DECODER_ONLY,
    num_layers=120,
    hidden_size=15360,
    num_heads=120,
)

_CATALOG: dict[str, ModelSpec] = {
    "T5-11B": T5_11B,
    "OPT-13B": OPT_13B,
    "GPT3-39B": GPT3_39B,
    "GPT3-101B": GPT3_101B,
    "GPT3-175B": GPT3_175B,
    "GPT3-341B": GPT3_341B,
}

# Table 2: which cluster and how many GPUs each model runs on.
DEPLOYMENTS: dict[str, tuple[str, int]] = {
    "T5-11B": ("A40", 8),
    "OPT-13B": ("A40", 4),
    "GPT3-39B": ("A40", 16),
    "GPT3-101B": ("A100", 16),
    "GPT3-175B": ("A100", 16),
    "GPT3-341B": ("A40", 48),
}


def _catalog_key(model: ModelSpec | str) -> str:
    """Normalise a catalog key, display name or :class:`ModelSpec` to a key."""
    name = model.name if isinstance(model, ModelSpec) else model
    return name.upper().replace(" ", "-").replace("GPT-3", "GPT3")


def get_model(name: ModelSpec | str) -> ModelSpec:
    """Look up a model spec by catalog key (case-insensitive).

    Accepts keys like ``"OPT-13B"``, display names like ``"OPT 13B"``, or a
    :class:`ModelSpec` itself (resolved through its ``name``).
    """
    key = _catalog_key(name)
    if key not in _CATALOG:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return _CATALOG[key]


def known_models() -> list[str]:
    """Catalog keys of all registered models."""
    return sorted(_CATALOG)


def deployment_for(name: ModelSpec | str) -> tuple[str, int]:
    """The (cluster, GPU count) used for a model in Table 2.

    Accepts the same spellings as :func:`get_model`, including a
    :class:`ModelSpec` instance.
    """
    key = _catalog_key(name)
    if key not in DEPLOYMENTS:
        known = ", ".join(sorted(DEPLOYMENTS))
        raise KeyError(f"no deployment recorded for {name!r}; known: {known}")
    return DEPLOYMENTS[key]

"""FLOP and byte counts for transformer layers.

These closed-form counts back up the roofline kernel model and are also
used directly by the WAA-C allocation policy, which balances GPUs by the
estimated *computation* of encoding versus decoding, and by tests that check
the kernel model against first principles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.spec import ModelSpec


@dataclass(frozen=True)
class LayerWork:
    """FLOPs and HBM bytes for one transformer layer invocation.

    Attributes:
        flops: Floating-point operations.
        weight_bytes: Weight bytes that must be streamed from HBM.
        activation_bytes: Activation / KV bytes read and written.
    """

    flops: float
    weight_bytes: float
    activation_bytes: float

    @property
    def total_bytes(self) -> float:
        """All HBM traffic of the invocation."""
        return self.weight_bytes + self.activation_bytes


def encoder_layer_work(
    model: ModelSpec, batch: float, input_len: float
) -> LayerWork:
    """Work of one encoding (prefill) layer over ``batch`` sequences.

    Every token attends to every other input token, so attention FLOPs grow
    quadratically with the input length while the dense GEMMs grow linearly
    with the token count.
    """
    _validate(batch, input_len)
    h = model.hidden_size
    f = model.ffn_size
    tokens = batch * input_len
    dense_flops = 2.0 * tokens * (4 * h * h + 2 * h * f)
    attn_flops = 4.0 * batch * input_len * input_len * h
    weight_bytes = model.layer_bytes(with_cross_attention=False)
    act_bytes = 2.0 * model.dtype_bytes * tokens * (8 * h + 2 * f)
    return LayerWork(dense_flops + attn_flops, weight_bytes, act_bytes)


def decoder_layer_work(
    model: ModelSpec,
    batch: float,
    context_len: float,
    input_len: float = 0.0,
) -> LayerWork:
    """Work of one decoding layer for a single incremental-decode step.

    Args:
        model: Model spec.
        batch: Sequences decoded in this step.
        context_len: Average number of cached tokens each query attends to
            (input + already-generated tokens for decoder-only models;
            generated tokens only for the self-attention of T5 decoders).
        input_len: Cross-attention memory length for encoder-decoder models.
    """
    _validate(batch, context_len)
    h = model.hidden_size
    f = model.ffn_size
    cross = model.decoder_has_cross_attention
    dense_flops = 2.0 * batch * ((8 if cross else 4) * h * h + 2 * h * f)
    attn_flops = 4.0 * batch * context_len * h
    if cross and input_len > 0:
        attn_flops += 4.0 * batch * input_len * h
    weight_bytes = model.layer_bytes(with_cross_attention=cross)
    kv_bytes = 2.0 * model.dtype_bytes * batch * context_len * h
    act_bytes = 2.0 * model.dtype_bytes * batch * (8 * h + 2 * f) + kv_bytes
    return LayerWork(dense_flops + attn_flops, weight_bytes, act_bytes)


def sequence_flops(model: ModelSpec, input_len: float, output_len: float) -> float:
    """Total FLOPs to serve one request end-to-end (all layers, all steps).

    Used for sanity checks ("hundreds of billions of FLOPs per token") and
    for normalising throughput into model-FLOP utilisation in reports.
    """
    _validate(1.0, input_len)
    if output_len < 0:
        raise ValueError("output_len must be non-negative")
    enc = encoder_layer_work(model, 1.0, input_len).flops * model.num_encoder_layers
    dec = 0.0
    for step in range(int(output_len)):
        if model.is_encoder_decoder:
            context = step + 1
            dec += (
                decoder_layer_work(model, 1.0, context, input_len).flops
                * model.num_decoder_layers
            )
        else:
            context = input_len + step + 1
            dec += (
                decoder_layer_work(model, 1.0, context).flops
                * model.num_decoder_layers
            )
    return enc + dec


def _validate(batch: float, length: float) -> None:
    if batch < 0:
        raise ValueError("batch must be non-negative")
    if length < 0:
        raise ValueError("sequence length must be non-negative")

"""Transformer model specifications.

Table 1 of the paper lists the evaluated models (T5-11B, OPT-13B and four
GPT-3 variants from 39B to 341B parameters) by layer count, hidden size and
attention-head count.  :class:`ModelSpec` captures those architectural
parameters together with the structural distinction that drives ExeGPT's
allocation policies: encoder-decoder models (T5) have separate encoder and
decoder layer stacks and cross-attention in every decoder layer, while
decoder-only models (OPT, GPT-3) use the same decoder layers for both the
prefill ("encoding") and generation ("decoding") phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Architecture(str, Enum):
    """Transformer architecture family."""

    ENCODER_DECODER = "encoder_decoder"
    DECODER_ONLY = "decoder_only"


@dataclass(frozen=True)
class ModelSpec:
    """Architectural description of an LLM.

    Attributes:
        name: Display name, e.g. ``"GPT-3 175B"``.
        architecture: Encoder-decoder or decoder-only.
        num_layers: Total number of transformer layers.  For encoder-decoder
            models this is split evenly between encoder and decoder stacks
            (the T5 convention, and the convention of Table 1).
        hidden_size: Model (embedding) dimension.
        num_heads: Attention heads.
        ffn_size: Feed-forward intermediate dimension.  Defaults to
            ``4 * hidden_size`` when not given, which matches OPT/GPT-3.
        vocab_size: Vocabulary size (used only for embedding weight size).
        dtype_bytes: Bytes per parameter / activation element (2 for FP16).
    """

    name: str
    architecture: Architecture
    num_layers: int
    hidden_size: int
    num_heads: int
    ffn_size: int = 0
    vocab_size: int = 51200
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.num_heads <= 0:
            raise ValueError("num_heads must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.ffn_size == 0:
            object.__setattr__(self, "ffn_size", 4 * self.hidden_size)
        if self.ffn_size <= 0:
            raise ValueError("ffn_size must be positive")
        if self.dtype_bytes not in (1, 2, 4):
            raise ValueError("dtype_bytes must be 1, 2 or 4")

    # -- structure -----------------------------------------------------------

    @property
    def is_encoder_decoder(self) -> bool:
        """True for T5-style models with a separate encoder stack."""
        return self.architecture is Architecture.ENCODER_DECODER

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def num_encoder_layers(self) -> int:
        """Layers executed during the encoding (prefill) phase.

        For decoder-only models the decoder layers themselves perform the
        prefill, so this equals :attr:`num_decoder_layers`.
        """
        if self.is_encoder_decoder:
            return self.num_layers // 2
        return self.num_layers

    @property
    def num_decoder_layers(self) -> int:
        """Layers executed during each decoding iteration."""
        if self.is_encoder_decoder:
            return self.num_layers - self.num_layers // 2
        return self.num_layers

    @property
    def decoder_has_cross_attention(self) -> bool:
        """Whether decoder layers include a cross-attention block."""
        return self.is_encoder_decoder

    # -- parameter counts ------------------------------------------------------

    def layer_parameters(self, with_cross_attention: bool) -> int:
        """Parameter count of one transformer layer."""
        h = self.hidden_size
        f = self.ffn_size
        attention = 4 * h * h  # QKV + output projection
        if with_cross_attention:
            attention += 4 * h * h
        ffn = 2 * h * f
        norms = 4 * h
        return attention + ffn + norms

    @property
    def encoder_parameters(self) -> int:
        """Parameters of the encoder stack (prefill weights)."""
        if self.is_encoder_decoder:
            return self.num_encoder_layers * self.layer_parameters(False)
        return self.num_layers * self.layer_parameters(False)

    @property
    def decoder_parameters(self) -> int:
        """Parameters of the decoder stack (generation weights)."""
        if self.is_encoder_decoder:
            return self.num_decoder_layers * self.layer_parameters(True)
        return self.num_layers * self.layer_parameters(False)

    @property
    def embedding_parameters(self) -> int:
        """Token-embedding (and LM head, tied) parameters."""
        return self.vocab_size * self.hidden_size

    @property
    def total_parameters(self) -> int:
        """Total parameter count of the model."""
        if self.is_encoder_decoder:
            body = self.encoder_parameters + self.decoder_parameters
        else:
            body = self.decoder_parameters
        return body + self.embedding_parameters

    @property
    def total_bytes(self) -> float:
        """Size of all weights in bytes at the model's dtype."""
        return self.total_parameters * self.dtype_bytes

    def layer_bytes(self, with_cross_attention: bool) -> float:
        """Size of one layer's weights in bytes."""
        return self.layer_parameters(with_cross_attention) * self.dtype_bytes

    def kv_bytes_per_token_per_layer(self) -> float:
        """KV-cache bytes stored per token, per layer (keys plus values)."""
        return 2 * self.hidden_size * self.dtype_bytes

    def kv_bytes_per_token(self, num_layers: int | None = None) -> float:
        """KV-cache bytes per generated/cached token across layers."""
        layers = self.num_decoder_layers if num_layers is None else num_layers
        return layers * self.kv_bytes_per_token_per_layer()

"""Key/value cache sizing.

The KV cache is the memory term that differentiates the allocation policies:
WAA-C balances compute and therefore concentrates cache on decoder GPUs,
while WAA-M balances memory by shifting layers.  These helpers compute cache
footprints for a batch of requests, per GPU, given how many layers that GPU
hosts.
"""

from __future__ import annotations

from repro.models.spec import ModelSpec


def kv_cache_bytes_per_request(
    model: ModelSpec,
    input_len: float,
    output_len: float,
    num_layers: int | None = None,
) -> float:
    """KV-cache bytes one request occupies once fully decoded.

    For decoder-only models the cache holds input plus generated tokens; for
    encoder-decoder models the decoder's self-attention cache holds generated
    tokens and the cross-attention cache holds the encoded input.

    Args:
        model: Model spec.
        input_len: Input sequence length.
        output_len: Generated sequence length.
        num_layers: Layers hosted on the GPU of interest (defaults to the
            model's full decoder stack).
    """
    if input_len < 0 or output_len < 0:
        raise ValueError("sequence lengths must be non-negative")
    layers = model.num_decoder_layers if num_layers is None else num_layers
    if layers < 0:
        raise ValueError("num_layers must be non-negative")
    per_token = model.kv_bytes_per_token_per_layer()
    if model.is_encoder_decoder:
        tokens = output_len + input_len  # self-attention + cross-attention memory
    else:
        tokens = input_len + output_len
    return layers * per_token * tokens


def kv_cache_bytes_for_batch(
    model: ModelSpec,
    batch_size: float,
    avg_input_len: float,
    avg_cached_output_len: float,
    num_layers: int | None = None,
) -> float:
    """Expected KV-cache bytes held by a decoding batch at steady state.

    ``avg_cached_output_len`` is the average number of *already generated*
    tokens per in-flight request, which at steady state is roughly half of
    the average output length.
    """
    if batch_size < 0:
        raise ValueError("batch_size must be non-negative")
    per_request = kv_cache_bytes_per_request(
        model, avg_input_len, avg_cached_output_len, num_layers
    )
    return batch_size * per_request


def max_batch_for_memory(
    model: ModelSpec,
    free_bytes: float,
    avg_input_len: float,
    avg_output_len: float,
    num_layers: int | None = None,
) -> int:
    """Largest batch whose steady-state KV cache fits in ``free_bytes``."""
    if free_bytes < 0:
        raise ValueError("free_bytes must be non-negative")
    per_request = kv_cache_bytes_per_request(
        model, avg_input_len, avg_output_len, num_layers
    )
    if per_request <= 0:
        return 2 ** 31
    return int(free_bytes // per_request)

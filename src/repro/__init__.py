"""repro: a reproduction of ExeGPT (ASPLOS 2024).

ExeGPT is a distributed system for constraint-aware LLM inference: it finds
and runs an execution schedule that maximises throughput subject to a
latency bound, by exploiting the distribution of input and output sequence
lengths.  This package re-implements the full system -- profiler, timeline
simulator, branch-and-bound scheduler and distributed runner -- together
with the hardware substrate, model catalog, workloads and baseline systems
(FasterTransformer, DeepSpeed-Inference, ORCA, vLLM) needed to reproduce the
paper's evaluation on a machine without GPUs.

Quickstart::

    from repro import ExeGPT, LatencyConstraint
    from repro.workloads import generate_task_trace, get_task

    engine = ExeGPT.for_task("OPT-13B", "S")
    search = engine.schedule(LatencyConstraint(bound_s=10.0))
    trace = generate_task_trace(get_task("S"), num_requests=256)
    result = engine.run(trace, search.best.config)
    print(result.throughput_seq_per_s, result.p99_latency_s)
"""

from repro.core import (
    ExeGPT,
    LatencyConstraint,
    ScheduleConfig,
    ScheduleEstimate,
    SchedulePolicy,
    SequenceDistribution,
    TensorParallelConfig,
    UNBOUNDED,
    XProfiler,
    XRunner,
    XScheduler,
    XSimulator,
)

__version__ = "1.0.0"

__all__ = [
    "ExeGPT",
    "LatencyConstraint",
    "ScheduleConfig",
    "ScheduleEstimate",
    "SchedulePolicy",
    "SequenceDistribution",
    "TensorParallelConfig",
    "UNBOUNDED",
    "XProfiler",
    "XRunner",
    "XScheduler",
    "XSimulator",
    "__version__",
]

"""Cost models for collective and point-to-point GPU communication.

Megatron-style tensor parallelism requires two all-reduces per encoder layer
and three per decoder layer (Section 2 of the paper); pipeline parallelism
requires point-to-point activation transfers between consecutive stages; and
WAA scheduling transfers KV-cache entries from encoder GPUs to decoder GPUs,
staged through host memory to avoid interfering with compute (Section 3,
XRunner).  Each of these is modelled here against the cluster topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.cluster import Cluster
from repro.hardware.interconnect import LinkSpec


@dataclass(frozen=True)
class CollectiveModel:
    """Communication cost model bound to a cluster topology.

    Attributes:
        cluster: The cluster whose links are used.
    """

    cluster: Cluster

    def _group_link(self, group_size: int, spans_nodes: bool) -> LinkSpec:
        return self.cluster.topology.link_between(same_node=not spans_nodes)

    def allreduce_time(
        self, num_bytes: float, group_size: int, spans_nodes: bool = False
    ) -> float:
        """Seconds for a ring all-reduce of ``num_bytes`` across a TP group.

        Ring all-reduce moves ``2 * (g - 1) / g`` times the buffer over the
        slowest link in the ring.
        """
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if group_size == 1 or num_bytes == 0:
            return 0.0
        link = self._group_link(group_size, spans_nodes)
        traffic = 2.0 * (group_size - 1) / group_size * num_bytes
        # Each of the 2*(g-1) steps pays the link latency once.
        steps = 2 * (group_size - 1)
        return steps * link.latency_us * 1e-6 + traffic / link.bandwidth_bytes_per_s

    def allreduce_time_batch(
        self, num_bytes: np.ndarray, group_size: int, spans_nodes: bool = False
    ) -> np.ndarray:
        """Vectorized :meth:`allreduce_time` over an array of buffer sizes.

        Element-wise identical to the scalar method (same arithmetic, same
        operation order), which is what the simulator's vectorized/scalar
        parity guarantee rests on.
        """
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        num_bytes = np.asarray(num_bytes, dtype=float)
        if np.any(num_bytes < 0):
            raise ValueError("num_bytes must be non-negative")
        if group_size == 1:
            return np.zeros_like(num_bytes)
        link = self._group_link(group_size, spans_nodes)
        traffic = 2.0 * (group_size - 1) / group_size * num_bytes
        steps = 2 * (group_size - 1)
        times = steps * link.latency_us * 1e-6 + traffic / link.bandwidth_bytes_per_s
        return np.where(num_bytes == 0, 0.0, times)

    def p2p_time(self, num_bytes: float, same_node: bool) -> float:
        """Seconds for a point-to-point transfer between two GPUs."""
        link = self.cluster.topology.link_between(same_node=same_node)
        return link.transfer_time(num_bytes)

    def staged_host_transfer_time(self, num_bytes: float) -> float:
        """Seconds to move data GPU -> host memory -> GPU (WAA KV handover).

        The paper copies KV entries to CPU memory first and then to the
        destination GPU so that the transfer does not contend with NCCL
        traffic; the cost is two host-link crossings.
        """
        host = self.cluster.topology.host
        return 2.0 * host.transfer_time(num_bytes)

    def staged_host_transfer_time_batch(self, num_bytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`staged_host_transfer_time` (element-wise identical)."""
        num_bytes = np.asarray(num_bytes, dtype=float)
        if np.any(num_bytes < 0):
            raise ValueError("num_bytes must be non-negative")
        host = self.cluster.topology.host
        times = 2.0 * (
            host.latency_us * 1e-6 + num_bytes / host.bandwidth_bytes_per_s
        )
        return np.where(num_bytes == 0, 0.0, times)

    def pipeline_activation_time(
        self, num_bytes: float, src_gpu: int, dst_gpu: int
    ) -> float:
        """Seconds to ship activations from one pipeline stage to the next."""
        same = self.cluster.same_node(src_gpu, dst_gpu)
        return self.p2p_time(num_bytes, same_node=same)

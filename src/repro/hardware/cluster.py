"""Cluster and node topology descriptions.

Table 2 of the paper lists the two clusters and the sub-clusters used per
model (e.g. GPT-3 175B on 32 A40 GPUs across 4 nodes).  :class:`Cluster`
captures the GPU type, node size and count, and the interconnect topology,
and answers placement questions such as "are GPUs *i* and *j* on the same
node" that the collective/pipeline cost models need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.gpu import GPUSpec, get_gpu
from repro.hardware.interconnect import (
    A40_TOPOLOGY,
    A100_TOPOLOGY,
    Topology,
)


@dataclass(frozen=True)
class Cluster:
    """A homogeneous multi-node GPU cluster.

    Attributes:
        gpu: The GPU device installed in every slot.
        gpus_per_node: Number of GPUs in one machine.
        num_nodes: Number of machines.
        topology: Intra-/inter-node interconnect description.
        name: Optional display name.
    """

    gpu: GPUSpec
    gpus_per_node: int
    num_nodes: int
    topology: Topology
    name: str = ""

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    @property
    def num_gpus(self) -> int:
        """Total number of GPUs in the cluster."""
        return self.gpus_per_node * self.num_nodes

    def node_of(self, gpu_index: int) -> int:
        """Node index hosting GPU ``gpu_index``."""
        self._check_index(gpu_index)
        return gpu_index // self.gpus_per_node

    def same_node(self, gpu_a: int, gpu_b: int) -> bool:
        """Whether two GPUs are co-located on one machine."""
        return self.node_of(gpu_a) == self.node_of(gpu_b)

    def group_spans_nodes(self, gpu_indices: list[int]) -> bool:
        """Whether a GPU group crosses a node boundary."""
        if not gpu_indices:
            return False
        nodes = {self.node_of(i) for i in gpu_indices}
        return len(nodes) > 1

    def subcluster(self, num_gpus: int, name: str = "") -> "Cluster":
        """A cluster restricted to the first ``num_gpus`` GPUs.

        Used to reproduce Table 2's per-model sub-clusters (e.g. OPT-13B
        runs on 4 of the 48 A40 GPUs).
        """
        if num_gpus <= 0 or num_gpus > self.num_gpus:
            raise ValueError(
                f"num_gpus must be in [1, {self.num_gpus}], got {num_gpus}"
            )
        per_node = min(num_gpus, self.gpus_per_node)
        nodes = -(-num_gpus // self.gpus_per_node)  # ceiling division
        return Cluster(
            gpu=self.gpu,
            gpus_per_node=per_node if nodes == 1 else self.gpus_per_node,
            num_nodes=nodes,
            topology=self.topology,
            name=name or f"{self.name}[{num_gpus}]",
        )

    def _check_index(self, gpu_index: int) -> None:
        if not 0 <= gpu_index < self.num_gpus:
            raise IndexError(
                f"GPU index {gpu_index} out of range for {self.num_gpus} GPUs"
            )


def a40_cluster(num_gpus: int = 48) -> Cluster:
    """The paper's A40 cluster (6 nodes x 8 GPUs) or a sub-cluster of it."""
    full = Cluster(
        gpu=get_gpu("A40"),
        gpus_per_node=8,
        num_nodes=6,
        topology=A40_TOPOLOGY,
        name="A40-cluster",
    )
    if num_gpus == full.num_gpus:
        return full
    return full.subcluster(num_gpus, name=f"A40-cluster[{num_gpus}]")


def a100_cluster(num_gpus: int = 16) -> Cluster:
    """The paper's A100 cluster (2 nodes x 8 GPUs) or a sub-cluster of it."""
    full = Cluster(
        gpu=get_gpu("A100"),
        gpus_per_node=8,
        num_nodes=2,
        topology=A100_TOPOLOGY,
        name="A100-cluster",
    )
    if num_gpus == full.num_gpus:
        return full
    return full.subcluster(num_gpus, name=f"A100-cluster[{num_gpus}]")

"""Analytical (roofline) cost model for transformer kernels.

This module is the stand-in for measuring CUDA kernels on real GPUs.  It
exposes cost functions for the two kernel families XProfiler measures
(Section 3 of the paper):

* the attention kernel, whose cost depends on batch size and the sequence
  lengths involved (context length for decode, input length for prefill),
* "the rest of the encoding/decoding layer" -- the dense GEMMs of the
  QKV/output projections and the feed-forward network -- whose cost depends
  on the number of tokens processed (batch size x input length).

Every cost is ``max(compute_time, memory_time) + launch_overhead`` where
compute time uses the GPU's batch-size-dependent efficiency curve and
memory time is bytes moved over HBM bandwidth.  Decode iterations process a
single token per sequence and are therefore memory-bandwidth bound (weights
must be streamed for every token), while prefill over hundreds of tokens is
compute bound; this reproduces the encode/decode cost asymmetry that ExeGPT
exploits (encoding is "orders of magnitude" more expensive per iteration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec

FP16_BYTES = 2


@dataclass(frozen=True)
class KernelCost:
    """Cost breakdown of one kernel invocation.

    Attributes:
        compute_s: Time limited by arithmetic throughput, in seconds.
        memory_s: Time limited by HBM bandwidth, in seconds.
        launch_s: Fixed launch overhead, in seconds.
    """

    compute_s: float
    memory_s: float
    launch_s: float

    @property
    def total_s(self) -> float:
        """Wall-clock estimate: roofline max plus launch overhead."""
        return max(self.compute_s, self.memory_s) + self.launch_s

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(
            compute_s=self.compute_s + other.compute_s,
            memory_s=self.memory_s + other.memory_s,
            launch_s=self.launch_s + other.launch_s,
        )


ZERO_COST = KernelCost(0.0, 0.0, 0.0)


class KernelModel:
    """Roofline kernel cost model bound to a specific GPU.

    Args:
        gpu: The device executing the kernels.
        num_kernels_per_layer: Number of distinct kernel launches issued for
            one transformer layer (projections, attention, MLP, layernorms).
            Only affects the fixed launch overhead term.
    """

    def __init__(self, gpu: GPUSpec, num_kernels_per_layer: int = 12) -> None:
        if num_kernels_per_layer <= 0:
            raise ValueError("num_kernels_per_layer must be positive")
        self.gpu = gpu
        self.num_kernels_per_layer = num_kernels_per_layer

    # -- primitive costs ----------------------------------------------------

    def gemm(self, m: float, k: float, n: float) -> KernelCost:
        """Cost of a dense ``(m x k) @ (k x n)`` FP16 GEMM.

        ``m`` is interpreted as the token dimension for the efficiency
        curve: small-m GEMMs (decode) run far below peak.
        """
        if min(m, k, n) < 0:
            raise ValueError("GEMM dimensions must be non-negative")
        if m == 0 or k == 0 or n == 0:
            return ZERO_COST
        flops = 2.0 * m * k * n
        eff = self.gpu.efficiency(m)
        compute = flops / (self.gpu.peak_flops * max(eff, 1e-6))
        bytes_moved = FP16_BYTES * (m * k + k * n + m * n)
        memory = bytes_moved / self.gpu.memory_bandwidth_bytes_per_s
        return KernelCost(compute, memory, self.gpu.kernel_launch_us * 1e-6)

    def attention(
        self,
        batch: float,
        query_len: float,
        key_len: float,
        num_heads: int,
        head_dim: int,
    ) -> KernelCost:
        """Cost of a (batched) scaled-dot-product attention kernel.

        Args:
            batch: Number of sequences in the batch.
            query_len: Number of query tokens per sequence (input length for
                prefill, 1 for incremental decode).
            key_len: Number of key/value tokens attended to (context length).
            num_heads: Attention heads.
            head_dim: Per-head dimension.
        """
        if min(batch, query_len, key_len) < 0:
            raise ValueError("attention dimensions must be non-negative")
        if batch == 0 or query_len == 0 or key_len == 0:
            return ZERO_COST
        hidden = num_heads * head_dim
        # QK^T and attention-weighted V: 2 matmuls of (q_len x d) x (d x k_len).
        flops = 2.0 * 2.0 * batch * num_heads * query_len * key_len * head_dim
        eff = self.gpu.efficiency(batch * query_len)
        compute = flops / (self.gpu.peak_flops * max(eff, 1e-6))
        # Memory traffic: read the KV cache (dominant for decode) and Q,
        # write the context vectors.
        kv_bytes = FP16_BYTES * 2.0 * batch * key_len * hidden
        qo_bytes = FP16_BYTES * 2.0 * batch * query_len * hidden
        memory = (kv_bytes + qo_bytes) / self.gpu.memory_bandwidth_bytes_per_s
        return KernelCost(compute, memory, self.gpu.kernel_launch_us * 1e-6)

    def memcpy(self, num_bytes: float) -> KernelCost:
        """Device-local copy cost (e.g. KV-cache compaction after early exit)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return ZERO_COST
        # Copies read and write HBM.
        memory = 2.0 * num_bytes / self.gpu.memory_bandwidth_bytes_per_s
        return KernelCost(0.0, memory, self.gpu.kernel_launch_us * 1e-6)

    # -- per-layer costs -----------------------------------------------------

    def dense_layer_cost(
        self,
        tokens: float,
        hidden_size: int,
        ffn_size: int,
        tp_degree: int = 1,
        has_cross_attention: bool = False,
    ) -> KernelCost:
        """Cost of the non-attention part of one transformer layer.

        Covers QKV projection, attention output projection and the two
        feed-forward GEMMs, for ``tokens`` tokens.  Under tensor parallelism
        of degree ``tp_degree`` the weight matrices are split column/row-wise
        so each GPU performs ``1/tp`` of the FLOPs (Megatron partitioning).

        Args:
            tokens: batch size x sequence length processed by this call.
            hidden_size: Model hidden dimension.
            ffn_size: Feed-forward intermediate dimension.
            tp_degree: Tensor-parallel degree (>= 1).
            has_cross_attention: Encoder-decoder models add a cross-attention
                block (its projections) to every decoder layer.
        """
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        if tokens <= 0:
            return ZERO_COST
        h = hidden_size
        f = ffn_size
        # Self-attention projections: QKV (h -> 3h) + output (h -> h).
        cost = self.gemm(tokens, h, 4 * h / tp_degree)
        if has_cross_attention:
            # Cross-attention adds its own QKV + output projections.
            cost = cost + self.gemm(tokens, h, 4 * h / tp_degree)
        # Feed-forward network: h -> f and f -> h.
        cost = cost + self.gemm(tokens, h, f / tp_degree)
        cost = cost + self.gemm(tokens, f / tp_degree, h)
        # Element-wise work (layernorm, residual, activation): bandwidth bound.
        elementwise_bytes = 8.0 * tokens * h * FP16_BYTES
        cost = cost + KernelCost(
            0.0,
            elementwise_bytes / self.gpu.memory_bandwidth_bytes_per_s,
            0.0,
        )
        # Account for the remaining launches beyond the GEMMs counted above.
        extra_launches = max(self.num_kernels_per_layer - 4, 0)
        cost = cost + KernelCost(0.0, 0.0, extra_launches * self.gpu.kernel_launch_us * 1e-6)
        return cost

    def attention_layer_cost(
        self,
        batch: float,
        query_len: float,
        self_key_len: float,
        num_heads: int,
        head_dim: int,
        tp_degree: int = 1,
        cross_key_len: float = 0.0,
    ) -> KernelCost:
        """Cost of the attention kernels of one layer.

        Tensor parallelism splits attention by heads, so each GPU computes
        ``num_heads / tp`` heads.

        Args:
            batch: Sequences in the batch.
            query_len: Query tokens per sequence.
            self_key_len: Self-attention context length.
            num_heads: Total attention heads of the model.
            head_dim: Per-head dimension.
            tp_degree: Tensor-parallel degree.
            cross_key_len: If non-zero, adds a cross-attention kernel over a
                memory of this length (encoder-decoder models).
        """
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        local_heads = max(num_heads / tp_degree, 1.0)
        cost = self.attention(batch, query_len, self_key_len, int(round(local_heads)), head_dim)
        if cross_key_len > 0:
            cost = cost + self.attention(
                batch, query_len, cross_key_len, int(round(local_heads)), head_dim
            )
        return cost

"""Interconnect models for intra-node and inter-node GPU communication.

ExeGPT's schedules exercise three kinds of communication:

* tensor-parallel all-reduce after attention / MLP blocks (Megatron style,
  two per encoder layer and three per decoder layer),
* pipeline-parallel point-to-point activation transfers between stages,
* WAA's key/value-cache handover from encoder GPUs to decoder GPUs, which
  the paper stages through CPU memory to avoid interfering with compute.

Each :class:`LinkSpec` is a simple alpha-beta model: ``latency + bytes /
bandwidth``.  The values for PCIe 4.0 x16, NVLink 3.0 and the two InfiniBand
fabrics in Table 2 are taken from their published specifications.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """Alpha-beta cost model for a communication link.

    Attributes:
        name: Link name, e.g. ``"NVLink3"``.
        bandwidth_gbps: Effective unidirectional bandwidth in GB/s.
        latency_us: Per-message latency in microseconds.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` over this link (single message)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency_us * 1e-6 + num_bytes / self.bandwidth_bytes_per_s


# Published effective bandwidths (unidirectional, per-GPU).
PCIE4_X16 = LinkSpec(name="PCIe4x16", bandwidth_gbps=25.0, latency_us=8.0)
NVLINK3 = LinkSpec(name="NVLink3", bandwidth_gbps=300.0, latency_us=3.0)
INFINIBAND_100G = LinkSpec(name="IB-100Gb", bandwidth_gbps=12.0, latency_us=12.0)
INFINIBAND_1600G = LinkSpec(name="IB-1.6Tb", bandwidth_gbps=180.0, latency_us=6.0)
PCIE_HOST = LinkSpec(name="PCIe-host", bandwidth_gbps=20.0, latency_us=10.0)

_REGISTRY: dict[str, LinkSpec] = {
    "PCIE4": PCIE4_X16,
    "PCIE4X16": PCIE4_X16,
    "NVLINK": NVLINK3,
    "NVLINK3": NVLINK3,
    "IB100": INFINIBAND_100G,
    "IB-100GB": INFINIBAND_100G,
    "IB1600": INFINIBAND_1600G,
    "IB-1.6TB": INFINIBAND_1600G,
    "HOST": PCIE_HOST,
}


def get_link(name: str) -> LinkSpec:
    """Look up a link spec by name (case-insensitive)."""
    key = name.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(set(_REGISTRY)))
        raise KeyError(f"unknown link {name!r}; known links: {known}")
    return _REGISTRY[key]


@dataclass(frozen=True)
class Topology:
    """Intra-node and inter-node links for a homogeneous cluster.

    Attributes:
        intra_node: Link connecting GPUs within one machine.
        inter_node: Link connecting GPUs on different machines.
        host: Link between GPU memory and host (CPU) memory, used for the
            staged KV-cache transfer in WAA scheduling.
    """

    intra_node: LinkSpec
    inter_node: LinkSpec
    host: LinkSpec = PCIE_HOST

    def link_between(self, same_node: bool) -> LinkSpec:
        """The link used between two GPUs, given node co-location."""
        return self.intra_node if same_node else self.inter_node


A40_TOPOLOGY = Topology(intra_node=PCIE4_X16, inter_node=INFINIBAND_100G)
A100_TOPOLOGY = Topology(intra_node=NVLINK3, inter_node=INFINIBAND_1600G)

"""Per-GPU memory accounting.

Figure 9 of the paper compares the memory consumption of FasterTransformer
and WAA scheduling, split into model weights and key/value cache, separately
for encoder and decoder GPUs.  :class:`MemoryBudget` tracks those categories
and enforces the device capacity, which is what makes WAA infeasible for the
175B/341B models (Section 7.4) and what motivates the WAA-M allocation
variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.gpu import GPUSpec

GIB = 1024 ** 3


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the GPU memory capacity."""


@dataclass
class MemoryBudget:
    """Tracks weight / KV-cache / activation memory on one GPU.

    Attributes:
        gpu: The device whose capacity bounds the budget.
        reserved_fraction: Fraction of capacity held back for the framework
            (CUDA context, workspace buffers, fragmentation head-room).
    """

    gpu: GPUSpec
    reserved_fraction: float = 0.08
    weights_bytes: float = 0.0
    kv_cache_bytes: float = 0.0
    activation_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.reserved_fraction < 1:
            raise ValueError("reserved_fraction must be in [0, 1)")

    @property
    def capacity_bytes(self) -> float:
        """Usable capacity after the framework reservation."""
        return self.gpu.memory_bytes * (1.0 - self.reserved_fraction)

    @property
    def used_bytes(self) -> float:
        """Total bytes currently allocated."""
        return self.weights_bytes + self.kv_cache_bytes + self.activation_bytes

    @property
    def free_bytes(self) -> float:
        """Bytes still available."""
        return self.capacity_bytes - self.used_bytes

    def allocate(self, category: str, num_bytes: float) -> None:
        """Allocate ``num_bytes`` in one of ``weights|kv_cache|activation``.

        Raises:
            OutOfMemoryError: if the allocation does not fit.
            ValueError: for an unknown category or negative size.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes > self.free_bytes:
            raise OutOfMemoryError(
                f"allocation of {num_bytes / GIB:.2f} GiB ({category}) exceeds free "
                f"{self.free_bytes / GIB:.2f} GiB on {self.gpu.name}"
            )
        self._adjust(category, num_bytes)

    def release(self, category: str, num_bytes: float) -> None:
        """Release previously allocated bytes from a category."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._adjust(category, -num_bytes)

    def fits(self, num_bytes: float) -> bool:
        """Whether an allocation of ``num_bytes`` would succeed."""
        return num_bytes <= self.free_bytes

    def _adjust(self, category: str, delta: float) -> None:
        if category == "weights":
            new = self.weights_bytes + delta
            if new < -1e-6:
                raise ValueError("weights_bytes would become negative")
            self.weights_bytes = max(new, 0.0)
        elif category == "kv_cache":
            new = self.kv_cache_bytes + delta
            if new < -1e-6:
                raise ValueError("kv_cache_bytes would become negative")
            self.kv_cache_bytes = max(new, 0.0)
        elif category == "activation":
            new = self.activation_bytes + delta
            if new < -1e-6:
                raise ValueError("activation_bytes would become negative")
            self.activation_bytes = max(new, 0.0)
        else:
            raise ValueError(f"unknown memory category {category!r}")

    def snapshot_gib(self) -> dict[str, float]:
        """Current usage in GiB, broken down by category."""
        return {
            "weights": self.weights_bytes / GIB,
            "kv_cache": self.kv_cache_bytes / GIB,
            "activation": self.activation_bytes / GIB,
            "free": self.free_bytes / GIB,
            "capacity": self.capacity_bytes / GIB,
        }

"""Simulated GPU hardware substrate.

This package replaces the physical A40/A100 clusters the paper used with an
analytical model: GPU device specs, interconnects, a roofline kernel cost
model, collective-communication costs, per-GPU memory accounting, and a
weight-loading cost model (Table 4).
"""

from repro.hardware.cluster import Cluster, a40_cluster, a100_cluster
from repro.hardware.collectives import CollectiveModel
from repro.hardware.gpu import A40, A100, GPUSpec, get_gpu, known_gpus, register_gpu
from repro.hardware.interconnect import (
    A40_TOPOLOGY,
    A100_TOPOLOGY,
    INFINIBAND_100G,
    INFINIBAND_1600G,
    LinkSpec,
    NVLINK3,
    PCIE4_X16,
    Topology,
    get_link,
)
from repro.hardware.kernels import FP16_BYTES, KernelCost, KernelModel, ZERO_COST
from repro.hardware.memory import GIB, MemoryBudget, OutOfMemoryError
from repro.hardware.storage import DRAM, SSD, StorageSpec, load_time_s

__all__ = [
    "A40",
    "A100",
    "A40_TOPOLOGY",
    "A100_TOPOLOGY",
    "Cluster",
    "CollectiveModel",
    "DRAM",
    "FP16_BYTES",
    "GIB",
    "GPUSpec",
    "INFINIBAND_100G",
    "INFINIBAND_1600G",
    "KernelCost",
    "KernelModel",
    "LinkSpec",
    "MemoryBudget",
    "NVLINK3",
    "OutOfMemoryError",
    "PCIE4_X16",
    "SSD",
    "StorageSpec",
    "Topology",
    "ZERO_COST",
    "a40_cluster",
    "a100_cluster",
    "get_gpu",
    "get_link",
    "known_gpus",
    "load_time_s",
    "register_gpu",
]

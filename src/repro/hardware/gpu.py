"""GPU device specifications used by the analytical hardware model.

The paper evaluates ExeGPT on two clusters (Table 2): a private A40 cluster
(48 GPUs, PCIe 4.0 intra-node, 100 Gb InfiniBand inter-node) and an Azure
A100 cluster (16 GPUs, NVLink intra-node, 1.6 Tb InfiniBand inter-node).
We reproduce those devices analytically: each :class:`GPUSpec` carries the
published peak FP16 throughput, HBM bandwidth and memory capacity, plus a
small set of empirical efficiency parameters that shape the roofline model
in :mod:`repro.hardware.kernels`.

The scheduler never sees a GPU directly -- it only consumes per-layer
execution times -- so the fidelity requirement on this module is that the
*relative* behaviour (compute-bound prefill, bandwidth-bound decode,
efficiency dropping at small batch sizes) matches real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a single GPU device.

    Attributes:
        name: Human readable device name, e.g. ``"A100-80GB"``.
        peak_fp16_tflops: Peak dense FP16 tensor-core throughput in TFLOP/s.
        memory_gb: HBM capacity in GiB available to the inference engine.
        memory_bandwidth_gbps: HBM bandwidth in GB/s.
        kernel_launch_us: Fixed per-kernel launch overhead in microseconds.
            This is what makes tiny decode batches inefficient.
        max_efficiency: Fraction of peak FLOPs achievable by large GEMMs.
        half_efficiency_tokens: Number of tokens in a GEMM at which the
            achieved efficiency reaches half of ``max_efficiency``.  Encodes
            the ramp of tensor-core utilisation with problem size.
        sm_count: Number of streaming multiprocessors (used to model wave
            quantisation for very small workloads).
    """

    name: str
    peak_fp16_tflops: float
    memory_gb: float
    memory_bandwidth_gbps: float
    kernel_launch_us: float = 6.0
    max_efficiency: float = 0.62
    half_efficiency_tokens: float = 192.0
    sm_count: int = 108

    def __post_init__(self) -> None:
        if self.peak_fp16_tflops <= 0:
            raise ValueError("peak_fp16_tflops must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.memory_bandwidth_gbps <= 0:
            raise ValueError("memory_bandwidth_gbps must be positive")
        if not 0 < self.max_efficiency <= 1:
            raise ValueError("max_efficiency must be in (0, 1]")

    @property
    def peak_flops(self) -> float:
        """Peak FP16 throughput in FLOP/s."""
        return self.peak_fp16_tflops * 1e12

    @property
    def memory_bytes(self) -> float:
        """HBM capacity in bytes."""
        return self.memory_gb * (1024 ** 3)

    @property
    def memory_bandwidth_bytes_per_s(self) -> float:
        """HBM bandwidth in bytes per second."""
        return self.memory_bandwidth_gbps * 1e9

    def efficiency(self, tokens: float) -> float:
        """Achieved fraction of peak FLOPs for a GEMM over ``tokens`` rows.

        A saturating curve ``max_eff * t / (t + t_half)`` which matches the
        qualitative behaviour of tensor-core GEMMs: throughput grows roughly
        linearly with the number of rows until the device saturates.
        """
        if tokens <= 0:
            return 0.0
        return self.max_efficiency * tokens / (tokens + self.half_efficiency_tokens)


# --- Device registry -------------------------------------------------------

A40 = GPUSpec(
    name="A40-48GB",
    peak_fp16_tflops=149.7,
    memory_gb=48.0,
    memory_bandwidth_gbps=696.0,
    kernel_launch_us=7.0,
    max_efficiency=0.58,
    half_efficiency_tokens=224.0,
    sm_count=84,
)

A100 = GPUSpec(
    name="A100-80GB",
    peak_fp16_tflops=312.0,
    memory_gb=80.0,
    memory_bandwidth_gbps=2039.0,
    kernel_launch_us=5.0,
    max_efficiency=0.65,
    half_efficiency_tokens=192.0,
    sm_count=108,
)

_REGISTRY: dict[str, GPUSpec] = {
    "A40": A40,
    "A40-48GB": A40,
    "A100": A100,
    "A100-80GB": A100,
}


def register_gpu(key: str, spec: GPUSpec) -> None:
    """Add a custom GPU to the registry (e.g. for ablations)."""
    _REGISTRY[key.upper()] = spec


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive).

    Raises:
        KeyError: if the device is unknown.
    """
    key = name.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(set(_REGISTRY)))
        raise KeyError(f"unknown GPU {name!r}; known devices: {known}")
    return _REGISTRY[key]


def known_gpus() -> list[str]:
    """Names of all registered GPU devices."""
    return sorted({spec.name for spec in _REGISTRY.values()})

"""Model-loading (deployment / re-deployment) cost model.

Table 4 of the paper reports the time to load LLM weights onto the GPUs
either from SSD (initial deployment) or from CPU DRAM (re-deployment after a
schedule change).  Loading happens in parallel across GPUs, so the per-GPU
shard size divided by the effective per-GPU ingest bandwidth -- plus a fixed
per-model setup overhead -- reproduces the published trend (0.9-3.5 s from
DRAM, 2.1-15.1 s from SSD for 39B-341B models).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageSpec:
    """Bandwidth of a weight source as observed by one GPU.

    Attributes:
        name: Source name (``"SSD"`` or ``"DRAM"``).
        per_gpu_bandwidth_gbps: Effective bandwidth into a single GPU, in
            GB/s, accounting for contention when all GPUs of a node load
            concurrently.
        setup_s: Fixed per-deployment overhead (process launch, NCCL init,
            memory registration).
    """

    name: str
    per_gpu_bandwidth_gbps: float
    setup_s: float

    def __post_init__(self) -> None:
        if self.per_gpu_bandwidth_gbps <= 0:
            raise ValueError("per_gpu_bandwidth_gbps must be positive")
        if self.setup_s < 0:
            raise ValueError("setup_s must be non-negative")


# Effective per-GPU ingest rates with 8 GPUs per node sharing the source.
SSD = StorageSpec(name="SSD", per_gpu_bandwidth_gbps=1.0, setup_s=1.0)
DRAM = StorageSpec(name="DRAM", per_gpu_bandwidth_gbps=4.5, setup_s=0.6)


def load_time_s(
    model_bytes: float,
    num_gpus: int,
    source: StorageSpec,
    replication_factor: float = 1.0,
) -> float:
    """Seconds to deploy a model's weights across ``num_gpus`` GPUs.

    Args:
        model_bytes: Total size of the model weights.
        num_gpus: Number of GPUs loading in parallel; each receives an equal
            shard of ``model_bytes * replication_factor``.
        source: Where the weights are read from (:data:`SSD` or :data:`DRAM`).
        replication_factor: >1 when weights are replicated, e.g. WAA on a
            decoder-only model stores the decoder weights on both encoder and
            decoder GPUs.
    """
    if model_bytes < 0:
        raise ValueError("model_bytes must be non-negative")
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if replication_factor < 1.0:
        raise ValueError("replication_factor must be >= 1")
    shard = model_bytes * replication_factor / num_gpus
    return source.setup_s + shard / (source.per_gpu_bandwidth_gbps * 1e9)

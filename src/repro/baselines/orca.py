"""ORCA baseline: iteration-level scheduling with continuous batching.

ORCA keeps a running batch of at most ``max_batch`` requests.  At every
decoding iteration, completed requests leave the batch (early termination)
and new requests join it; the prefill of a joining request is executed in
the *same* iteration as the other requests' decode steps, which keeps the
batch full but makes that iteration much longer -- the pipeline-bubble and
latency-variability problem the paper highlights (Figure 1, Section 2).

The paper evaluates ORCA through vLLM's iteration-level mode (at most one
prefill per iteration); this class follows the same policy but with the
contiguous, reservation-based KV cache of the original ORCA design.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.baselines.base import BaselineSystem
from repro.engine.execution import TaskRef
from repro.engine.kv_manager import ContiguousKVCache, KVCacheError
from repro.engine.metrics import RunResult, collect_result
from repro.engine.request import RequestState
from repro.engine.timeline import Timeline
from repro.workloads.trace import WorkloadTrace


@dataclass
class Orca(BaselineSystem):
    """Iteration-level scheduling with a reservation-based KV cache."""

    iteration_overhead_s: float = 0.001
    name: str = "orca"
    max_prefills_per_iteration: int = 1

    # -- parameter selection ----------------------------------------------------------

    def worst_case_latency(self, batch_size: int) -> float:
        """Latency of a 99th-percentile-length request at full batch.

        Iteration-level schedulers early-terminate, so the bound applies to
        the 99th-percentile output length; every iteration may additionally
        carry one prefill of an average-length input, which is what inflates
        ORCA's per-token latency.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stages = self.placement.stages
        target = float(self.output_distribution.percentile(99))
        avg_in = self.input_distribution.mean
        context = avg_in + self.output_distribution.mean / 2.0 if self.decoder_only else (
            self.output_distribution.mean / 2.0
        )
        decodes = self.decode_times(stages, batch_size, context)
        prefills = self.encode_times(stages, 1.0, avg_in)
        per_iter = 0.0
        for decode, prefill in zip(decodes, prefills):
            per_iter += decode + prefill
        admission_wait = per_iter * self.input_distribution.mean / max(avg_in, 1.0)
        return admission_wait + target * per_iter

    # -- KV management -------------------------------------------------------------------

    def _make_kv_cache(self) -> ContiguousKVCache:
        return ContiguousKVCache(
            model=self.model,
            num_layers=self.model.num_decoder_layers,
            capacity_bytes=self.kv_capacity(),
        )

    def _reserve(self, cache: ContiguousKVCache, request: RequestState) -> bool:
        max_tokens = request.input_len + self.output_distribution.max_len
        try:
            cache.reserve(request.request_id, max_tokens)
        except KVCacheError:
            return False
        return True

    # -- execution ----------------------------------------------------------------------

    def run(self, trace: WorkloadTrace, batch_size: int) -> RunResult:
        """Replay the trace with iteration-level continuous batching.

        Every iteration is an :meth:`ExecutionEngine.mixed_iteration` (pool
        decodes plus the admitted prefills) collected into one whole-replay
        plan -- admission depends only on request/KV state, never on task
        times -- so all stage durations resolve in a handful of batched
        profile lookups at commit time.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stages = self.placement.stages
        timeline = Timeline()
        engine = self.make_engine(timeline)
        plan = engine.plan()
        states = self._make_states(trace)
        pending: deque[RequestState] = deque(states)
        pool: list[RequestState] = []
        cache = self._make_kv_cache()
        prev_iteration_last: TaskRef | None = None
        iterations = 0

        while pending or pool:
            # --- admission: up to `max_prefills_per_iteration` new requests -------
            admitted: list[RequestState] = []
            while (
                pending
                and len(pool) + len(admitted) < batch_size
                and len(admitted) < self.max_prefills_per_iteration
            ):
                candidate = pending[0]
                if not self._admit(cache, candidate):
                    break
                pending.popleft()
                admitted.append(candidate)

            if not pool and not admitted:
                if not pending:
                    break
                raise RuntimeError(
                    "ORCA cannot admit any request: KV cache too small for one query"
                )

            # --- one iteration: decodes of the pool + prefills of the admitted -----
            alive = [r for r in pool if not r.done]
            outcome = engine.mixed_iteration(
                plan, stages, alive, admitted, prev_last=prev_iteration_last
            )
            prev_iteration_last = outcome.last

            pool.extend(admitted)
            for request in outcome.completed:
                self._release(cache, request)
            pool = [r for r in pool if not r.done]
            iterations += 1
            if iterations > 500000:
                raise RuntimeError("ORCA runner did not converge")

        engine.commit(plan)
        engine.bookkeeping.resolve(timeline)
        return collect_result(
            system=self.name,
            requests=states,
            makespan_s=timeline.makespan_s,
            stage_utilization=timeline.stage_utilization(),
            stage_times=engine.stage_times,
            extra={
                "batch_size": float(batch_size),
                "iterations": float(iterations),
                "peak_kv_gib": cache.peak_bytes / (1024 ** 3),
            },
        )

    # -- hooks overridden by the vLLM subclass ---------------------------------------

    def _admit(self, cache, request: RequestState) -> bool:
        return self._reserve(cache, request)

    def _release(self, cache, request: RequestState) -> None:
        cache.release(request.request_id)

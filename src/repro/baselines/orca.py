"""ORCA baseline: iteration-level scheduling with continuous batching.

ORCA keeps a running batch of at most ``max_batch`` requests.  At every
decoding iteration, completed requests leave the batch (early termination)
and new requests join it; the prefill of a joining request is executed in
the *same* iteration as the other requests' decode steps, which keeps the
batch full but makes that iteration much longer -- the pipeline-bubble and
latency-variability problem the paper highlights (Figure 1, Section 2).

The paper evaluates ORCA through vLLM's iteration-level mode (at most one
prefill per iteration); this class follows the same policy but with the
contiguous, reservation-based KV cache of the original ORCA design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineSystem
from repro.engine.execution import TaskRef
from repro.engine.kv_manager import ContiguousKVCache, KVCacheError
from repro.engine.metrics import RunResult, collect_pool_result
from repro.engine.pool import EMPTY_IDS
from repro.engine.timeline import Timeline
from repro.workloads.trace import WorkloadTrace


@dataclass
class Orca(BaselineSystem):
    """Iteration-level scheduling with a reservation-based KV cache."""

    iteration_overhead_s: float = 0.001
    name: str = "orca"
    max_prefills_per_iteration: int = 1

    # -- parameter selection ----------------------------------------------------------

    def worst_case_latency(self, batch_size: int) -> float:
        """Latency of a 99th-percentile-length request at full batch.

        Iteration-level schedulers early-terminate, so the bound applies to
        the 99th-percentile output length; every iteration may additionally
        carry one prefill of an average-length input, which is what inflates
        ORCA's per-token latency.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stages = self.placement.stages
        target = float(self.output_distribution.percentile(99))
        avg_in = self.input_distribution.mean
        context = avg_in + self.output_distribution.mean / 2.0 if self.decoder_only else (
            self.output_distribution.mean / 2.0
        )
        decodes = self.decode_times(stages, batch_size, context)
        prefills = self.encode_times(stages, 1.0, avg_in)
        per_iter = 0.0
        for decode, prefill in zip(decodes, prefills):
            per_iter += decode + prefill
        admission_wait = per_iter * self.input_distribution.mean / max(avg_in, 1.0)
        return admission_wait + target * per_iter

    # -- KV management -------------------------------------------------------------------

    def _make_kv_cache(self) -> ContiguousKVCache:
        return ContiguousKVCache(
            model=self.model,
            num_layers=self.model.num_decoder_layers,
            capacity_bytes=self.kv_capacity(),
        )

    def _reserve(self, cache: ContiguousKVCache, pool, rid: int) -> bool:
        max_tokens = pool.input_len_of(rid) + self.output_distribution.max_len
        try:
            cache.reserve(pool.request_id_of(rid), max_tokens)
        except KVCacheError:
            return False
        return True

    # -- execution ----------------------------------------------------------------------

    def run(
        self, trace: WorkloadTrace, batch_size: int, columnar: bool = True
    ) -> RunResult:
        """Replay the trace with iteration-level continuous batching.

        Every iteration is an :meth:`ExecutionEngine.mixed_iteration` (pool
        decodes plus the admitted prefills) collected into one whole-replay
        plan -- admission depends only on request/KV state, never on task
        times -- so all stage durations resolve in a handful of batched
        profile lookups at commit time.  The running batch is an id array
        over the columnar request pool, compacted through the done mask
        once per iteration.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stages = self.placement.stages
        timeline = Timeline()
        pool = self._make_pool(trace, columnar)
        engine = self.make_engine(timeline, pool)
        plan = engine.plan()
        all_ids = pool.ids()
        total = all_ids.size
        pos = 0  # pending requests are all_ids[pos:], in trace order
        active = EMPTY_IDS
        cache = self._make_kv_cache()
        prev_iteration_last: TaskRef | None = None
        iterations = 0

        while pos < total or active.size:
            # --- admission: up to `max_prefills_per_iteration` new requests -------
            admitted: list[int] = []
            while (
                pos < total
                and active.size + len(admitted) < batch_size
                and len(admitted) < self.max_prefills_per_iteration
            ):
                candidate = int(all_ids[pos])
                if not self._admit(cache, pool, candidate):
                    break
                pos += 1
                admitted.append(candidate)

            if not active.size and not admitted:
                if pos >= total:
                    break
                raise RuntimeError(
                    "ORCA cannot admit any request: KV cache too small for one query"
                )

            # --- one iteration: decodes of the pool + prefills of the admitted -----
            admitted_ids = np.asarray(admitted, dtype=np.int64)
            outcome = engine.mixed_iteration(
                plan, stages, active, admitted_ids, prev_last=prev_iteration_last
            )
            prev_iteration_last = outcome.last

            self._release_batch(cache, pool, outcome.completed)
            active = pool.compact(np.concatenate([active, admitted_ids]))
            iterations += 1
            if iterations > 500000:
                raise RuntimeError("ORCA runner did not converge")

        engine.commit(plan)
        engine.bookkeeping.resolve(timeline)
        return collect_pool_result(
            system=self.name,
            pool=pool,
            ids=all_ids,
            makespan_s=timeline.makespan_s,
            stage_utilization=timeline.stage_utilization(),
            stage_times=engine.stage_times,
            extra={
                "batch_size": float(batch_size),
                "iterations": float(iterations),
                "peak_kv_gib": cache.peak_bytes / (1024 ** 3),
            },
        )

    # -- hooks overridden by the vLLM subclass ---------------------------------------

    def _admit(self, cache, pool, rid: int) -> bool:
        return self._reserve(cache, pool, rid)

    def _release(self, cache, pool, rid: int) -> None:
        cache.release(pool.request_id_of(rid))

    def _release_batch(self, cache, pool, ids: np.ndarray) -> None:
        """Free the KV state of every id in one batched epilogue call.

        One trace-id gather plus one ``release_many`` replaces the historical
        per-id ``_release`` loop; both cache flavours pop from a dict keyed
        by trace id, so the batch form covers ORCA and vLLM alike.
        """
        if ids.size:
            cache.release_many(pool.request_ids_of(ids).tolist())

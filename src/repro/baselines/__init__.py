"""Baseline LLM inference systems re-implemented as scheduling policies."""

from repro.baselines.base import BaselineSystem, kv_capacity_bytes, tp_maximized_placement
from repro.baselines.deepspeed import DeepSpeedInference
from repro.baselines.faster_transformer import FasterTransformer
from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm

__all__ = [
    "BaselineSystem",
    "DeepSpeedInference",
    "FasterTransformer",
    "Orca",
    "Vllm",
    "kv_capacity_bytes",
    "tp_maximized_placement",
]

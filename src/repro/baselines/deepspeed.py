"""DeepSpeed-Inference baseline.

DSI applies low-level kernel optimisations and hybrid scheduling with more
micro-batches for encoding (to shrink pipeline bubbles) and fewer for
decoding (to keep per-kernel batches large).  Its scheduling semantics are
otherwise FT-like: fixed decode batches without early termination.  Its
Python/engine overhead is slightly higher than FT's CUDA-native pipeline,
which reproduces the Figure 7 ordering (FT > DSI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.faster_transformer import FasterTransformer


@dataclass
class DeepSpeedInference(FasterTransformer):
    """DeepSpeed-Inference: FT-style execution with hybrid micro-batching."""

    iteration_overhead_s: float = 0.0005
    name: str = "dsi"

    def __post_init__(self) -> None:
        stages = None
        super().__post_init__()
        stages = len(self.placement.stages)
        # DSI's hybrid schedule: aggressive encode micro-batching, minimal
        # decode micro-batching.
        self.encode_micro_batches = max(4 * stages, 4)
        self.decode_micro_batches = max(stages, 1)

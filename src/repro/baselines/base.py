"""Shared machinery for the baseline inference systems.

The paper compares ExeGPT against FasterTransformer, DeepSpeed-Inference,
ORCA and vLLM, all run with the parallel configuration their authors used:
tensor parallelism maximised within a node and pipeline parallelism across
nodes.  Each baseline here is a scheduling-policy driver over the same
profiled stage times and the same discrete-event timeline as XRunner, so the
comparison isolates the scheduling policy -- exactly the variable the paper
studies.

Every baseline exposes:

* :meth:`BaselineSystem.run` -- replay a trace with a given batch size,
* :meth:`BaselineSystem.worst_case_latency` -- the latency of the workload's
  worst-case sequence for a batch size (used to pick parameters), and
* :meth:`BaselineSystem.configure_for_bound` -- the paper's procedure of
  choosing the largest batch size (in multiples of four) whose worst case
  satisfies the latency bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocation import Placement, StagePlan, stage_weight_bytes
from repro.core.config import SchedulePolicy
from repro.core.distributions import SequenceDistribution
from repro.core.profiler import ProfileTable
from repro.engine.execution import (
    ExecutionEngine,
    decode_chain_times,
    encode_chain_times,
)
from repro.engine.metrics import RunResult
from repro.engine.pool import make_pool
from repro.engine.timeline import Timeline
from repro.hardware.cluster import Cluster
from repro.models.spec import ModelSpec
from repro.workloads.trace import WorkloadTrace

GIB = 1024 ** 3
_RESERVED_FRACTION = 0.08


def tp_maximized_placement(model: ModelSpec, cluster: Cluster) -> Placement:
    """The baselines' parallel layout: TP within a node, PP across nodes.

    Every pipeline stage is one node-wide tensor-parallel group hosting an
    equal share of the layers; encoding and decoding run on the same stages
    (no decoupling).
    """
    tp_degree = min(cluster.gpus_per_node, cluster.num_gpus, model.num_heads)
    num_stages = max(cluster.num_gpus // tp_degree, 1)
    enc_per_stage = _split(model.num_encoder_layers, num_stages)
    dec_per_stage = _split(model.num_decoder_layers, num_stages)
    stages = []
    for i in range(num_stages):
        gpus = tuple(range(i * tp_degree, (i + 1) * tp_degree))
        stages.append(
            StagePlan(
                stage_id=i,
                gpu_indices=gpus,
                encoder_layers=enc_per_stage[i],
                decoder_layers=dec_per_stage[i],
                role="both",
            )
        )
    return Placement(
        policy=SchedulePolicy.RRA,
        stages=tuple(stages),
        cluster=cluster,
        model=model,
        weight_replication=1.0,
    )


def _split(total: int, parts: int) -> list[int]:
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def kv_capacity_bytes(placement: Placement) -> float:
    """Total bytes available for KV cache across the placement's GPUs."""
    model = placement.model
    total = 0.0
    for stage in placement.stages:
        per_gpu_capacity = placement.cluster.gpu.memory_bytes * (1 - _RESERVED_FRACTION)
        weights = stage_weight_bytes(model, stage) + (
            model.embedding_parameters * model.dtype_bytes / len(placement.stages)
        )
        free = per_gpu_capacity * stage.tp_degree - weights
        total += max(free, 0.0)
    return total


@dataclass
class BaselineSystem:
    """Base class of the baseline inference systems.

    Attributes:
        profile: Profiled per-layer times of the model on the cluster.
        input_distribution / output_distribution: Workload length
            distributions (used for worst-case parameter selection).
        iteration_overhead_s: Fixed per-iteration engine overhead added to
            every stage execution -- zero for the CUDA-native FT engine,
            larger for Python-based executors, which is the effect the paper
            credits for FT outperforming vLLM (Section 7.2).
        name: System name used in results.
    """

    profile: ProfileTable
    input_distribution: SequenceDistribution
    output_distribution: SequenceDistribution
    iteration_overhead_s: float = 0.0
    name: str = "baseline"

    def __post_init__(self) -> None:
        self.model = self.profile.model
        self.cluster = self.profile.cluster
        self.placement = tp_maximized_placement(self.model, self.cluster)
        self.decoder_only = not self.model.is_encoder_decoder

    # -- stage-time helpers ------------------------------------------------------

    def encode_times(
        self, stages: tuple[StagePlan, ...], batch: float, input_len: float
    ) -> list[float]:
        """Encode time of each stage (one batched lookup), with overhead."""
        return encode_chain_times(
            self.profile, self.placement, stages, batch, input_len,
            overhead_s=self.iteration_overhead_s,
        )

    def decode_times(
        self, stages: tuple[StagePlan, ...], batch: float, context: float
    ) -> list[float]:
        """Decode-step time of each stage (one batched lookup), with overhead."""
        return decode_chain_times(
            self.profile, self.placement, stages, batch, context,
            overhead_s=self.iteration_overhead_s,
        )

    def make_engine(
        self,
        timeline: Timeline,
        pool,
        batched_pricing: bool = True,
        pricing_cache: bool = True,
        small_plan_items: int | None = None,
    ) -> ExecutionEngine:
        """The shared iteration-graph engine, carrying this system's overhead."""
        return ExecutionEngine(
            timeline,
            self.profile,
            self.placement,
            pool,
            decoder_only=self.decoder_only,
            overhead_s=self.iteration_overhead_s,
            batched_pricing=batched_pricing,
            pricing_cache=pricing_cache,
            small_plan_items=small_plan_items,
        )

    # -- parameter selection --------------------------------------------------------

    def worst_case_latency(self, batch_size: int) -> float:
        """Latency of the worst-case sequence for ``batch_size``.

        Subclasses override this to match their latency-bound semantics: FT
        and DSI apply the bound to generating a maximum-length output (no
        early termination), ORCA/vLLM to the 99th-percentile length.
        """
        raise NotImplementedError

    def configure_for_bound(
        self, bound_s: float, max_batch: int = 256, step: int = 4
    ) -> int:
        """Largest batch size (multiple of ``step``) meeting ``bound_s``.

        The batch is additionally capped by the GPU memory available for KV
        cache (every baseline must hold the cache of a full batch).  Returns
        at least 1; when even a single-request batch misses the bound, the
        system simply cannot satisfy it and runs at batch 1.
        """
        if bound_s <= 0:
            raise ValueError("bound_s must be positive")
        limit = min(max_batch, self.memory_limited_batch())
        best = 1
        batch = step
        while batch <= limit:
            if self.worst_case_latency(batch) <= bound_s:
                best = batch
            batch += step
        if best == 1 and self.worst_case_latency(1) > bound_s:
            return 1
        return best

    # -- memory --------------------------------------------------------------------

    def kv_capacity(self) -> float:
        """Bytes available for KV cache across the deployment."""
        return kv_capacity_bytes(self.placement)

    def reserved_tokens_per_request(self) -> int:
        """KV tokens the system sets aside for one request.

        Reservation-based systems (FT, DSI, ORCA) must provision for the
        worst case -- maximum input plus maximum output length.  Paged
        systems override this with the expected usage.
        """
        return self.input_distribution.max_len + self.output_distribution.max_len

    def memory_limited_batch(self) -> int:
        """Largest batch whose KV cache fits in the deployment's free memory."""
        per_request = (
            self.reserved_tokens_per_request()
            * self.model.num_decoder_layers
            * self.model.kv_bytes_per_token_per_layer()
        )
        if per_request <= 0:
            return 2 ** 30
        return max(int(self.kv_capacity() // per_request), 1)

    # -- execution -------------------------------------------------------------------

    def run(
        self, trace: WorkloadTrace, batch_size: int, columnar: bool = True
    ) -> RunResult:
        """Replay ``trace`` with the system's scheduling policy.

        ``columnar=False`` swaps the request pool for the per-object list
        reference backend (perf harness / parity tests).
        """
        raise NotImplementedError

    @staticmethod
    def _make_pool(trace: WorkloadTrace, columnar: bool = True):
        """Columnar request pool of the trace (list backend on request)."""
        return make_pool(trace, columnar)

"""vLLM baseline: iteration-level scheduling plus PagedAttention.

vLLM's iteration-level mode behaves like ORCA (one prefill mixed into each
decoding iteration, early termination of completed queries) but manages the
KV cache in fixed-size blocks, so no memory is wasted on reservations and
larger running batches fit.  Its executor overhead is the highest of the
compared systems -- the paper attributes FT's win over vLLM to exactly that
Python-side overhead (Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.orca import Orca
from repro.engine.kv_manager import KVCacheError, PagedKVCache


@dataclass
class Vllm(Orca):
    """vLLM: ORCA-style scheduling with a paged KV cache."""

    iteration_overhead_s: float = 0.0015
    name: str = "vllm"
    block_tokens: int = 16

    def reserved_tokens_per_request(self) -> int:
        """Paged allocation only consumes the tokens actually generated."""
        expected = self.input_distribution.mean + self.output_distribution.mean
        rounded = self.block_tokens * (int(expected) // self.block_tokens + 1)
        return max(rounded, self.block_tokens)

    def _make_kv_cache(self) -> PagedKVCache:
        return PagedKVCache(
            model=self.model,
            num_layers=self.model.num_decoder_layers,
            capacity_bytes=self.kv_capacity(),
            block_tokens=self.block_tokens,
        )

    def _admit(self, cache: PagedKVCache, pool, rid: int) -> bool:
        try:
            cache.ensure(pool.request_id_of(rid), pool.input_len_of(rid) + 1)
        except KVCacheError:
            return False
        return True

    def _release(self, cache: PagedKVCache, pool, rid: int) -> None:
        cache.release(pool.request_id_of(rid))

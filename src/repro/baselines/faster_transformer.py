"""FasterTransformer baseline (static batching, no early termination).

FT processes requests in fixed-size batches: the whole batch is encoded,
then decoded until the *longest* request in the batch finishes, keeping the
full batch size in every decoding iteration.  Completed queries keep
consuming compute (the white boxes of Figure 1), which is the "diminishing
decoding batch" inefficiency ExeGPT removes.  FT also adopts DSI's hybrid
micro-batching: more micro-batches for encoding than for decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineSystem
from repro.engine.batching import split_ids
from repro.engine.metrics import RunResult, collect_pool_result
from repro.engine.timeline import Timeline
from repro.workloads.trace import WorkloadTrace


@dataclass
class FasterTransformer(BaselineSystem):
    """NVIDIA FasterTransformer's scheduling policy on the shared engine.

    Attributes:
        encode_micro_batches: Micro-batches used for the encoding phase.
        decode_micro_batches: Micro-batches used for decoding iterations.
    """

    encode_micro_batches: int = 0
    decode_micro_batches: int = 0
    name: str = "ft"

    def __post_init__(self) -> None:
        super().__post_init__()
        stages = len(self.placement.stages)
        if self.encode_micro_batches <= 0:
            self.encode_micro_batches = max(2 * stages, 1)
        if self.decode_micro_batches <= 0:
            self.decode_micro_batches = max(stages, 1)

    # -- parameter selection ---------------------------------------------------------

    def worst_case_latency(self, batch_size: int) -> float:
        """Latency of a batch whose slowest request hits the maximum lengths.

        FT applies the latency bound to generating a *maximum-length* output
        because it cannot early-terminate (Section 7.1).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stages = self.placement.stages
        max_in = float(self.input_distribution.max_len)
        max_out = float(self.output_distribution.max_len)
        enc_micro = min(self.encode_micro_batches, batch_size)
        enc_times = self.encode_times(stages, batch_size / enc_micro, max_in)
        encode = sum(enc_times) + (enc_micro - 1) * max(enc_times)
        dec_micro = min(self.decode_micro_batches, batch_size)
        context = max_in + max_out / 2.0 if self.decoder_only else max_out / 2.0
        dec_times = self.decode_times(stages, batch_size / dec_micro, context)
        per_iter = max(dec_micro * max(dec_times), sum(dec_times))
        return encode + max_out * per_iter

    # -- execution ----------------------------------------------------------------------

    def run(
        self, trace: WorkloadTrace, batch_size: int, columnar: bool = True
    ) -> RunResult:
        """Replay the trace in consecutive fixed-size batches.

        The whole replay (hybrid-micro-batched encode phases plus the
        fixed-batch decode iterations of every batch, no early termination)
        is one plan, so all stage durations resolve through a handful of
        batched profile lookups at commit time.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stages = self.placement.stages
        timeline = Timeline()
        pool = self._make_pool(trace, columnar)
        engine = self.make_engine(timeline, pool)
        plan = engine.plan()
        all_ids = pool.ids()

        for batch_start in range(0, all_ids.size, batch_size):
            batch = all_ids[batch_start : batch_start + batch_size]
            # --- encoding: hybrid micro-batching ---------------------------------
            enc_groups = split_ids(
                batch, min(self.encode_micro_batches, batch.size)
            )
            encode_last_tasks = engine.encode_phase(plan, stages, enc_groups)

            # --- decoding: fixed batch until the longest request finishes --------------
            dec_groups = split_ids(
                batch, min(self.decode_micro_batches, batch.size)
            )
            max_out = pool.max_output_len(batch)
            prev_iter_last: dict[int, object] = {}
            for iteration in range(max_out):
                # No early termination: the full group is computed even
                # after some of its requests finished.
                engine.decode_iteration(
                    plan,
                    stages,
                    dec_groups,
                    first_deps=encode_last_tasks if iteration == 0 else [],
                    prev_last=prev_iter_last,
                    early_termination=False,
                )

        engine.commit(plan)
        engine.bookkeeping.resolve(timeline)
        return collect_pool_result(
            system=self.name,
            pool=pool,
            ids=all_ids,
            makespan_s=timeline.makespan_s,
            stage_utilization=timeline.stage_utilization(),
            stage_times=engine.stage_times,
            extra={"batch_size": float(batch_size)},
        )

"""Table 5: monotonicity of the control variables.

The scheduling algorithm assumes throughput and latency are monotonic in
each control variable.  Table 5 quantifies how often that fails: for GPT-3
39B and tasks S/T, each variable is swept with the others fixed, for all
combinations of the other variables, and the percentage of non-monotonic
points is reported at 2/5/10% tolerance (the paper finds ~97% of points
monotonic at 5%).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.config import ScheduleConfig, SchedulePolicy, TensorParallelConfig
from repro.core.simulator import XSimulator
from repro.experiments.common import Scenario, format_table


@dataclass(frozen=True)
class MonotonicityRow:
    """Non-monotonic point percentages for one (task, tolerance, variable).

    Attributes:
        task: Task id.
        tolerance_pct: Tolerance as a percentage of the reference values.
        policy: Scheduling policy of the swept variable.
        variable: Control-variable name.
        latency_violation_pct: % of swept points violating latency
            monotonicity beyond the tolerance.
        throughput_violation_pct: Same for throughput.
    """

    task: str
    tolerance_pct: float
    policy: str
    variable: str
    latency_violation_pct: float
    throughput_violation_pct: float


def _violations(values: list[float], increasing: bool, tolerance: float) -> int:
    """Count adjacent pairs that move against the expected direction."""
    count = 0
    for prev, cur in zip(values, values[1:]):
        if not np.isfinite(prev) or not np.isfinite(cur):
            continue
        delta = cur - prev if increasing else prev - cur
        if delta < -tolerance:
            count += 1
    return count


def _sweep(
    simulator: XSimulator,
    configs: list[ScheduleConfig],
    tolerance_fraction: float,
) -> tuple[int, int, int]:
    """Evaluate a sweep; returns (points, latency violations, tput violations)."""
    latencies: list[float] = []
    throughputs: list[float] = []
    for config in configs:
        try:
            estimate = simulator.estimate(config)
        except (ValueError, KeyError):
            latencies.append(float("nan"))
            throughputs.append(float("nan"))
            continue
        if not estimate.feasible:
            latencies.append(float("nan"))
            throughputs.append(float("nan"))
            continue
        latencies.append(estimate.latency_s)
        throughputs.append(estimate.throughput_seq_per_s)
    finite_lat = [v for v in latencies if np.isfinite(v)]
    finite_tput = [v for v in throughputs if np.isfinite(v)]
    if len(finite_lat) < 2:
        return 0, 0, 0
    lat_tol = tolerance_fraction * float(np.mean(finite_lat))
    tput_tol = tolerance_fraction * float(np.mean(finite_tput))
    lat_viol = _violations(latencies, increasing=True, tolerance=lat_tol)
    tput_viol = _violations(throughputs, increasing=True, tolerance=tput_tol)
    return len(finite_lat) - 1, lat_viol, tput_viol


def _rra_sweeps(variable: str, max_encode_batch: int) -> list[list[ScheduleConfig]]:
    encode_batches = [4, 8, 16, 32, min(64, max_encode_batch)]
    decode_iterations = [32, 16, 8, 4, 2, 1]  # increasing encode frequency
    sweeps: list[list[ScheduleConfig]] = []
    if variable == "B_E":
        for n_d in (2, 8, 32):
            sweeps.append(
                [
                    ScheduleConfig(SchedulePolicy.RRA, b, decode_iterations=n_d)
                    for b in encode_batches
                ]
            )
    elif variable == "N_D":
        for b in (8, 32):
            sweeps.append(
                [
                    ScheduleConfig(SchedulePolicy.RRA, b, decode_iterations=n_d)
                    for n_d in decode_iterations
                ]
            )
    else:
        raise ValueError(f"unknown RRA variable {variable!r}")
    return sweeps


def _waa_sweeps(
    variable: str, max_encode_batch: int, num_gpus: int
) -> list[list[ScheduleConfig]]:
    encode_batches = [1, 2, 4, 8, min(16, max_encode_batch)]
    micro_batches = [4, 3, 2, 1]  # fewer micro-batches -> higher throughput
    tp_gpu_counts = [
        n for n in range(num_gpus, 0, -2) if n % 2 == 0
    ] or [2]
    sweeps: list[list[ScheduleConfig]] = []
    if variable == "B_E":
        for m in (1, 2):
            sweeps.append(
                [
                    ScheduleConfig(SchedulePolicy.WAA_C, b, micro_batches=m)
                    for b in encode_batches
                ]
            )
    elif variable == "B_m":
        for b in (2, 8):
            sweeps.append(
                [
                    ScheduleConfig(SchedulePolicy.WAA_C, b, micro_batches=m)
                    for m in micro_batches
                ]
            )
    elif variable == "TP":
        # More TP-covered GPUs -> shallower pipeline -> lower latency; the
        # expected direction for throughput is downward, so sweep from many
        # TP GPUs to few (throughput should increase along the sweep).
        for b in (2, 8):
            sweeps.append(
                [
                    ScheduleConfig(
                        SchedulePolicy.WAA_C,
                        b,
                        micro_batches=1,
                        tensor_parallel=TensorParallelConfig(degree=2, num_gpus=n),
                    )
                    for n in tp_gpu_counts
                ]
            )
    else:
        raise ValueError(f"unknown WAA variable {variable!r}")
    return sweeps


def run_table5(
    model_name: str = "GPT3-39B",
    tasks: tuple[str, ...] = ("S", "T"),
    tolerances_pct: tuple[float, ...] = (2.0, 5.0, 10.0),
    num_gpus: int | None = None,
) -> list[MonotonicityRow]:
    """Regenerate Table 5 (percentage of non-monotonic points)."""
    rows: list[MonotonicityRow] = []
    for task_id in tasks:
        scenario = Scenario.create(model_name, task_id, num_requests=8, num_gpus=num_gpus)
        simulator = scenario.engine.simulator
        gpu_count = scenario.engine.cluster.num_gpus
        variables = [
            ("rra", "B_E", _rra_sweeps("B_E", scenario.max_encode_batch)),
            ("rra", "N_D", _rra_sweeps("N_D", scenario.max_encode_batch)),
            ("waa", "B_E", _waa_sweeps("B_E", scenario.max_encode_batch, gpu_count)),
            ("waa", "TP", _waa_sweeps("TP", scenario.max_encode_batch, gpu_count)),
            ("waa", "B_m", _waa_sweeps("B_m", scenario.max_encode_batch, gpu_count)),
        ]
        for tolerance in tolerances_pct:
            for policy, variable, sweeps in variables:
                total = 0
                lat_viol = 0
                tput_viol = 0
                for sweep in sweeps:
                    points, lat, tput = _sweep(simulator, sweep, tolerance / 100.0)
                    total += points
                    lat_viol += lat
                    tput_viol += tput
                if total == 0:
                    continue
                rows.append(
                    MonotonicityRow(
                        task=task_id,
                        tolerance_pct=tolerance,
                        policy=policy,
                        variable=variable,
                        latency_violation_pct=100.0 * lat_viol / total,
                        throughput_violation_pct=100.0 * tput_viol / total,
                    )
                )
    return rows


def overall_monotonic_fraction(rows: list[MonotonicityRow], tolerance_pct: float) -> float:
    """Fraction of points that are monotonic at a given tolerance (both metrics)."""
    selected = [r for r in rows if r.tolerance_pct == tolerance_pct]
    if not selected:
        return 1.0
    worst = max(
        max(r.latency_violation_pct, r.throughput_violation_pct) for r in selected
    )
    mean = float(
        np.mean([
            (r.latency_violation_pct + r.throughput_violation_pct) / 2.0
            for r in selected
        ])
    )
    del worst
    return 1.0 - mean / 100.0


def main() -> None:
    """Print Table 5."""
    rows = run_table5(tasks=("S",), tolerances_pct=(5.0,))
    print(
        format_table(
            [r.__dict__ for r in rows],
            [
                "task",
                "tolerance_pct",
                "policy",
                "variable",
                "latency_violation_pct",
                "throughput_violation_pct",
            ],
            title="Table 5 (subset): non-monotonic points",
        )
    )


if __name__ == "__main__":
    main()

"""Section 7.7: cost of profiling and scheduling.

The paper reports that profiling a model takes under two hours (once per
model/cluster), branch-and-bound scheduling takes seconds to minutes, and an
exhaustive search would take five hours to a day.  The absolute numbers on
this substrate are much smaller, but the *ratio* between branch-and-bound
and exhaustive search -- both in evaluated points and in wall time -- is the
reproducible quantity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.core.profiler import XProfiler
from repro.experiments.common import Scenario, format_table


@dataclass(frozen=True)
class SchedulingCostRow:
    """Search cost of one method for one policy family.

    Attributes:
        method: Search method name.
        policy: Policy family searched ("rra" or "waa").
        evaluations: Simulator evaluations performed.
        elapsed_s: Wall time of the search.
        best_throughput: Throughput of the best schedule found.
    """

    method: str
    policy: str
    evaluations: int
    elapsed_s: float
    best_throughput: float


def run_scheduling_cost(
    model_name: str = "OPT-13B",
    task_id: str = "S",
    bound_s: float = 11.5,
    max_encode_batch: int = 48,
    methods: tuple[str, ...] = ("branch_and_bound", "exhaustive", "random"),
) -> list[SchedulingCostRow]:
    """Compare the search methods' cost and result quality."""
    scenario = Scenario.create(
        model_name, task_id, num_requests=8, max_encode_batch=max_encode_batch
    )
    engine = scenario.engine
    constraint = LatencyConstraint(bound_s=bound_s, target_length=scenario.task.output_p99)
    rows: list[SchedulingCostRow] = []
    for method in methods:
        for label, policies in (
            ("rra", (SchedulePolicy.RRA,)),
            ("waa", (SchedulePolicy.WAA_C,)),
        ):
            result = engine.schedule(constraint, policies=policies, method=method)
            rows.append(
                SchedulingCostRow(
                    method=method,
                    policy=label,
                    evaluations=result.evaluations,
                    elapsed_s=result.elapsed_s,
                    best_throughput=(
                        result.best.throughput_seq_per_s if result.best else 0.0
                    ),
                )
            )
    return rows


def profiling_cost(model_name: str = "OPT-13B", num_gpus: int | None = None) -> float:
    """Wall time of a full profiling sweep for one model."""
    scenario = Scenario.create(model_name, "S", num_requests=8, num_gpus=num_gpus)
    start = time.perf_counter()
    XProfiler(scenario.engine.model, scenario.engine.cluster).profile()
    return time.perf_counter() - start


def search_efficiency(rows: list[SchedulingCostRow]) -> float:
    """Evaluations of exhaustive search divided by branch-and-bound's."""
    bnb = sum(r.evaluations for r in rows if r.method == "branch_and_bound")
    exhaustive = sum(r.evaluations for r in rows if r.method == "exhaustive")
    if bnb == 0:
        return 0.0
    return exhaustive / bnb


def main() -> None:
    """Print the scheduling-cost comparison."""
    rows = run_scheduling_cost(max_encode_batch=32)
    print(
        format_table(
            [r.__dict__ for r in rows],
            ["method", "policy", "evaluations", "elapsed_s", "best_throughput"],
            title="Section 7.7: scheduling cost",
        )
    )
    print(f"\nExhaustive/BnB evaluation ratio: {search_efficiency(rows):.1f}x")


if __name__ == "__main__":
    main()

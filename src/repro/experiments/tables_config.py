"""Tables 1-3: evaluated models, clusters and tasks.

These tables are configuration inventories rather than measurements; the
functions here regenerate their rows from the catalog so that the benchmark
suite can assert the reproduction ships exactly the published configurations.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.hardware.cluster import a40_cluster, a100_cluster
from repro.models.catalog import DEPLOYMENTS, get_model, known_models
from repro.workloads.tasks import ALL_TASKS


def run_table1() -> list[dict]:
    """Table 1: model configurations (params, layers, hidden size, heads)."""
    rows = []
    for key in known_models():
        model = get_model(key)
        rows.append(
            {
                "model": model.name,
                "params_b": round(model.total_parameters / 1e9, 1),
                "layers": model.num_layers,
                "hidden": model.hidden_size,
                "heads": model.num_heads,
                "architecture": model.architecture.value,
            }
        )
    return rows


def run_table2() -> list[dict]:
    """Table 2: GPU clusters and per-model deployments."""
    clusters = {
        "A40": a40_cluster(),
        "A100": a100_cluster(),
    }
    rows = []
    for cluster_name, cluster in clusters.items():
        rows.append(
            {
                "cluster": cluster_name,
                "gpu": cluster.gpu.name,
                "memory_gb": cluster.gpu.memory_gb,
                "size": cluster.num_gpus,
                "intra_node": cluster.topology.intra_node.name,
                "inter_node": cluster.topology.inter_node.name,
            }
        )
    for model_key, (cluster_name, gpus) in sorted(DEPLOYMENTS.items()):
        rows.append(
            {
                "cluster": cluster_name,
                "gpu": f"deploy:{model_key}",
                "memory_gb": "",
                "size": gpus,
                "intra_node": "",
                "inter_node": "",
            }
        )
    return rows


def run_table3() -> list[dict]:
    """Table 3: NLP tasks and their sequence-length statistics."""
    rows = []
    for task_id, task in sorted(ALL_TASKS.items()):
        rows.append(
            {
                "task": task.name,
                "id": task_id,
                "input_avg": task.input_mean,
                "input_std": task.input_std,
                "input_max": task.input_max,
                "output_avg": task.output_mean,
                "output_std": task.output_std,
                "output_p99": task.output_p99,
                "output_max": task.output_max,
            }
        )
    return rows


def main() -> None:
    """Print Tables 1-3."""
    print(format_table(run_table1(), ["model", "params_b", "layers", "hidden", "heads", "architecture"], "Table 1"))
    print()
    print(format_table(run_table2(), ["cluster", "gpu", "memory_gb", "size", "intra_node", "inter_node"], "Table 2"))
    print()
    print(
        format_table(
            run_table3(),
            ["task", "id", "input_avg", "input_std", "input_max", "output_avg", "output_std", "output_p99", "output_max"],
            "Table 3",
        )
    )


if __name__ == "__main__":
    main()

"""Figure 8: ExeGPT (RRA) vs FasterTransformer on large LLMs.

GPT-3 101B, 175B and 341B on the code-generation and conversational tasks
(G, C1, C2) under four latency bounds.  WAA is excluded because its weight
replication does not fit for the 175B/341B models; ExeGPT therefore runs
RRA only, and the paper reports an average 3.2x gain over FT (2.2x at the
unbounded constraint).
"""

from __future__ import annotations

from repro.campaign.spec import BOUND_REFS, CampaignSpec
from repro.core.config import SchedulePolicy
from repro.experiments.common import Scenario, format_measurements, run_offline_campaign
from repro.experiments.figure6 import figure6_speedups
from repro.serving.evaluation import SystemMeasurement

LARGE_MODELS = ("GPT3-101B", "GPT3-175B", "GPT3-341B")
LARGE_TASKS = ("G", "C1", "C2")


def figure8_campaign(
    models: tuple[str, ...] = LARGE_MODELS,
    tasks: tuple[str, ...] = LARGE_TASKS,
    num_requests: int = 384,
    bounds_subset: tuple[int, ...] | None = None,
) -> CampaignSpec:
    """The Figure 8 grid as a campaign (ExeGPT restricted to RRA)."""
    bounds = (
        BOUND_REFS
        if bounds_subset is None
        else tuple(BOUND_REFS[i] for i in bounds_subset)
    )
    return CampaignSpec.offline_grid(
        name="figure8",
        models=models,
        tasks=tasks,
        systems=("exegpt", "ft"),
        bounds=bounds,
        num_requests=num_requests,
        policies=("rra",),
    )


def run_figure8(
    models: tuple[str, ...] = LARGE_MODELS,
    tasks: tuple[str, ...] = LARGE_TASKS,
    num_requests: int = 384,
    bounds_subset: tuple[int, ...] | None = None,
    workers: int = 1,
    store=None,
) -> list[SystemMeasurement]:
    """Regenerate the Figure 8 series (large LLMs, RRA only) through the
    campaign runner; ``workers``/``store`` enable fan-out and resume."""
    return run_offline_campaign(
        figure8_campaign(models, tasks, num_requests, bounds_subset),
        workers=workers,
        store=store,
    )


def waa_is_infeasible(model_name: str, task_id: str) -> bool:
    """Check the paper's claim that WAA cannot run the 175B/341B models.

    Returns True when no memory-feasible WAA schedule exists for the model
    and task at any encoder batch size.
    """
    scenario = Scenario.create(model_name, task_id, num_requests=8)
    search = scenario.engine.schedule(
        float("inf"), policies=(SchedulePolicy.WAA_C, SchedulePolicy.WAA_M)
    )
    return search.best is None


def main() -> None:
    """Run a scaled-down Figure 8 and print it."""
    rows = run_figure8(models=("GPT3-101B",), tasks=("G",), num_requests=192)
    print(format_measurements(rows, title="Figure 8 (subset): large LLMs"))
    speedups = figure6_speedups(rows)
    mean = sum(speedups.values()) / max(len(speedups), 1)
    print(f"\nMean ExeGPT/FT speedup: {mean:.2f}x (paper: ~3.2x for large LLMs)")


if __name__ == "__main__":
    main()

"""Figure 8: ExeGPT (RRA) vs FasterTransformer on large LLMs.

GPT-3 101B, 175B and 341B on the code-generation and conversational tasks
(G, C1, C2) under four latency bounds.  WAA is excluded because its weight
replication does not fit for the 175B/341B models; ExeGPT therefore runs
RRA only, and the paper reports an average 3.2x gain over FT (2.2x at the
unbounded constraint).
"""

from __future__ import annotations

from repro.core.config import SchedulePolicy
from repro.experiments.common import Scenario, format_measurements
from repro.experiments.figure6 import _tag, figure6_speedups
from repro.serving.evaluation import (
    SystemMeasurement,
    default_baselines,
    measure_baseline,
    measure_exegpt,
)

LARGE_MODELS = ("GPT3-101B", "GPT3-175B", "GPT3-341B")
LARGE_TASKS = ("G", "C1", "C2")


def run_figure8(
    models: tuple[str, ...] = LARGE_MODELS,
    tasks: tuple[str, ...] = LARGE_TASKS,
    num_requests: int = 384,
    bounds_subset: tuple[int, ...] | None = None,
) -> list[SystemMeasurement]:
    """Regenerate the Figure 8 series (large LLMs, RRA only)."""
    measurements: list[SystemMeasurement] = []
    for model_name in models:
        for task_id in tasks:
            scenario = Scenario.create(model_name, task_id, num_requests=num_requests)
            (ft,) = default_baselines(scenario.engine, ("ft",))
            bounds = scenario.latency_bounds().as_list()
            if bounds_subset is not None:
                bounds = [bounds[i] for i in bounds_subset]
            for constraint in bounds:
                exe = measure_exegpt(
                    scenario.engine,
                    scenario.trace,
                    constraint,
                    policies=(SchedulePolicy.RRA,),
                )
                ft_row = measure_baseline(ft, scenario.trace, constraint)
                measurements.append(_tag(exe, scenario.label))
                measurements.append(_tag(ft_row, scenario.label))
    return measurements


def waa_is_infeasible(model_name: str, task_id: str) -> bool:
    """Check the paper's claim that WAA cannot run the 175B/341B models.

    Returns True when no memory-feasible WAA schedule exists for the model
    and task at any encoder batch size.
    """
    scenario = Scenario.create(model_name, task_id, num_requests=8)
    search = scenario.engine.schedule(
        float("inf"), policies=(SchedulePolicy.WAA_C, SchedulePolicy.WAA_M)
    )
    return search.best is None


def main() -> None:
    """Run a scaled-down Figure 8 and print it."""
    rows = run_figure8(models=("GPT3-101B",), tasks=("G",), num_requests=192)
    print(format_measurements(rows, title="Figure 8 (subset): large LLMs"))
    speedups = figure6_speedups(rows)
    mean = sum(speedups.values()) / max(len(speedups), 1)
    print(f"\nMean ExeGPT/FT speedup: {mean:.2f}x (paper: ~3.2x for large LLMs)")


if __name__ == "__main__":
    main()

"""Figure 7: throughput comparison of the existing inference systems.

FT, DSI, ORCA and vLLM on OPT-13B with four A40 GPUs, tasks S/T/C1, four
latency bounds.  The paper's finding is that FT outperforms the others (DSI
close behind, ORCA/vLLM limited by executor overhead and latency-bound
compliance), which motivates using FT as the main baseline elsewhere.
"""

from __future__ import annotations

from repro.experiments.common import Scenario, format_measurements
from repro.serving.evaluation import (
    SystemMeasurement,
    default_baselines,
    measure_baseline,
)

FIGURE7_SYSTEMS = ("ft", "dsi", "orca", "vllm")


def run_figure7(
    tasks: tuple[str, ...] = ("S", "T", "C1"),
    num_requests: int = 512,
    bounds_subset: tuple[int, ...] | None = None,
) -> list[SystemMeasurement]:
    """Regenerate the Figure 7 series (existing systems on OPT-13B)."""
    measurements: list[SystemMeasurement] = []
    for task_id in tasks:
        scenario = Scenario.create("OPT-13B", task_id, num_requests=num_requests)
        systems = default_baselines(scenario.engine, FIGURE7_SYSTEMS)
        bounds = scenario.latency_bounds().as_list()
        if bounds_subset is not None:
            bounds = [bounds[i] for i in bounds_subset]
        for constraint in bounds:
            for system in systems:
                row = measure_baseline(system, scenario.trace, constraint)
                measurements.append(
                    SystemMeasurement(
                        system=f"{scenario.label}:{row.system}",
                        bound_label=row.bound_label,
                        bound_s=row.bound_s,
                        throughput_seq_per_s=row.throughput_seq_per_s,
                        p99_latency_s=row.p99_latency_s,
                        max_latency_s=row.max_latency_s,
                        satisfied=row.satisfied,
                        config_description=row.config_description,
                    )
                )
    return measurements


def ft_wins(measurements: list[SystemMeasurement]) -> bool:
    """Whether FT has the highest throughput in every (task, bound) group."""
    groups: dict[tuple[str, str], dict[str, float]] = {}
    for row in measurements:
        scenario, system = row.system.split(":", 1)
        groups.setdefault((scenario, row.bound_label), {})[system] = (
            row.throughput_seq_per_s
        )
    for systems in groups.values():
        ft = systems.get("ft", 0.0)
        if any(v > ft * 1.02 for k, v in systems.items() if k != "ft"):
            return False
    return True


def main() -> None:
    """Run a scaled-down Figure 7 and print it."""
    rows = run_figure7(tasks=("S",), num_requests=256)
    print(format_measurements(rows, title="Figure 7 (subset): existing systems"))
    print(f"\nFT is the strongest existing system: {ft_wins(rows)} (paper: yes)")


if __name__ == "__main__":
    main()

"""Figure 7: throughput comparison of the existing inference systems.

FT, DSI, ORCA and vLLM on OPT-13B with four A40 GPUs, tasks S/T/C1, four
latency bounds.  The paper's finding is that FT outperforms the others (DSI
close behind, ORCA/vLLM limited by executor overhead and latency-bound
compliance), which motivates using FT as the main baseline elsewhere.
"""

from __future__ import annotations

from repro.campaign.spec import BOUND_REFS, CampaignSpec
from repro.experiments.common import format_measurements, run_offline_campaign
from repro.serving.evaluation import SystemMeasurement

FIGURE7_SYSTEMS = ("ft", "dsi", "orca", "vllm")


def figure7_campaign(
    tasks: tuple[str, ...] = ("S", "T", "C1"),
    num_requests: int = 512,
    bounds_subset: tuple[int, ...] | None = None,
) -> CampaignSpec:
    """The Figure 7 grid as a campaign: OPT-13B x task x bound x baseline."""
    bounds = (
        BOUND_REFS
        if bounds_subset is None
        else tuple(BOUND_REFS[i] for i in bounds_subset)
    )
    return CampaignSpec.offline_grid(
        name="figure7",
        models=("OPT-13B",),
        tasks=tasks,
        systems=FIGURE7_SYSTEMS,
        bounds=bounds,
        num_requests=num_requests,
    )


def run_figure7(
    tasks: tuple[str, ...] = ("S", "T", "C1"),
    num_requests: int = 512,
    bounds_subset: tuple[int, ...] | None = None,
    workers: int = 1,
    store=None,
) -> list[SystemMeasurement]:
    """Regenerate the Figure 7 series (existing systems on OPT-13B).

    Runs through the campaign layer: ``workers`` fans the independent
    (task, bound, system) cells out across processes, ``store`` makes the
    run resumable.
    """
    return run_offline_campaign(
        figure7_campaign(tasks, num_requests, bounds_subset),
        workers=workers,
        store=store,
    )


def ft_wins(measurements: list[SystemMeasurement]) -> bool:
    """Whether FT has the highest throughput in every (task, bound) group."""
    groups: dict[tuple[str, str], dict[str, float]] = {}
    for row in measurements:
        scenario, system = row.system.split(":", 1)
        groups.setdefault((scenario, row.bound_label), {})[system] = (
            row.throughput_seq_per_s
        )
    for systems in groups.values():
        ft = systems.get("ft", 0.0)
        if any(v > ft * 1.02 for k, v in systems.items() if k != "ft"):
            return False
    return True


def main() -> None:
    """Run a scaled-down Figure 7 and print it."""
    rows = run_figure7(tasks=("S",), num_requests=256)
    print(format_measurements(rows, title="Figure 7 (subset): existing systems"))
    print(f"\nFT is the strongest existing system: {ft_wins(rows)} (paper: yes)")


if __name__ == "__main__":
    main()

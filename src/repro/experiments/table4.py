"""Table 4: cost of (re-)deploying LLMs from SSD or CPU DRAM.

The paper reports 2.1-15.1 s to load GPT-3 39B-341B from SSD and 0.9-3.5 s
from DRAM, loading weight shards onto all GPUs in parallel.  This module
regenerates the table from the storage bandwidth model.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.hardware.storage import DRAM, SSD, load_time_s
from repro.models.catalog import get_model

# Model -> GPU count used in the paper's Table 4 (its deployment column).
TABLE4_DEPLOYMENTS: tuple[tuple[str, int], ...] = (
    ("GPT3-39B", 16),
    ("GPT3-101B", 32),
    ("GPT3-175B", 32),
    ("GPT3-341B", 48),
)


def run_table4(
    deployments: tuple[tuple[str, int], ...] = TABLE4_DEPLOYMENTS,
) -> list[dict]:
    """Regenerate the Table 4 rows (seconds to load from DRAM / SSD)."""
    rows = []
    for model_key, num_gpus in deployments:
        model = get_model(model_key)
        rows.append(
            {
                "model": model.name,
                "num_gpus": num_gpus,
                "dram_s": load_time_s(model.total_bytes, num_gpus, DRAM),
                "ssd_s": load_time_s(model.total_bytes, num_gpus, SSD),
            }
        )
    return rows


# The paper's published values, used by tests/benches to check the trend.
PAPER_TABLE4 = {
    "GPT3-39B": {"dram_s": 0.9, "ssd_s": 2.1},
    "GPT3-101B": {"dram_s": 1.3, "ssd_s": 7.1},
    "GPT3-175B": {"dram_s": 2.1, "ssd_s": 11.9},
    "GPT3-341B": {"dram_s": 3.5, "ssd_s": 15.1},
}


def main() -> None:
    """Print Table 4."""
    print(
        format_table(
            run_table4(), ["model", "num_gpus", "dram_s", "ssd_s"], "Table 4: deployment cost"
        )
    )


if __name__ == "__main__":
    main()

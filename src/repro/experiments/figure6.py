"""Figure 6: ExeGPT vs FasterTransformer, small to mid-sized LLMs.

The paper evaluates T5-11B, OPT-13B, GPT-3 39B and GPT-3 101B on tasks S
(summarization), T (translation) and C1 (short conversational Q&A), each
under four latency bounds (the bottom 10%, 30%, 70% of FT's latency range
and infinity), and reports throughput in sequences per second.  ExeGPT's
bar is the faster of its RRA and WAA schedules.
"""

from __future__ import annotations

from repro.campaign.spec import BOUND_REFS, CampaignSpec
from repro.experiments.common import format_measurements, run_offline_campaign
from repro.serving.evaluation import SystemMeasurement

SMALL_MID_MODELS = ("T5-11B", "OPT-13B", "GPT3-39B", "GPT3-101B")
SMALL_MID_TASKS = ("S", "T", "C1")


def figure6_campaign(
    models: tuple[str, ...] = SMALL_MID_MODELS,
    tasks: tuple[str, ...] = SMALL_MID_TASKS,
    num_requests: int = 512,
    bounds_subset: tuple[int, ...] | None = None,
) -> CampaignSpec:
    """The Figure 6 grid as a campaign: (model x task x bound) x {exe, ft}."""
    bounds = (
        BOUND_REFS
        if bounds_subset is None
        else tuple(BOUND_REFS[i] for i in bounds_subset)
    )
    return CampaignSpec.offline_grid(
        name="figure6",
        models=models,
        tasks=tasks,
        systems=("exegpt", "ft"),
        bounds=bounds,
        num_requests=num_requests,
        policies=("rra", "waa-c", "waa-m"),
    )


def run_figure6(
    models: tuple[str, ...] = SMALL_MID_MODELS,
    tasks: tuple[str, ...] = SMALL_MID_TASKS,
    num_requests: int = 512,
    bounds_subset: tuple[int, ...] | None = None,
    workers: int = 1,
    store=None,
) -> list[SystemMeasurement]:
    """Regenerate the Figure 6 series (through the campaign runner).

    Args:
        models: Model subset (the full figure uses all four small/mid LLMs).
        tasks: Task subset (the full figure uses S, T and C1).
        num_requests: Requests per measured trace.
        bounds_subset: Indices of the four bounds to evaluate (None = all).
        workers: Campaign fan-out width (cells are independent).
        store: Optional trace store (path or ``TraceStore``): reruns load
            finished cells instead of re-simulating them.

    Returns:
        One measurement per (model, task, bound, system) with ExeGPT
        (best of RRA/WAA-C/WAA-M) and FT, in the historical row order.
    """
    return run_offline_campaign(
        figure6_campaign(models, tasks, num_requests, bounds_subset),
        workers=workers,
        store=store,
    )


def _tag(row: SystemMeasurement, label: str) -> SystemMeasurement:
    """Prefix a measurement's system with its scenario label.

    Kept for the experiment modules (Figures 8 and 10) that assemble rows
    outside the campaign path; campaign-built rows are tagged identically
    by :func:`repro.campaign.analysis.measurements`.
    """
    return SystemMeasurement(
        system=f"{label}:{row.system}",
        bound_label=row.bound_label,
        bound_s=row.bound_s,
        throughput_seq_per_s=row.throughput_seq_per_s,
        p99_latency_s=row.p99_latency_s,
        max_latency_s=row.max_latency_s,
        satisfied=row.satisfied,
        config_description=row.config_description,
    )


def figure6_speedups(measurements: list[SystemMeasurement]) -> dict[str, float]:
    """Per-(scenario, bound) throughput speedup of ExeGPT over FT."""
    exe: dict[tuple[str, str], float] = {}
    ft: dict[tuple[str, str], float] = {}
    for row in measurements:
        scenario, system = row.system.split(":", 1)
        key = (scenario, row.bound_label)
        if system.startswith("exegpt"):
            exe[key] = max(exe.get(key, 0.0), row.throughput_seq_per_s)
        elif system == "ft":
            ft[key] = row.throughput_seq_per_s
    return {
        f"{scenario}@{bound}": exe[(scenario, bound)] / ft[(scenario, bound)]
        for (scenario, bound) in exe
        if ft.get((scenario, bound), 0.0) > 0
    }


def main() -> None:
    """Run a scaled-down Figure 6 and print it."""
    rows = run_figure6(models=("OPT-13B",), tasks=("S", "T"), num_requests=256)
    print(format_measurements(rows, title="Figure 6 (subset): ExeGPT vs FT"))
    speedups = figure6_speedups(rows)
    mean = sum(speedups.values()) / max(len(speedups), 1)
    print(f"\nMean ExeGPT/FT speedup: {mean:.2f}x (paper: ~2x for small/mid LLMs)")


if __name__ == "__main__":
    main()

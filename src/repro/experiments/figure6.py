"""Figure 6: ExeGPT vs FasterTransformer, small to mid-sized LLMs.

The paper evaluates T5-11B, OPT-13B, GPT-3 39B and GPT-3 101B on tasks S
(summarization), T (translation) and C1 (short conversational Q&A), each
under four latency bounds (the bottom 10%, 30%, 70% of FT's latency range
and infinity), and reports throughput in sequences per second.  ExeGPT's
bar is the faster of its RRA and WAA schedules.
"""

from __future__ import annotations

from repro.core.config import SchedulePolicy
from repro.experiments.common import Scenario, format_measurements
from repro.serving.evaluation import (
    SystemMeasurement,
    default_baselines,
    measure_baseline,
    measure_exegpt,
)

SMALL_MID_MODELS = ("T5-11B", "OPT-13B", "GPT3-39B", "GPT3-101B")
SMALL_MID_TASKS = ("S", "T", "C1")


def run_figure6(
    models: tuple[str, ...] = SMALL_MID_MODELS,
    tasks: tuple[str, ...] = SMALL_MID_TASKS,
    num_requests: int = 512,
    bounds_subset: tuple[int, ...] | None = None,
) -> list[SystemMeasurement]:
    """Regenerate the Figure 6 series.

    Args:
        models: Model subset (the full figure uses all four small/mid LLMs).
        tasks: Task subset (the full figure uses S, T and C1).
        num_requests: Requests per measured trace.
        bounds_subset: Indices of the four bounds to evaluate (None = all).

    Returns:
        One measurement per (model, task, bound, system) with ExeGPT
        (best of RRA/WAA-C/WAA-M) and FT.
    """
    measurements: list[SystemMeasurement] = []
    for model_name in models:
        for task_id in tasks:
            scenario = Scenario.create(model_name, task_id, num_requests=num_requests)
            (ft,) = default_baselines(scenario.engine, ("ft",))
            bounds = scenario.latency_bounds().as_list()
            if bounds_subset is not None:
                bounds = [bounds[i] for i in bounds_subset]
            for constraint in bounds:
                exe = measure_exegpt(
                    scenario.engine,
                    scenario.trace,
                    constraint,
                    policies=(
                        SchedulePolicy.RRA,
                        SchedulePolicy.WAA_C,
                        SchedulePolicy.WAA_M,
                    ),
                )
                ft_row = measure_baseline(ft, scenario.trace, constraint)
                exe = _tag(exe, scenario.label)
                ft_row = _tag(ft_row, scenario.label)
                measurements.extend([exe, ft_row])
    return measurements


def _tag(row: SystemMeasurement, label: str) -> SystemMeasurement:
    return SystemMeasurement(
        system=f"{label}:{row.system}",
        bound_label=row.bound_label,
        bound_s=row.bound_s,
        throughput_seq_per_s=row.throughput_seq_per_s,
        p99_latency_s=row.p99_latency_s,
        max_latency_s=row.max_latency_s,
        satisfied=row.satisfied,
        config_description=row.config_description,
    )


def figure6_speedups(measurements: list[SystemMeasurement]) -> dict[str, float]:
    """Per-(scenario, bound) throughput speedup of ExeGPT over FT."""
    exe: dict[tuple[str, str], float] = {}
    ft: dict[tuple[str, str], float] = {}
    for row in measurements:
        scenario, system = row.system.split(":", 1)
        key = (scenario, row.bound_label)
        if system.startswith("exegpt"):
            exe[key] = max(exe.get(key, 0.0), row.throughput_seq_per_s)
        elif system == "ft":
            ft[key] = row.throughput_seq_per_s
    return {
        f"{scenario}@{bound}": exe[(scenario, bound)] / ft[(scenario, bound)]
        for (scenario, bound) in exe
        if ft.get((scenario, bound), 0.0) > 0
    }


def main() -> None:
    """Run a scaled-down Figure 6 and print it."""
    rows = run_figure6(models=("OPT-13B",), tasks=("S", "T"), num_requests=256)
    print(format_measurements(rows, title="Figure 6 (subset): ExeGPT vs FT"))
    speedups = figure6_speedups(rows)
    mean = sum(speedups.values()) / max(len(speedups), 1)
    print(f"\nMean ExeGPT/FT speedup: {mean:.2f}x (paper: ~2x for small/mid LLMs)")


if __name__ == "__main__":
    main()

"""Figure 11: WAA's sensitivity to mis-specified sequence distributions.

The translation task on OPT-13B (four A40 GPUs), latency bound at FT's 30%
level.  The WAA schedule is optimised for the nominal output distribution;
the *actual* distribution is then altered in one statistic at a time --
average (0.7-1.3x), standard deviation (0.7-1.3x) and skewness (-0.41..0.41)
-- and the non-adjusted schedule is compared against the re-optimised one in
throughput and 99th-percentile latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.core.distributions import SequenceDistribution
from repro.experiments.common import Scenario, format_table
from repro.serving.evaluation import default_baselines
from repro.serving.latency_bounds import derive_latency_bounds
from repro.workloads.synthetic import generate_trace_from_distributions
from repro.workloads.tasks import get_task


@dataclass(frozen=True)
class ShiftRow:
    """One bar/point of Figure 11.

    Attributes:
        statistic: Which statistic was shifted ("mean", "std", "skew").
        factor: The shift (scale factor for mean/std, skewness value).
        non_adjusted_throughput: Throughput of the original schedule on the
            shifted workload.
        adjusted_throughput: Throughput of the re-optimised schedule.
        non_adjusted_p99: 99th-percentile latency of the original schedule,
            normalised to the unshifted case.
        bound_s: The latency bound of the scenario.
    """

    statistic: str
    factor: float
    non_adjusted_throughput: float
    adjusted_throughput: float
    non_adjusted_p99: float
    bound_s: float


def _shifted_distribution(
    base: SequenceDistribution, statistic: str, factor: float
) -> SequenceDistribution:
    if statistic == "mean":
        return base.scaled_mean(factor)
    if statistic == "std":
        return base.scaled_std(factor)
    if statistic == "skew":
        return SequenceDistribution.skew_normal(
            base.mean, base.std, factor, base.max_len, name=f"skew{factor:g}"
        )
    raise ValueError(f"unknown statistic {statistic!r}")


def run_figure11(
    mean_factors: tuple[float, ...] = (0.7, 0.85, 1.0, 1.15, 1.3),
    std_factors: tuple[float, ...] = (0.7, 0.85, 1.0, 1.15, 1.3),
    skew_values: tuple[float, ...] = (-0.41, -0.2, 0.0, 0.2, 0.41),
    num_requests: int = 384,
    policy: SchedulePolicy = SchedulePolicy.WAA_C,
) -> list[ShiftRow]:
    """Regenerate the Figure 11 sensitivity study."""
    scenario = Scenario.create("OPT-13B", "T", num_requests=num_requests)
    engine = scenario.engine
    task = get_task("T")
    (ft,) = default_baselines(engine, ("ft",))
    bound = derive_latency_bounds(ft, target_length=task.output_p99).medium
    base_search = engine.schedule(bound, policies=(policy, SchedulePolicy.WAA_M))
    if base_search.best is None:
        # Fall back to RRA so the experiment still produces data when WAA
        # cannot satisfy the bound on this substrate.
        base_search = engine.schedule(bound, policies=(SchedulePolicy.RRA,))
    base_config = base_search.best.config
    base_output = engine.output_distribution

    rows: list[ShiftRow] = []
    reference_p99: float | None = None
    sweeps = (
        ("mean", mean_factors),
        ("std", std_factors),
        ("skew", skew_values),
    )
    for statistic, values in sweeps:
        for value in values:
            shifted = _shifted_distribution(base_output, statistic, value)
            trace = generate_trace_from_distributions(
                engine.input_distribution,
                shifted,
                num_requests=num_requests,
                seed=7,
                name=f"shift-{statistic}-{value:g}",
            )
            # Non-adjusted: keep the original schedule, actual workload shifted.
            non_adjusted = engine.run(trace, base_config)
            # Adjusted: re-optimise the schedule for the shifted distribution.
            engine.update_distributions(output_distribution=shifted)
            adjusted_search = engine.schedule(bound)
            adjusted = (
                engine.run(trace, adjusted_search.best.config)
                if adjusted_search.best is not None
                else non_adjusted
            )
            engine.update_distributions(output_distribution=base_output)
            p99 = non_adjusted.latency_percentile(99.0, skip_warmup=True)
            if statistic == "mean" and abs(value - 1.0) < 1e-9:
                reference_p99 = p99
            rows.append(
                ShiftRow(
                    statistic=statistic,
                    factor=value,
                    non_adjusted_throughput=non_adjusted.steady_state_throughput(),
                    adjusted_throughput=adjusted.steady_state_throughput(),
                    non_adjusted_p99=p99,
                    bound_s=bound.bound_s,
                )
            )
    if reference_p99 and reference_p99 > 0:
        rows = [
            ShiftRow(
                statistic=r.statistic,
                factor=r.factor,
                non_adjusted_throughput=r.non_adjusted_throughput,
                adjusted_throughput=r.adjusted_throughput,
                non_adjusted_p99=r.non_adjusted_p99 / reference_p99,
                bound_s=r.bound_s,
            )
            for r in rows
        ]
    return rows


def main() -> None:
    """Run a scaled-down Figure 11 and print it."""
    rows = run_figure11(
        mean_factors=(0.7, 1.0, 1.3),
        std_factors=(1.0,),
        skew_values=(0.0,),
        num_requests=192,
    )
    print(
        format_table(
            [r.__dict__ for r in rows],
            [
                "statistic",
                "factor",
                "non_adjusted_throughput",
                "adjusted_throughput",
                "non_adjusted_p99",
            ],
            title="Figure 11 (subset): distribution-shift sensitivity",
        )
    )


if __name__ == "__main__":
    main()

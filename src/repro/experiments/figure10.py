"""Figure 10: ExeGPT vs FT on real-world datasets (WMT, Alpaca, CNN).

The paper estimates the sequence-length distributions from 10% of each
dataset, evaluates on the remaining 90%, and reports throughput under two
latency bounds.  Because of the long right tail of real output lengths,
ExeGPT's advantage over FT grows (average 4.4x, up to 8.7x) relative to the
synthetic workloads.
"""

from __future__ import annotations

from repro.core.exegpt import ExeGPT
from repro.experiments.common import format_measurements
from repro.experiments.figure6 import _tag
from repro.serving.evaluation import (
    SystemMeasurement,
    default_baselines,
    measure_baseline,
    measure_exegpt,
)
from repro.serving.latency_bounds import derive_latency_bounds
from repro.workloads.realworld import generate_realworld_trace, get_dataset

FIGURE10_SCENARIOS: tuple[tuple[str, str], ...] = (
    ("OPT-13B", "WMT"),
    ("OPT-13B", "Alpaca"),
    ("GPT3-39B", "CNN"),
)


def run_figure10(
    scenarios: tuple[tuple[str, str], ...] = FIGURE10_SCENARIOS,
    num_requests: int = 512,
    bounds_subset: tuple[int, ...] = (1, 3),
) -> list[SystemMeasurement]:
    """Regenerate the Figure 10 series.

    Args:
        scenarios: (model, dataset) pairs.
        num_requests: Requests sampled per dataset.
        bounds_subset: Which of the four derived bounds to use; the paper
            shows two bounds per dataset (a finite one and infinity).
    """
    measurements: list[SystemMeasurement] = []
    for model_name, dataset_name in scenarios:
        dataset = get_dataset(dataset_name)
        full_trace = generate_realworld_trace(dataset, num_requests=num_requests)
        estimation, evaluation = full_trace.split(0.1)
        engine = ExeGPT.for_trace(model_name, estimation)
        (ft,) = default_baselines(engine, ("ft",))
        target = engine.output_distribution.percentile(99)
        bounds = derive_latency_bounds(ft, target_length=target).as_list()
        bounds = [bounds[i] for i in bounds_subset]
        label = f"{model_name}/{dataset.name}"
        for constraint in bounds:
            exe = measure_exegpt(engine, evaluation, constraint)
            ft_row = measure_baseline(ft, evaluation, constraint)
            measurements.append(_tag(exe, label))
            measurements.append(_tag(ft_row, label))
    return measurements


def main() -> None:
    """Run a scaled-down Figure 10 and print it."""
    rows = run_figure10(scenarios=(("OPT-13B", "Alpaca"),), num_requests=300)
    print(format_measurements(rows, title="Figure 10 (subset): real-world datasets"))


if __name__ == "__main__":
    main()

"""Figure 9: memory usage of FT versus WAA (encoder/decoder GPUs).

For OPT-13B and GPT-3 101B under the infinite latency bound, the paper
reports per-GPU memory split into model weights and KV cache, separately for
WAA's encoder and decoder GPUs and for FT's uniform GPUs.  The headline
numbers: WAA uses 18% (OPT) / 29% (GPT-3) more *model* memory than FT while
using less KV-cache memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import stage_weight_bytes
from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.experiments.common import Scenario, format_table
from repro.serving.evaluation import default_baselines


@dataclass(frozen=True)
class MemoryRow:
    """Per-system, per-GPU-role memory breakdown (GiB)."""

    scenario: str
    system: str
    role: str
    weights_gib: float
    kv_cache_gib: float

    @property
    def total_gib(self) -> float:
        """Total of the two categories."""
        return self.weights_gib + self.kv_cache_gib


def run_figure9(
    models: tuple[str, ...] = ("OPT-13B", "GPT3-101B"),
    tasks: tuple[str, ...] = ("T", "G"),
) -> list[MemoryRow]:
    """Regenerate the Figure 9 memory comparison.

    WAA rows come from the memory estimate of the best WAA schedule under an
    unbounded latency constraint; FT rows use the same encoder/decoder batch
    sizing on the TP-maximised layout.
    """
    rows: list[MemoryRow] = []
    for model_name in models:
        for task_id in tasks:
            scenario = Scenario.create(model_name, task_id, num_requests=8)
            engine = scenario.engine
            search = engine.schedule(
                LatencyConstraint(bound_s=float("inf")),
                policies=(SchedulePolicy.WAA_C, SchedulePolicy.WAA_M),
            )
            if search.best is not None:
                estimate = search.best
                for role in ("encode", "decode"):
                    members = [m for m in estimate.stage_memory if m.role == role]
                    if not members:
                        continue
                    rows.append(
                        MemoryRow(
                            scenario=scenario.label,
                            system=f"waa ({estimate.config.policy.value})",
                            role=role,
                            weights_gib=max(m.weights_gib for m in members),
                            kv_cache_gib=max(m.kv_cache_gib for m in members),
                        )
                    )
            # FT reference: uniform GPUs, batch limited by memory.
            (ft,) = default_baselines(engine, ("ft",))
            batch = ft.configure_for_bound(float("1e12"))
            model = engine.model
            placement = ft.placement
            per_stage_weights = []
            per_stage_kv = []
            avg_context = (
                engine.input_distribution.mean + engine.output_distribution.mean
                if not model.is_encoder_decoder
                else engine.output_distribution.mean
            )
            for stage in placement.stages:
                weights = (
                    stage_weight_bytes(model, stage)
                    + model.embedding_parameters * model.dtype_bytes
                ) / stage.tp_degree
                kv = (
                    batch
                    * avg_context
                    * stage.decoder_layers
                    * model.kv_bytes_per_token_per_layer()
                    / stage.tp_degree
                )
                per_stage_weights.append(weights / 1024 ** 3)
                per_stage_kv.append(kv / 1024 ** 3)
            rows.append(
                MemoryRow(
                    scenario=scenario.label,
                    system="ft",
                    role="uniform",
                    weights_gib=max(per_stage_weights),
                    kv_cache_gib=max(per_stage_kv),
                )
            )
    return rows


def model_memory_overhead(rows: list[MemoryRow], scenario: str) -> float:
    """WAA's model-memory overhead over FT for one scenario (fraction).

    The paper reports 0.18 for OPT-13B and 0.29 for GPT-3 101B.
    """
    waa_weights = [
        r.weights_gib for r in rows if r.scenario == scenario and r.system.startswith("waa")
    ]
    ft_weights = [
        r.weights_gib for r in rows if r.scenario == scenario and r.system == "ft"
    ]
    if not waa_weights or not ft_weights or ft_weights[0] <= 0:
        return 0.0
    return max(waa_weights) / ft_weights[0] - 1.0


def main() -> None:
    """Run a scaled-down Figure 9 and print it."""
    rows = run_figure9(models=("OPT-13B",), tasks=("T",))
    print(
        format_table(
            [r.__dict__ | {"total_gib": r.total_gib} for r in rows],
            ["scenario", "system", "role", "weights_gib", "kv_cache_gib", "total_gib"],
            title="Figure 9 (subset): memory usage of FT and WAA",
        )
    )


if __name__ == "__main__":
    main()

"""Shared helpers for the experiment (figure/table) reproduction modules.

Every experiment module exposes a ``run_*`` function returning plain rows
(lists of dataclasses or dicts) plus a ``format_rows`` helper that renders
them as the text table the paper's figure would show.  The experiments are
parameterised by trace size and model subset so the benchmark suite can run
scaled-down versions quickly while the full configuration reproduces the
complete figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exegpt import ExeGPT
from repro.serving.evaluation import SystemMeasurement, default_baselines
from repro.serving.latency_bounds import LatencyBoundSet, derive_latency_bounds
from repro.workloads.synthetic import generate_task_trace
from repro.workloads.tasks import TaskSpec, get_task
from repro.workloads.trace import WorkloadTrace


@dataclass
class Scenario:
    """One (model, task) evaluation scenario.

    Attributes:
        model_name: Catalog model key ("OPT-13B", ...).
        task: Task spec (Table 3).
        num_requests: Trace length used for measured runs.
        num_gpus: Override of the Table 2 GPU count (None = paper default).
        seed: Trace random seed.
    """

    model_name: str
    task: TaskSpec
    num_requests: int = 512
    num_gpus: int | None = None
    seed: int = 0
    max_encode_batch: int = 64
    _engine: ExeGPT | None = field(default=None, repr=False)
    _trace: WorkloadTrace | None = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        model_name: str,
        task_id: str,
        num_requests: int = 512,
        num_gpus: int | None = None,
        seed: int = 0,
        max_encode_batch: int = 64,
    ) -> "Scenario":
        """Build a scenario from catalog keys."""
        return cls(
            model_name=model_name,
            task=get_task(task_id),
            num_requests=num_requests,
            num_gpus=num_gpus,
            seed=seed,
            max_encode_batch=max_encode_batch,
        )

    @property
    def engine(self) -> ExeGPT:
        """The (cached) ExeGPT instance of the scenario."""
        if self._engine is None:
            self._engine = ExeGPT.for_task(
                self.model_name,
                self.task,
                num_gpus=self.num_gpus,
                max_encode_batch=self.max_encode_batch,
            )
        return self._engine

    @property
    def trace(self) -> WorkloadTrace:
        """The (cached) synthetic trace of the scenario."""
        if self._trace is None:
            self._trace = generate_task_trace(
                self.task, num_requests=self.num_requests, seed=self.seed
            )
        return self._trace

    @property
    def label(self) -> str:
        """Short label, e.g. ``"OPT-13B/S"``."""
        return f"{self.model_name}/{self.task.task_id}"

    def latency_bounds(self) -> LatencyBoundSet:
        """The paper's four latency bounds for this scenario."""
        (ft,) = default_baselines(self.engine, ("ft",))
        return derive_latency_bounds(ft, target_length=self.task.output_p99)


def run_offline_campaign(
    spec, workers: int = 1, store=None
) -> list[SystemMeasurement]:
    """Execute a figure/table campaign and return its tagged measurements.

    The shared execution path of the ported experiment modules: the grid
    runs through :class:`~repro.campaign.runner.CampaignRunner` (parallel
    with ``workers > 1``, resumable when ``store`` -- a
    :class:`~repro.campaign.store.TraceStore` or a directory path -- is
    given), and the rows are rebuilt from the result traces in spec order
    with the historical ``"model/TASK:system"`` tagging.
    """
    from repro.campaign.analysis import measurements
    from repro.campaign.runner import CampaignRunner
    from repro.campaign.store import TraceStore

    if store is not None and not isinstance(store, TraceStore):
        store = TraceStore(store)
    result = CampaignRunner(store=store, workers=workers).run(spec)
    return measurements(result, tag_with_label=True)


def format_measurements(rows: list[SystemMeasurement], title: str = "") -> str:
    """Render measurements as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'bound':>8} {'system':>14} {'tput (seq/s)':>14} {'p99 lat (s)':>12} {'ok':>4}  config"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.bound_label:>8} {row.system:>14} {row.throughput_seq_per_s:>14.2f} "
            f"{row.p99_latency_s:>12.2f} {'yes' if row.satisfied else 'no':>4}  "
            f"{row.config_description}"
        )
    return "\n".join(lines)


def format_table(rows: list[dict], columns: list[str], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    widths = {c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in rows)) for c in columns}
    lines.append("  ".join(c.rjust(widths[c]) for c in columns))
    lines.append("-" * (sum(widths.values()) + 2 * (len(columns) - 1)))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c, "")).rjust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)

"""Table 7: variance of encoder/decoder stage execution times.

For OPT-13B and task S, the paper reports the 99th-percentile range of a
single encoder/decoder stage's execution time under the selected RRA and
WAA schedules: the encoder varies by ~7-12% (input lengths differ between
batches) while the decoder varies by only a few percent, which is why the
dynamic workload adjustment can keep the schedule's latency guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.experiments.common import Scenario, format_table


@dataclass(frozen=True)
class VarianceRow:
    """One row of Table 7.

    Attributes:
        schedule: RRA or WAA.
        phase: "encode" or "decode".
        mean_s: Mean single-stage execution time.
        p99_range_s: Half-width of the central 99% interval.
        p99_range_pct: The same as a percentage of the mean.
    """

    schedule: str
    phase: str
    mean_s: float
    p99_range_s: float
    p99_range_pct: float


def run_table7(
    model_name: str = "OPT-13B",
    task_id: str = "S",
    num_requests: int = 512,
) -> list[VarianceRow]:
    """Regenerate Table 7 by executing the selected RRA and WAA schedules."""
    scenario = Scenario.create(model_name, task_id, num_requests=num_requests)
    engine = scenario.engine
    target = scenario.task.output_p99
    constraint = LatencyConstraint(bound_s=float("inf"), target_length=target)
    rows: list[VarianceRow] = []
    for label, policies in (
        ("RRA", (SchedulePolicy.RRA,)),
        ("WAA", (SchedulePolicy.WAA_C, SchedulePolicy.WAA_M)),
    ):
        search = engine.schedule(constraint, policies=policies)
        if search.best is None:
            continue
        result = engine.run(scenario.trace, search.best.config)
        for phase in ("encode", "decode"):
            stats = result.stage_time_stats(phase)
            if stats["mean"] <= 0:
                continue
            rows.append(
                VarianceRow(
                    schedule=label,
                    phase=phase,
                    mean_s=stats["mean"],
                    p99_range_s=stats["p99_range"],
                    p99_range_pct=stats["p99_range_pct"],
                )
            )
    return rows


def main() -> None:
    """Print Table 7."""
    rows = run_table7(num_requests=256)
    print(
        format_table(
            [r.__dict__ for r in rows],
            ["schedule", "phase", "mean_s", "p99_range_s", "p99_range_pct"],
            title="Table 7: encoder/decoder stage-time variance",
        )
    )


if __name__ == "__main__":
    main()

"""Table 6: case study of the selected schedules (OPT-13B, task S).

For four latency bounds the paper lists the schedule the optimiser picks,
its control-variable values, the achieved latency and throughput.  The key
qualitative findings: as the bound relaxes, the encoder batch grows first,
the policy then flips from WAA to RRA, the encoding frequency drops last,
and the tightest bound still retains ~80% of the unbounded throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LatencyConstraint
from repro.experiments.common import Scenario, format_table

# The four bounds of the paper's Table 6 (seconds).
TABLE6_BOUNDS: tuple[float, ...] = (3.1, 5.9, 11.5, float("inf"))


@dataclass(frozen=True)
class CaseStudyRow:
    """One row of Table 6.

    Attributes:
        bound_s: The latency bound.
        schedule: Selected policy name.
        config: Selected control-variable values.
        latency_s: Estimated latency of the selected schedule.
        throughput_seq_per_s: Estimated throughput of the selected schedule.
    """

    bound_s: float
    schedule: str
    config: str
    latency_s: float
    throughput_seq_per_s: float


def run_table6(
    bounds: tuple[float, ...] = TABLE6_BOUNDS,
    model_name: str = "OPT-13B",
    task_id: str = "S",
) -> list[CaseStudyRow]:
    """Regenerate the Table 6 case study."""
    scenario = Scenario.create(model_name, task_id, num_requests=8)
    engine = scenario.engine
    target = scenario.task.output_p99
    rows: list[CaseStudyRow] = []
    for bound in bounds:
        constraint = LatencyConstraint(bound_s=bound, target_length=target)
        search = engine.schedule(constraint)
        if search.best is None:
            rows.append(
                CaseStudyRow(
                    bound_s=bound,
                    schedule="NS",
                    config="-",
                    latency_s=float("inf"),
                    throughput_seq_per_s=0.0,
                )
            )
            continue
        best = search.best
        rows.append(
            CaseStudyRow(
                bound_s=bound,
                schedule=best.config.policy.value.upper(),
                config=best.config.describe(),
                latency_s=best.latency_s,
                throughput_seq_per_s=best.throughput_seq_per_s,
            )
        )
    return rows


def tightest_to_max_throughput_ratio(rows: list[CaseStudyRow]) -> float:
    """Throughput of the tightest bound relative to the unbounded maximum."""
    feasible = [r for r in rows if r.throughput_seq_per_s > 0]
    if not feasible:
        return 0.0
    best = max(r.throughput_seq_per_s for r in feasible)
    return feasible[0].throughput_seq_per_s / best if best > 0 else 0.0


def main() -> None:
    """Print Table 6."""
    rows = run_table6()
    print(
        format_table(
            [r.__dict__ for r in rows],
            ["bound_s", "schedule", "config", "latency_s", "throughput_seq_per_s"],
            title="Table 6: selected schedules (OPT-13B, task S)",
        )
    )
    print(
        f"\nTightest-bound throughput is {100*tightest_to_max_throughput_ratio(rows):.0f}% "
        "of the maximum (paper: ~80%)."
    )


if __name__ == "__main__":
    main()

"""Experiment modules regenerating every table and figure of the paper."""

from repro.experiments.common import Scenario, format_measurements, format_table
from repro.experiments.figure6 import figure6_speedups, run_figure6
from repro.experiments.figure7 import ft_wins, run_figure7
from repro.experiments.figure8 import run_figure8, waa_is_infeasible
from repro.experiments.figure9 import model_memory_overhead, run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.figure11 import run_figure11
from repro.experiments.scheduling_cost import (
    profiling_cost,
    run_scheduling_cost,
    search_efficiency,
)
from repro.experiments.table4 import PAPER_TABLE4, run_table4
from repro.experiments.table5 import overall_monotonic_fraction, run_table5
from repro.experiments.table6 import run_table6, tightest_to_max_throughput_ratio
from repro.experiments.table7 import run_table7
from repro.experiments.tables_config import run_table1, run_table2, run_table3

__all__ = [
    "PAPER_TABLE4",
    "Scenario",
    "figure6_speedups",
    "format_measurements",
    "format_table",
    "ft_wins",
    "model_memory_overhead",
    "overall_monotonic_fraction",
    "profiling_cost",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_scheduling_cost",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "search_efficiency",
    "tightest_to_max_throughput_ratio",
    "waa_is_infeasible",
]

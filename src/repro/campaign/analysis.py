"""Regenerate tables, figures and scaling curves from stored traces.

Everything in this module is a pure function of persisted trace payloads:
no simulation runs here.  A finished (or partially finished) campaign can
be re-analyzed, re-plotted and re-tabulated for free, and the paper-figure
experiment modules rebuild their row lists from the same payloads the
runner persisted.
"""

from __future__ import annotations

from collections import defaultdict

from repro.campaign.runner import CampaignResult
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import TraceStore


def load_campaign(store: TraceStore, spec: CampaignSpec) -> CampaignResult:
    """A :class:`CampaignResult` built purely from stored traces.

    Raises ``KeyError`` naming the first cell whose trace is missing or
    unverifiable -- run the campaign (or the missing subset) first.
    """
    traces: dict[str, dict] = {}
    for cell in spec:
        cell_hash = cell.content_hash()
        document = store.load(cell_hash)
        if document is None:
            raise KeyError(
                f"no verified trace for cell {cell.describe()} "
                f"({cell_hash[:12]}...); run the campaign first"
            )
        traces[cell_hash] = document
    return CampaignResult(
        spec=spec, traces=traces, executed=(), loaded=spec.hashes()
    )


# ---------------------------------------------------------------------------
# Offline (paper figure/table) payloads
# ---------------------------------------------------------------------------


def measurement_of(payload: dict):
    """Rebuild a :class:`~repro.serving.evaluation.SystemMeasurement`."""
    from repro.serving.evaluation import SystemMeasurement

    if payload.get("mode") != "offline":
        raise ValueError("measurement_of expects an offline cell payload")
    return SystemMeasurement(**payload["measurement"])


def measurements(result: CampaignResult, tag_with_label: bool = False) -> list:
    """Every offline cell's measurement, in spec order.

    With ``tag_with_label`` the system name is prefixed with the cell's
    ``"model/TASK"`` label, matching the historical figure-row tagging.
    """
    from repro.serving.evaluation import SystemMeasurement

    rows = []
    for cell, payload in result.payloads():
        if payload.get("mode") != "offline":
            continue
        row = measurement_of(payload)
        if tag_with_label:
            row = SystemMeasurement(
                **{**row.__dict__, "system": f"{cell.label}:{row.system}"}
            )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Online (rate sweep) payloads
# ---------------------------------------------------------------------------


def rate_rows(result: CampaignResult) -> list[dict]:
    """One flat dict per (online cell, rate point), in spec order."""
    rows: list[dict] = []
    for cell, payload in result.payloads():
        if payload.get("mode") != "online":
            continue
        for point in payload["points"]:
            rows.append(
                {
                    "model": cell.model,
                    "task": cell.task.upper(),
                    "system": cell.system,
                    "scenario": cell.scenario,
                    "replicas": cell.replicas,
                    "routing": cell.routing,
                    **point,
                }
            )
    return rows


def capacity_rows(result: CampaignResult) -> list[dict]:
    """One dict per online cell with its max sustainable QPS, spec order."""
    rows: list[dict] = []
    for cell, payload in result.payloads():
        if payload.get("mode") != "online":
            continue
        rows.append(
            {
                "model": cell.model,
                "task": cell.task.upper(),
                "system": cell.system,
                "scenario": cell.scenario,
                "replicas": cell.replicas,
                "routing": cell.routing,
                "slo_p99_s": payload["slo_p99_s"],
                "max_qps": payload["max_sustainable_qps"],
            }
        )
    return rows


def scaling_curves(
    result: CampaignResult,
) -> dict[tuple[str, str, str, str, str], list[tuple[int, float]]]:
    """Fleet-scaling curves: max QPS as a function of replica count.

    Keyed by (model, task, system, scenario, routing); each value is the
    (replicas, max_sustainable_qps) series sorted by replica count.  These
    are the new fleet-scaling figures the paper does not have: how far a
    deployment's SLO-bounded capacity scales with fleet size under each
    routing policy.
    """
    curves: dict[tuple, list[tuple[int, float]]] = defaultdict(list)
    for row in capacity_rows(result):
        key = (
            row["model"],
            row["task"],
            row["system"],
            row["scenario"],
            row["routing"],
        )
        curves[key].append((row["replicas"], row["max_qps"]))
    return {key: sorted(points) for key, points in curves.items()}


def scaling_efficiency(curve: list[tuple[int, float]]) -> dict[int, float]:
    """Per-size scaling efficiency: ``qps(N) / (N * qps(1))``."""
    base = next((qps for n, qps in curve if n == 1), 0.0)
    if base <= 0:
        return {}
    return {n: qps / (n * base) for n, qps in curve}


def format_capacity_table(result: CampaignResult, title: str = "") -> str:
    """The campaign's capacity table as aligned text."""
    from repro.experiments.common import format_table

    rows = capacity_rows(result)
    if not rows:
        return title
    columns = [
        "model", "task", "system", "scenario", "replicas", "routing", "max_qps",
    ]
    return format_table(rows, columns, title=title)


def format_scaling_curves(result: CampaignResult, title: str = "") -> str:
    """The fleet-scaling curves as aligned text, with efficiencies."""
    lines = [title] if title else []
    for key, curve in sorted(scaling_curves(result).items()):
        model, task, system, scenario, routing = key
        eff = scaling_efficiency(curve)
        series = "  ".join(
            f"{n}x{qps:g}qps" + (f" ({eff[n]:.0%})" if n in eff else "")
            for n, qps in curve
        )
        lines.append(f"{model}/{task} {system} {scenario} [{routing}]: {series}")
    return "\n".join(lines)

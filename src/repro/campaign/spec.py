"""Declarative experiment-campaign specifications.

A campaign is a named grid of **cells** -- each cell one independent
simulation: a (model x hardware x scenario x fleet size x routing policy x
SLO x seed) point.  Cells are plain frozen dataclasses of primitives, so
they pickle cheaply across process boundaries; workers rebuild the heavy,
unpicklable objects (:class:`~repro.core.exegpt.ExeGPT`, online servers,
fleets) from the spec (see :mod:`repro.campaign.runner`).

Every cell has a **content hash**: the SHA-256 of its canonical JSON
encoding.  The hash keys the cell's persisted result trace in a
:class:`~repro.campaign.store.TraceStore`, and the cell's random seed is
*derived from it*, so a cell's result depends only on its content -- never
on which worker executed it, in what order, or alongside which other
cells.  That is what makes parallel, resumed and re-sharded campaigns
bit-identical to a single-shot serial run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from itertools import product

#: Version of the cell encoding hashed into every content hash.  Bump it
#: when a field is added/renamed/re-interpreted: old persisted traces then
#: miss on load and their cells re-execute instead of silently meaning
#: something else.
CELL_SCHEMA = 1

MODES = ("online", "offline")
ONLINE_SYSTEMS = ("exegpt", "orca", "vllm")
OFFLINE_SYSTEMS = ("exegpt", "ft", "dsi", "orca", "vllm")

#: Offline latency-bound references: the four paper bounds derived from the
#: FT batch sweep, tightest first (see
#: :func:`repro.serving.latency_bounds.derive_latency_bounds`).
BOUND_REFS = ("b0", "b1", "b2", "b3")


def canonical_json(obj) -> str:
    """Deterministic JSON encoding: sorted keys, no incidental whitespace.

    ``allow_nan`` stays on (the Python default) so measured payloads may
    carry ``inf``/``nan``; the encoding of those tokens is itself
    deterministic, which is all hashing and bit-parity comparisons need.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class EngineSpec:
    """Picklable recipe for one :class:`~repro.core.exegpt.ExeGPT` instance.

    Attributes:
        model: Catalog model key ("OPT-13B", ...).
        task: Table 3 task id ("S", "T", ...) providing the length
            distributions.
        num_gpus: Override of the Table 2 deployment GPU count (None =
            paper default).
        max_encode_batch: Upper bound of the scheduler's ``B_E`` range.
    """

    model: str
    task: str
    num_gpus: int | None = None
    max_encode_batch: int = 64

    def build(self):
        """Construct the engine (heavy: profile sweep on first use)."""
        from repro.core.exegpt import ExeGPT

        return ExeGPT.for_task(
            self.model,
            self.task,
            num_gpus=self.num_gpus,
            max_encode_batch=self.max_encode_batch,
        )


@dataclass(frozen=True)
class CellSpec:
    """One cell of a campaign grid: a single independent simulation.

    Two modes share the dataclass:

    * ``mode="online"`` -- an arrival-driven rate sweep: an N-replica fleet
      of ``system`` servers (configured for ``slo_p99_s``) behind
      ``routing`` serves the trace under the ``scenario`` arrival process
      at each offered rate in ``rates``; the result records per-rate
      outcomes and the maximum sustainable QPS.
    * ``mode="offline"`` -- a paper-figure measurement: ``system`` replays
      the trace under one latency ``bound`` ("b0".."b3" reference the four
      derived paper bounds; a number string like "12.5" is explicit
      seconds; "inf" is unbounded) and reports throughput/latency.

    The trace *content* seed (``trace_seed``) is part of the cell's
    identity -- cells differing only in routing compare like for like on
    the same requests.  The cell's *execution* seed (arrival sampling) is
    derived from the content hash via :meth:`seed`; ``salt`` exists to
    mint independent repetitions of an otherwise identical cell.
    """

    mode: str
    model: str
    task: str
    system: str
    num_gpus: int | None = None
    max_encode_batch: int = 64
    num_requests: int = 256
    trace_seed: int = 0
    salt: int = 0
    # -- online fields ------------------------------------------------------
    scenario: str = "steady"
    replicas: int = 1
    routing: str = "jsq"
    slo_p99_s: float | None = None
    rates: tuple[float, ...] = ()
    max_queue: int = 512
    schedule_headroom: float = 0.7
    max_rejection_rate: float = 0.0
    # -- offline fields -----------------------------------------------------
    bound: str = "b3"
    policies: tuple[str, ...] = ("rra", "waa-c", "waa-m")

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        key = self.system.lower()
        if self.mode == "online":
            if key not in ONLINE_SYSTEMS:
                raise ValueError(
                    f"online system must be one of {ONLINE_SYSTEMS}, got {self.system!r}"
                )
            if self.slo_p99_s is None or self.slo_p99_s <= 0:
                raise ValueError("online cells require a positive slo_p99_s")
            if not self.rates or any(r <= 0 for r in self.rates):
                raise ValueError("online cells require a non-empty positive rate grid")
        else:
            if key not in OFFLINE_SYSTEMS:
                raise ValueError(
                    f"offline system must be one of {OFFLINE_SYSTEMS}, got {self.system!r}"
                )
            if self.bound not in BOUND_REFS and self.bound != "inf":
                try:
                    float(self.bound)
                except ValueError:
                    raise ValueError(
                        f"bound must be one of {BOUND_REFS}, 'inf', or a number "
                        f"string, got {self.bound!r}"
                    ) from None

    # -- identity ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-primitive encoding (tuples become lists)."""
        payload = asdict(self)
        payload["rates"] = list(self.rates)
        payload["policies"] = list(self.policies)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CellSpec":
        """Inverse of :meth:`to_dict` (lists back to tuples)."""
        data = dict(payload)
        data["rates"] = tuple(data.get("rates", ()))
        data["policies"] = tuple(data.get("policies", ()))
        return cls(**data)

    def content_hash(self) -> str:
        """SHA-256 hex digest of the cell's canonical encoding."""
        doc = {"cell_schema": CELL_SCHEMA, **self.to_dict()}
        return hashlib.sha256(canonical_json(doc).encode()).hexdigest()

    def seed(self) -> int:
        """The cell's execution seed, derived from the content hash.

        Using the hash (not a caller-supplied counter) makes the seed a
        pure function of the cell's content: the same cell gets the same
        arrival streams no matter which worker runs it, in which order,
        or whether the campaign was resumed.
        """
        digest = hashlib.sha256(self.content_hash().encode()).digest()
        return int.from_bytes(digest[:8], "big") % (2**31 - 1)

    def engine_spec(self) -> EngineSpec:
        """The cell's engine recipe (the worker-side cache key)."""
        return EngineSpec(
            model=self.model,
            task=self.task,
            num_gpus=self.num_gpus,
            max_encode_batch=self.max_encode_batch,
        )

    @property
    def label(self) -> str:
        """Short human label, e.g. ``"OPT-13B/S"``."""
        return f"{self.model}/{self.task.upper()}"

    def describe(self) -> str:
        """One-line description for progress output."""
        if self.mode == "online":
            return (
                f"{self.label} {self.system} {self.scenario} "
                f"x{self.replicas} {self.routing} slo={self.slo_p99_s:g}s"
            )
        return f"{self.label} {self.system} bound={self.bound}"


@dataclass(frozen=True)
class CampaignSpec:
    """A named, ordered grid of cells.

    Cell order is presentation order only -- execution order never affects
    results (each cell is independent and self-seeded) -- but analysis
    helpers report in spec order so regenerated tables are stable.
    """

    name: str
    cells: tuple[CellSpec, ...]

    def __post_init__(self) -> None:
        seen: dict[str, CellSpec] = {}
        for cell in self.cells:
            h = cell.content_hash()
            if h in seen:
                raise ValueError(
                    f"duplicate cell in campaign {self.name!r}: {cell.describe()}"
                )
            seen[h] = cell

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def hashes(self) -> tuple[str, ...]:
        """Content hashes in spec order."""
        return tuple(cell.content_hash() for cell in self.cells)

    def subset(self, predicate) -> "CampaignSpec":
        """A sub-campaign of the cells matching ``predicate``."""
        return CampaignSpec(
            name=self.name, cells=tuple(c for c in self.cells if predicate(c))
        )

    # -- grid builders -------------------------------------------------------

    @classmethod
    def online_grid(
        cls,
        name: str,
        models: tuple[str, ...],
        tasks: tuple[str, ...],
        systems: tuple[str, ...],
        scenarios: tuple[str, ...],
        replicas: tuple[int, ...],
        routings: tuple[str, ...],
        slo_p99_s: float,
        per_replica_rates: tuple[float, ...],
        num_requests: int = 256,
        num_gpus: int | None = None,
        max_encode_batch: int = 64,
        max_queue: int = 512,
        schedule_headroom: float = 0.7,
        max_rejection_rate: float = 0.0,
        trace_seed: int = 0,
        salt: int = 0,
    ) -> "CampaignSpec":
        """The full product grid of online rate-sweep cells.

        ``per_replica_rates`` is scaled by each cell's replica count into
        its fleet-wide rate ladder, so every deployment size is probed at
        the same per-replica load and the resulting max-QPS points form a
        scaling curve.
        """
        cells = [
            CellSpec(
                mode="online",
                model=model,
                task=task,
                system=system,
                scenario=scenario,
                replicas=n,
                routing=routing,
                slo_p99_s=slo_p99_s,
                rates=tuple(r * n for r in per_replica_rates),
                num_requests=num_requests,
                num_gpus=num_gpus,
                max_encode_batch=max_encode_batch,
                max_queue=max_queue,
                schedule_headroom=schedule_headroom,
                max_rejection_rate=max_rejection_rate,
                trace_seed=trace_seed,
                salt=salt,
            )
            for model, task, system, scenario, n, routing in product(
                models, tasks, systems, scenarios, replicas, routings
            )
        ]
        return cls(name=name, cells=tuple(cells))

    @classmethod
    def offline_grid(
        cls,
        name: str,
        models: tuple[str, ...],
        tasks: tuple[str, ...],
        systems: tuple[str, ...],
        bounds: tuple[str, ...] = BOUND_REFS,
        num_requests: int = 512,
        num_gpus: int | None = None,
        max_encode_batch: int = 64,
        policies: tuple[str, ...] = ("rra", "waa-c", "waa-m"),
        trace_seed: int = 0,
        salt: int = 0,
    ) -> "CampaignSpec":
        """The full product grid of offline figure-measurement cells.

        Iteration order matches the historical experiment loops -- per
        (model, task), then per bound, then per system -- so a ported
        figure regenerates its rows in the same order.
        """
        cells = [
            CellSpec(
                mode="offline",
                model=model,
                task=task,
                system=system,
                bound=bound,
                policies=policies,
                num_requests=num_requests,
                num_gpus=num_gpus,
                max_encode_batch=max_encode_batch,
                trace_seed=trace_seed,
                salt=salt,
            )
            for model, task, bound, system in product(models, tasks, bounds, systems)
        ]
        return cls(name=name, cells=tuple(cells))


def vary(cell: CellSpec, **changes) -> CellSpec:
    """A copy of ``cell`` with fields replaced (validation re-runs)."""
    return replace(cell, **changes)

"""Named campaign presets: the grids behind the repo's standard sweeps.

Each preset returns a plain :class:`~repro.campaign.spec.CampaignSpec`;
the CLI (``python -m repro.campaign``), the examples and the perf bench
all build their grids here so "the fleet-scaling campaign" means the same
cells everywhere.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec


def fleet_scaling(
    model: str = "OPT-13B",
    task: str = "S",
    systems: tuple[str, ...] = ("exegpt", "orca"),
    scenarios: tuple[str, ...] = ("steady", "bursty", "diurnal"),
    replicas: tuple[int, ...] = (1, 2, 4),
    routings: tuple[str, ...] = ("jsq",),
    slo_p99_s: float = 10.0,
    per_replica_rates: tuple[float, ...] = (2.0, 4.0, 8.0),
    num_requests: int = 256,
    max_encode_batch: int = 32,
    max_queue: int = 512,
) -> CampaignSpec:
    """Fleet-scaling curves: capacity versus deployment size.

    The default grid is 2 systems x 3 scenarios x 3 fleet sizes = 18
    cells; each cell sweeps the per-replica rate ladder scaled to its
    fleet size, so the analysis module can plot max-QPS-versus-replicas
    curves and scaling efficiencies.
    """
    return CampaignSpec.online_grid(
        name="fleet-scaling",
        models=(model,),
        tasks=(task,),
        systems=systems,
        scenarios=scenarios,
        replicas=replicas,
        routings=routings,
        slo_p99_s=slo_p99_s,
        per_replica_rates=per_replica_rates,
        num_requests=num_requests,
        max_encode_batch=max_encode_batch,
        max_queue=max_queue,
    )


def routing_shootout(
    model: str = "OPT-13B",
    task: str = "S",
    systems: tuple[str, ...] = ("exegpt", "orca"),
    scenarios: tuple[str, ...] = ("steady", "bursty", "diurnal"),
    replicas: int = 4,
    routings: tuple[str, ...] = ("round-robin", "jsq", "least-outstanding-work"),
    slo_p99_s: float = 10.0,
    per_replica_rates: tuple[float, ...] = (2.0, 4.0, 8.0),
    num_requests: int = 384,
    max_encode_batch: int = 32,
) -> CampaignSpec:
    """Routing-policy comparison at a fixed fleet size (the PR 5 study)."""
    return CampaignSpec.online_grid(
        name="routing-shootout",
        models=(model,),
        tasks=(task,),
        systems=systems,
        scenarios=scenarios,
        replicas=(replicas,),
        routings=routings,
        slo_p99_s=slo_p99_s,
        per_replica_rates=per_replica_rates,
        num_requests=num_requests,
        max_encode_batch=max_encode_batch,
    )


def smoke(
    num_requests: int = 48,
    slo_p99_s: float = 20.0,
    rate_qps: float = 4.0,
) -> CampaignSpec:
    """The nightly smoke grid: 2 systems x 2 scenarios x 2 fleet sizes.

    Small enough to run in well under a minute, wide enough to cross every
    campaign code path (schedule search, fleet cloning, both fleet sizes,
    persistence).  CI runs it serial and 2-worker and asserts the merged
    traces are bit-identical.
    """
    return CampaignSpec.online_grid(
        name="smoke",
        models=("OPT-13B",),
        tasks=("S",),
        systems=("exegpt", "orca"),
        scenarios=("steady", "bursty"),
        replicas=(1, 2),
        routings=("jsq",),
        slo_p99_s=slo_p99_s,
        per_replica_rates=(rate_qps,),
        num_requests=num_requests,
        max_encode_batch=16,
        max_queue=256,
    )


PRESETS = {
    "fleet-scaling": fleet_scaling,
    "routing-shootout": routing_shootout,
    "smoke": smoke,
}


def get_preset(name: str, **kwargs) -> CampaignSpec:
    """Build a preset campaign by name."""
    key = name.lower()
    if key not in PRESETS:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown campaign preset {name!r}; known: {known}")
    return PRESETS[key](**kwargs)

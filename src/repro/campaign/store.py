"""Resumable on-disk cache of per-cell campaign result traces.

One file per cell, named by the cell's content hash, in a flat directory.
A trace document carries the spec that produced it, the derived seed, the
result payload and a checksum over the whole document:

.. code-block:: json

    {
      "schema": 1,
      "cell_hash": "<sha256 of the cell spec>",
      "spec": { ... },
      "seed": 123456789,
      "result": { ... },
      "checksum": "<sha256 of the document minus this field>"
    }

Design points:

* **Atomic writes.**  A trace is written to a unique temporary file in the
  same directory and published with :func:`os.replace`, so readers (and
  concurrent writers racing on the same cell) only ever observe either no
  file or a complete document -- never a torn one.  Two workers writing
  the same cell both succeed; the content is identical by determinism, so
  last-replace-wins is harmless.
* **Corruption is a miss, not an error.**  :meth:`TraceStore.load`
  verifies JSON well-formedness, the schema, the checksum, and that the
  embedded spec re-hashes to the file's key.  Any failure returns ``None``
  -- the runner then re-executes the cell instead of propagating a broken
  trace into analysis.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path

from repro.campaign.spec import CampaignSpec, CellSpec, canonical_json

STORE_SCHEMA = 1
TRACE_SUFFIX = ".json"


def _checksum(document: dict) -> str:
    """Checksum over the canonical encoding of the checksum-less document."""
    body = {k: v for k, v in document.items() if k != "checksum"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


class TraceStore:
    """Directory-backed store of per-cell result traces, keyed by hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    @staticmethod
    def _hash_of(key: CellSpec | str) -> str:
        return key.content_hash() if isinstance(key, CellSpec) else key

    def path_for(self, key: CellSpec | str) -> Path:
        """The trace file path of a cell (or raw hash)."""
        return self.root / f"{self._hash_of(key)}{TRACE_SUFFIX}"

    # -- writing -------------------------------------------------------------

    def save(self, cell: CellSpec, result: dict) -> Path:
        """Persist one cell's result trace atomically; returns the path."""
        cell_hash = cell.content_hash()
        document = {
            "schema": STORE_SCHEMA,
            "cell_hash": cell_hash,
            "spec": cell.to_dict(),
            "seed": cell.seed(),
            "result": result,
        }
        document["checksum"] = _checksum(document)
        path = self.path_for(cell_hash)
        tmp = self.root / f".{cell_hash}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        tmp.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    # -- reading -------------------------------------------------------------

    def load(self, key: CellSpec | str) -> dict | None:
        """The verified trace document of a cell, or ``None`` on any miss.

        Missing file, malformed JSON, wrong schema, checksum mismatch and
        a spec that no longer hashes to the file's key all count as
        misses: the cell is simply re-executed.
        """
        cell_hash = self._hash_of(key)
        path = self.path_for(cell_hash)
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("schema") != STORE_SCHEMA:
            return None
        if document.get("cell_hash") != cell_hash:
            return None
        if document.get("checksum") != _checksum(document):
            return None
        try:
            spec = CellSpec.from_dict(document["spec"])
        except (KeyError, TypeError, ValueError):
            return None
        if spec.content_hash() != cell_hash:
            return None
        return document

    def has(self, key: CellSpec | str) -> bool:
        """Whether a *verified* trace exists for the cell."""
        return self.load(key) is not None

    def missing(self, spec: CampaignSpec) -> tuple[CellSpec, ...]:
        """The cells of a campaign without a verified stored trace."""
        return tuple(cell for cell in spec if not self.has(cell))

    # -- maintenance ---------------------------------------------------------

    def hashes(self) -> tuple[str, ...]:
        """Hashes of every trace file present (verified or not), sorted."""
        return tuple(
            sorted(p.stem for p in self.root.glob(f"*{TRACE_SUFFIX}"))
        )

    def __len__(self) -> int:
        return len(self.hashes())

    def delete(self, key: CellSpec | str) -> bool:
        """Remove one cell's trace; returns whether a file was deleted."""
        path = self.path_for(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

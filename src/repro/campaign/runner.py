"""Campaign execution: multiprocess fan-out with resumable persistence.

Every cell is an independent simulation, so a campaign is embarrassingly
parallel: the runner partitions the grid into *missing* cells (no verified
trace in the store) and *hits* (pure loads -- no simulation), executes the
missing ones either in-process or across a
:class:`~concurrent.futures.ProcessPoolExecutor`, and persists each result
as it completes, so an interrupted campaign resumes from the store.

**Nothing heavy crosses a process boundary.**  Workers receive only the
picklable :class:`~repro.campaign.spec.CellSpec` and return only the
JSON-safe result payload; engines, online servers and fleets are rebuilt
*inside* the worker from the spec and memoized in module-level
**per-process caches** (:data:`_ENGINES`, :data:`_EVALUATOR_CACHES`).  The
caches hold exactly the state that must stay per-process -- the lazily
profiled :class:`~repro.core.exegpt.ExeGPT` (and with it the simulator's
memoized ``EstimateContext``), the per-system searched servers and the
per-(system, N, policy) fleet cache -- and they are keyed only by content
that determines results, so warm caches never change what a cell computes.

Determinism contract: a cell's payload is a pure function of its spec.
Its seed is derived from the spec's content hash
(:meth:`~repro.campaign.spec.CellSpec.seed`), so results are independent
of worker count, placement and execution order -- parallel, resumed and
serial campaigns merge to bit-identical traces.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.campaign.spec import CampaignSpec, CellSpec, EngineSpec
from repro.campaign.store import TraceStore

# ---------------------------------------------------------------------------
# Per-process caches (worker-side state that must never be pickled)
# ---------------------------------------------------------------------------

#: Engines by spec: profile tables, simulators and their EstimateContext
#: are built lazily on first use and belong to exactly this process.
_ENGINES: dict[EngineSpec, object] = {}

#: Derived paper latency bounds by engine spec (deterministic, so caching
#: is a pure speedup).
_BOUNDS: dict[EngineSpec, object] = {}

#: Shared OnlineEvaluator server/fleet caches by (engine spec, SLO shape):
#: the evaluator itself is rebuilt per cell (it binds the cell's trace and
#: seed), but the searched servers and cloned fleets -- the expensive part
#: -- are shared across every cell of the process with the same engine and
#: SLO configuration.
_EVALUATOR_CACHES: dict[tuple, tuple[dict, dict]] = {}


def _engine(spec: EngineSpec):
    """The process-local engine for a spec (profiled on first use)."""
    if spec not in _ENGINES:
        _ENGINES[spec] = spec.build()
    return _ENGINES[spec]


def clear_process_caches() -> None:
    """Drop every per-process cache (tests use this to force cold paths)."""
    _ENGINES.clear()
    _BOUNDS.clear()
    _EVALUATOR_CACHES.clear()


# ---------------------------------------------------------------------------
# Cell execution (runs inside the worker process)
# ---------------------------------------------------------------------------


def execute_cell(cell: CellSpec) -> dict:
    """Run one cell and return its JSON-safe result payload.

    This is the function shipped to pool workers; it must stay
    module-level (picklable by reference) and must not capture live
    simulation objects.
    """
    if cell.mode == "online":
        return _execute_online(cell)
    return _execute_offline(cell)


def _trace(cell: CellSpec):
    from repro.workloads.synthetic import generate_task_trace
    from repro.workloads.tasks import get_task

    return generate_task_trace(
        get_task(cell.task), num_requests=cell.num_requests, seed=cell.trace_seed
    )


def _execute_online(cell: CellSpec) -> dict:
    """Rate-sweep one fleet deployment; summarize every rate point."""
    from repro.serving.online import OnlineEvaluator
    from repro.serving.sla import SLA, SLAKind

    engine = _engine(cell.engine_spec())
    slo = SLA(
        kind=SLAKind.QUERY_PERCENTILE, bound_s=cell.slo_p99_s, percentile=99.0
    )
    cache_key = (
        cell.engine_spec(),
        cell.slo_p99_s,
        cell.max_queue,
        cell.schedule_headroom,
        cell.max_rejection_rate,
    )
    servers, fleets = _EVALUATOR_CACHES.setdefault(cache_key, ({}, {}))
    evaluator = OnlineEvaluator(
        engine,
        _trace(cell),
        slo,
        max_queue=cell.max_queue,
        schedule_headroom=cell.schedule_headroom,
        max_rejection_rate=cell.max_rejection_rate,
        seed=cell.seed(),
        servers=servers,
        fleets=fleets,
    )
    points = evaluator.sweep(
        cell.system,
        cell.scenario,
        list(cell.rates),
        stop_after_failure=True,
        replicas=cell.replicas,
        routing=cell.routing,
    )
    max_qps = max((p.rate_qps for p in points if p.sustainable), default=0.0)
    rows = []
    for point in points:
        result = point.result
        rows.append(
            {
                "rate_qps": point.rate_qps,
                "sustainable": point.sustainable,
                "offered": result.offered,
                "completed": result.completed,
                "rejected": result.rejected,
                "shed": result.shed,
                "p99_latency_s": result.latency_percentile(99.0),
                "p99_ttft_s": result.ttft_percentile(99.0),
                "p99_queue_delay_s": result.queue_delay_percentile(99.0),
                "mean_latency_s": result.mean_latency_s,
                "attainment": result.attainment(slo),
                "makespan_s": result.makespan_s,
            }
        )
    return {
        "mode": "online",
        "system": cell.system,
        "scenario": cell.scenario,
        "replicas": cell.replicas,
        "routing": cell.routing,
        "slo_p99_s": cell.slo_p99_s,
        "points": rows,
        "max_sustainable_qps": max_qps,
    }


def _offline_constraint(cell: CellSpec, engine):
    """Resolve the cell's bound reference to a LatencyConstraint."""
    from repro.core.config import LatencyConstraint
    from repro.serving.evaluation import default_baselines
    from repro.serving.latency_bounds import derive_latency_bounds
    from repro.workloads.tasks import get_task

    target_length = get_task(cell.task).output_p99
    if cell.bound == "inf":
        return LatencyConstraint(
            bound_s=float("inf"), target_length=target_length, label="Inf"
        )
    if cell.bound in ("b0", "b1", "b2", "b3"):
        spec = cell.engine_spec()
        if spec not in _BOUNDS:
            (ft,) = default_baselines(engine, ("ft",))
            _BOUNDS[spec] = derive_latency_bounds(ft, target_length=target_length)
        return _BOUNDS[spec].as_list()[int(cell.bound[1])]
    return LatencyConstraint(bound_s=float(cell.bound), target_length=target_length)


def _execute_offline(cell: CellSpec) -> dict:
    """One paper-figure measurement: system x trace x latency bound."""
    from repro.core.config import SchedulePolicy
    from repro.serving.evaluation import (
        default_baselines,
        measure_baseline,
        measure_exegpt,
    )

    engine = _engine(cell.engine_spec())
    constraint = _offline_constraint(cell, engine)
    trace = _trace(cell)
    if cell.system.lower() == "exegpt":
        measurement = measure_exegpt(
            engine,
            trace,
            constraint,
            policies=tuple(SchedulePolicy(p) for p in cell.policies),
        )
    else:
        (baseline,) = default_baselines(engine, (cell.system.lower(),))
        measurement = measure_baseline(baseline, trace, constraint)
    return {"mode": "offline", "measurement": dict(measurement.__dict__)}


# ---------------------------------------------------------------------------
# The campaign runner
# ---------------------------------------------------------------------------


@dataclass
class CampaignResult:
    """Merged outcome of one campaign run.

    Attributes:
        spec: The campaign that was run.
        traces: Verified trace documents by cell hash (every cell present).
        executed: Hashes of the cells simulated in this run.
        loaded: Hashes of the cells satisfied from the store (pure loads).
    """

    spec: CampaignSpec
    traces: dict[str, dict]
    executed: tuple[str, ...]
    loaded: tuple[str, ...]

    def trace_of(self, cell: CellSpec) -> dict:
        """The trace document of one cell."""
        return self.traces[cell.content_hash()]

    def payloads(self) -> list[tuple[CellSpec, dict]]:
        """(cell, result payload) pairs in spec order."""
        return [
            (cell, self.traces[cell.content_hash()]["result"])
            for cell in self.spec
        ]


def default_workers() -> int:
    """Worker-count default: the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class CampaignRunner:
    """Executes campaigns: fan-out, persistence, resume.

    Args:
        store: Trace store for persistence and resume (None = in-memory
            only; nothing survives the run).
        workers: Process fan-out width.  1 executes in-process (sharing
            this process's caches); N > 1 uses a process pool.  Results
            are identical either way -- see the module docstring.
        mp_context: Multiprocessing start-method context for the pool
            (default: "fork" where available, else the platform default --
            forked workers inherit the parent's warm engine caches).
    """

    def __init__(
        self,
        store: TraceStore | None = None,
        workers: int = 1,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = workers
        if mp_context is None and "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        self.mp_context = mp_context

    def run(
        self,
        spec: CampaignSpec,
        force: bool = False,
        progress=None,
    ) -> CampaignResult:
        """Execute a campaign, loading stored cells and simulating the rest.

        Args:
            spec: The campaign grid.
            force: Re-execute every cell even when a stored trace exists.
            progress: Optional ``callback(cell, outcome)`` invoked with
                ``"loaded"`` or ``"executed"`` as each cell completes.

        Returns:
            The merged result; with a store attached, every executed
            cell's trace has already been persisted (as it completed, so
            an interrupt loses at most in-flight cells).
        """
        traces: dict[str, dict] = {}
        loaded: list[str] = []
        pending: list[CellSpec] = []
        for cell in spec:
            cell_hash = cell.content_hash()
            document = (
                None if (force or self.store is None) else self.store.load(cell_hash)
            )
            if document is not None:
                traces[cell_hash] = document
                loaded.append(cell_hash)
                if progress is not None:
                    progress(cell, "loaded")
            else:
                pending.append(cell)

        executed: list[str] = []
        for cell, result in self._execute(pending):
            cell_hash = cell.content_hash()
            if self.store is not None:
                self.store.save(cell, result)
                document = self.store.load(cell_hash)
            else:
                document = {
                    "schema": 1,
                    "cell_hash": cell_hash,
                    "spec": cell.to_dict(),
                    "seed": cell.seed(),
                    "result": result,
                }
            traces[cell_hash] = document
            executed.append(cell_hash)
            if progress is not None:
                progress(cell, "executed")
        return CampaignResult(
            spec=spec,
            traces=traces,
            executed=tuple(executed),
            loaded=tuple(loaded),
        )

    def _execute(self, cells: list[CellSpec]):
        """Yield (cell, result) as cells finish, serial or fanned out."""
        if not cells:
            return
        if self.workers == 1 or len(cells) == 1:
            for cell in cells:
                yield cell, execute_cell(cell)
            return
        workers = min(self.workers, len(cells))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=self.mp_context
        ) as pool:
            futures = {pool.submit(execute_cell, cell): cell for cell in cells}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()

"""Campaign CLI: run, resume and analyze preset campaigns.

Usage::

    python -m repro.campaign run fleet-scaling --store traces/ --workers 4
    python -m repro.campaign analyze fleet-scaling --store traces/
    python -m repro.campaign smoke --store traces-smoke/ --workers 2

``run`` executes only the cells missing from the store (resume is the
default behavior); ``analyze`` touches no simulation at all.  ``smoke``
runs the small nightly grid twice -- serial and fanned out -- and exits
non-zero unless the merged traces are bit-identical.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.campaign.analysis import (
    format_capacity_table,
    format_scaling_curves,
    load_campaign,
)
from repro.campaign.presets import PRESETS, get_preset
from repro.campaign.runner import CampaignRunner, default_workers
from repro.campaign.spec import canonical_json
from repro.campaign.store import TraceStore


def _progress(cell, outcome: str) -> None:
    print(f"  [{outcome:>8}] {cell.describe()}", flush=True)


def _cmd_run(args) -> int:
    spec = get_preset(args.preset)
    store = TraceStore(args.store) if args.store else None
    runner = CampaignRunner(store=store, workers=args.workers)
    start = time.perf_counter()
    result = runner.run(spec, force=args.force, progress=_progress)
    elapsed = time.perf_counter() - start
    print(
        f"campaign {spec.name!r}: {len(spec)} cells, "
        f"{len(result.executed)} executed, {len(result.loaded)} loaded "
        f"in {elapsed:.1f} s with {args.workers} worker(s)"
    )
    print(format_capacity_table(result, title="\nCapacity by cell:"))
    curves = format_scaling_curves(result, title="\nFleet-scaling curves:")
    if curves.strip():
        print(curves)
    return 0


def _cmd_analyze(args) -> int:
    spec = get_preset(args.preset)
    result = load_campaign(TraceStore(args.store), spec)
    print(format_capacity_table(result, title=f"Campaign {spec.name!r}:"))
    curves = format_scaling_curves(result, title="\nFleet-scaling curves:")
    if curves.strip():
        print(curves)
    return 0


def _cmd_smoke(args) -> int:
    spec = get_preset("smoke")
    store = TraceStore(args.store)
    serial_store = TraceStore(store.root / "serial")
    parallel_store = TraceStore(store.root / "parallel")

    start = time.perf_counter()
    serial = CampaignRunner(store=serial_store, workers=1).run(spec)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = CampaignRunner(store=parallel_store, workers=args.workers).run(spec)
    parallel_s = time.perf_counter() - start

    mismatches = [
        cell.describe()
        for cell in spec
        if canonical_json(serial.trace_of(cell))
        != canonical_json(parallel.trace_of(cell))
    ]
    print(
        f"smoke: {len(spec)} cells, serial {serial_s:.1f} s, "
        f"{args.workers}-worker {parallel_s:.1f} s, "
        f"{len(mismatches)} mismatched cells"
    )
    if mismatches:
        for description in mismatches:
            print(f"  MISMATCH: {description}", file=sys.stderr)
        return 1
    print(format_capacity_table(parallel, title="\nSmoke capacities:"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a preset campaign (resumes)")
    run.add_argument("preset", choices=sorted(PRESETS))
    run.add_argument("--store", default=None, help="trace directory")
    run.add_argument("--workers", type=int, default=default_workers())
    run.add_argument(
        "--force", action="store_true", help="re-execute cached cells too"
    )
    run.set_defaults(func=_cmd_run)

    analyze = sub.add_parser(
        "analyze", help="regenerate tables from stored traces (no simulation)"
    )
    analyze.add_argument("preset", choices=sorted(PRESETS))
    analyze.add_argument("--store", required=True)
    analyze.set_defaults(func=_cmd_analyze)

    smoke = sub.add_parser(
        "smoke", help="nightly grid, serial vs fanned out, bit-parity gate"
    )
    smoke.add_argument("--store", required=True)
    smoke.add_argument("--workers", type=int, default=2)
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Parallel experiment-campaign orchestration with a resumable trace cache.

The evaluation platform layer: declare a grid of independent simulation
cells (:class:`CampaignSpec`), execute it with multiprocess fan-out and
per-cell persistence (:class:`CampaignRunner` + :class:`TraceStore`), and
regenerate tables/figures/scaling curves from the stored traces without
re-simulating (:mod:`repro.campaign.analysis`).

Quick start::

    from repro.campaign import CampaignRunner, TraceStore, get_preset

    spec = get_preset("fleet-scaling")
    runner = CampaignRunner(store=TraceStore("traces/"), workers=4)
    result = runner.run(spec)              # executes missing cells only
    print(format_scaling_curves(result))   # pure analysis, no simulation

Re-running after an interrupt (or after extending the grid) executes only
the cells without a verified stored trace; everything else is a pure
load, and the merged result is bit-identical to a single-shot serial run.
"""

from repro.campaign.analysis import (
    capacity_rows,
    format_capacity_table,
    format_scaling_curves,
    load_campaign,
    measurements,
    rate_rows,
    scaling_curves,
    scaling_efficiency,
)
from repro.campaign.presets import PRESETS, get_preset
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    default_workers,
    execute_cell,
)
from repro.campaign.spec import CampaignSpec, CellSpec, EngineSpec, canonical_json
from repro.campaign.store import TraceStore

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CellSpec",
    "EngineSpec",
    "PRESETS",
    "TraceStore",
    "canonical_json",
    "capacity_rows",
    "default_workers",
    "execute_cell",
    "format_capacity_table",
    "format_scaling_curves",
    "get_preset",
    "load_campaign",
    "measurements",
    "rate_rows",
    "scaling_curves",
    "scaling_efficiency",
]

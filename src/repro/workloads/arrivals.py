"""Arrival processes: load generation for online (arrival-driven) serving.

Offline replay treats every request as "already queued" (``arrival_s = 0``);
online serving instead feeds the engine a *stream* of requests whose arrival
times follow a stochastic process.  This module provides the three named
traffic scenarios used by :mod:`repro.serving.online`:

* ``steady``  -- a homogeneous Poisson process: independent exponential
  inter-arrival times with coefficient of variation (CV) 1.  The classic
  open-loop load model.
* ``bursty``  -- a Markov-modulated Poisson process with two phases (calm
  and burst).  Phase sojourn times are exponential; the burst phase arrives
  ``burst_factor`` times faster than the calm phase and occupies
  ``burst_fraction`` of wall-clock time, so the *time-averaged* rate equals
  ``rate_qps`` while inter-arrival CV rises well above 1.
* ``diurnal`` -- an inhomogeneous Poisson process whose intensity ramps
  sinusoidally between ``rate_qps * (1 - amplitude)`` and
  ``rate_qps * (1 + amplitude)`` over ``period_s`` seconds (a compressed
  day/night cycle), sampled by thinning.  The period-averaged rate equals
  ``rate_qps``.

Every process is a frozen dataclass: construction is cheap, ``with_rate``
re-targets the mean rate for rate sweeps, and all sampling goes through an
explicit seed (or :class:`numpy.random.Generator`), so a (process, seed,
num_requests) triple always yields the same arrival times.

``attach_arrivals`` stamps the sampled times onto an existing
:class:`~repro.workloads.trace.WorkloadTrace`, turning an offline trace into
an online one without touching its length distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.workloads.trace import WorkloadTrace


def _as_rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


#: Draws per array call of the chunked samplers.  Module-level so the
#: chunk-parity tests can shrink it to exercise chunk boundaries.
_GAP_CHUNK = 8192


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class of arrival processes.

    Attributes:
        rate_qps: Time-averaged arrival rate in requests per second.
    """

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")

    @property
    def name(self) -> str:
        """Scenario name of the process."""
        raise NotImplementedError

    def with_rate(self, rate_qps: float) -> "ArrivalProcess":
        """A copy of the process re-targeted to a new mean rate."""
        return replace(self, rate_qps=rate_qps)

    def scaled(self, factor: float) -> "ArrivalProcess":
        """The process with its mean rate scaled by ``factor``.

        The fleet-sweep helper: an N-replica deployment is offered N times
        the per-replica rate, with the scenario's burst/ramp *shape*
        unchanged (only the intensity scales).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return self.with_rate(self.rate_qps * factor)

    def arrival_times(
        self, num_requests: int, seed: int | np.random.Generator = 0
    ) -> np.ndarray:
        """Sample ``num_requests`` increasing arrival timestamps (seconds).

        Deterministic for a given (process, seed, num_requests) triple.
        """
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if num_requests == 0:
            return np.array([], dtype=float)
        return self._sample(num_requests, _as_rng(seed))

    def _sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals (the ``steady`` scenario)."""

    @property
    def name(self) -> str:
        return "steady"

    def _sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(1.0 / self.rate_qps, size=num_requests)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class BurstyProcess(ArrivalProcess):
    """Two-phase Markov-modulated Poisson arrivals (the ``bursty`` scenario).

    Attributes:
        burst_factor: Ratio of the burst-phase rate to the calm-phase rate.
        burst_fraction: Fraction of wall-clock time spent in the burst phase.
        mean_burst_s: Mean sojourn time of one burst; the calm sojourn is
            derived so the time fraction in bursts equals ``burst_fraction``.
    """

    burst_factor: float = 8.0
    burst_fraction: float = 0.1
    mean_burst_s: float = 5.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.mean_burst_s <= 0:
            raise ValueError("mean_burst_s must be positive")

    @property
    def name(self) -> str:
        return "bursty"

    @property
    def calm_rate_qps(self) -> float:
        """Arrival rate of the calm phase."""
        f = self.burst_fraction
        return self.rate_qps / ((1.0 - f) + f * self.burst_factor)

    @property
    def burst_rate_qps(self) -> float:
        """Arrival rate of the burst phase."""
        return self.calm_rate_qps * self.burst_factor

    @property
    def mean_calm_s(self) -> float:
        """Mean sojourn time of one calm phase."""
        f = self.burst_fraction
        return self.mean_burst_s * (1.0 - f) / f

    def _sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        # Chunked form of the historical per-gap scalar loop, consuming the
        # SAME rng stream: arrays of exponential draws are bit-identical to
        # sequential scalar draws, cumsum over [elapsed, gaps] reproduces
        # the sequential float accumulation exactly, and when a phase ends
        # mid-chunk the generator state is rewound and only the draws the
        # scalar loop would have made (the kept gaps plus the overflowing
        # one) are re-consumed.  A million-arrival bursty trace is a few
        # hundred array calls instead of a million scalar ones.
        times = np.empty(num_requests, dtype=float)
        count = 0
        t = 0.0
        in_burst = bool(rng.random() < self.burst_fraction)
        while count < num_requests:
            sojourn = rng.exponential(
                self.mean_burst_s if in_burst else self.mean_calm_s
            )
            scale = 1.0 / (
                self.burst_rate_qps if in_burst else self.calm_rate_qps
            )
            elapsed = 0.0
            while count < num_requests:
                chunk = min(num_requests - count, _GAP_CHUNK)
                state = rng.bit_generator.state
                gaps = rng.exponential(scale, size=chunk)
                cumulative = np.cumsum(np.concatenate(([elapsed], gaps)))[1:]
                over = np.nonzero(cumulative > sojourn)[0]
                if over.size:
                    kept = int(over[0])
                    if kept + 1 < chunk:
                        rng.bit_generator.state = state
                        rng.exponential(scale, size=kept + 1)
                    times[count:count + kept] = t + cumulative[:kept]
                    count += kept
                    break
                times[count:count + chunk] = t + cumulative
                count += chunk
                elapsed = float(cumulative[-1])
            t += sojourn
            in_burst = not in_burst
        return times


@dataclass(frozen=True)
class DiurnalProcess(ArrivalProcess):
    """Sinusoidally-ramping inhomogeneous Poisson arrivals (``diurnal``).

    The intensity ``lambda(t) = rate_qps * (1 - amplitude*cos(2*pi*t/period))``
    starts at its trough (night), peaks at half a period (midday) and averages
    exactly ``rate_qps`` over a full period.  Sampling uses Lewis-Shedler
    thinning against the peak intensity.

    Attributes:
        period_s: Length of one ramp cycle in seconds.
        amplitude: Relative swing of the intensity, in [0, 1).
    """

    period_s: float = 120.0
    amplitude: float = 0.6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")

    @property
    def name(self) -> str:
        return "diurnal"

    def intensity(self, t):
        """Instantaneous arrival rate at time ``t`` (scalar or array)."""
        return self.rate_qps * (
            1.0 - self.amplitude * np.cos(2.0 * np.pi * t / self.period_s)
        )

    def _sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        # Vectorized Lewis-Shedler thinning: candidate gaps, candidate
        # times and acceptance tests are drawn per chunk instead of per
        # candidate.  The thinned process is distributionally identical to
        # the historical scalar loop, but the draw *order* differs (gaps
        # then uniforms per chunk, not interleaved), so sampled streams
        # changed at the switch -- only seeded determinism and the process
        # statistics are pinned, not the exact historical values.
        peak = self.rate_qps * (1.0 + self.amplitude)
        # Mean acceptance is 1/(1 + amplitude); oversample accordingly.
        oversample = 1.0 + self.amplitude
        times = np.empty(num_requests, dtype=float)
        count = 0
        t = 0.0
        while count < num_requests:
            remaining = num_requests - count
            chunk = min(int(remaining * oversample) + 16, _GAP_CHUNK)
            gaps = rng.exponential(1.0 / peak, size=chunk)
            candidates = t + np.cumsum(gaps)
            accept = rng.random(size=chunk) * peak <= self.intensity(candidates)
            kept = candidates[accept]
            take = min(int(kept.size), remaining)
            times[count:count + take] = kept[:take]
            count += take
            if count < num_requests:
                t = float(candidates[-1])
        return times


SCENARIOS: dict[str, type[ArrivalProcess]] = {
    "steady": PoissonProcess,
    "bursty": BurstyProcess,
    "diurnal": DiurnalProcess,
}


def known_scenarios() -> tuple[str, ...]:
    """Names of the registered traffic scenarios."""
    return tuple(sorted(SCENARIOS))


def make_scenario(name: str, rate_qps: float, **kwargs) -> ArrivalProcess:
    """Instantiate a registered scenario at a mean rate.

    Args:
        name: One of :func:`known_scenarios`.
        rate_qps: Time-averaged arrival rate.
        **kwargs: Scenario-specific parameters (e.g. ``burst_factor``).
    """
    key = name.lower()
    if key not in SCENARIOS:
        known = ", ".join(known_scenarios())
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")
    return SCENARIOS[key](rate_qps=rate_qps, **kwargs)


def make_fleet_scenario(
    name: str, per_replica_qps: float, replicas: int, **kwargs
) -> ArrivalProcess:
    """A registered scenario offered to an N-replica fleet.

    The fleet-wide mean rate is ``per_replica_qps * replicas`` -- the load
    N single servers would each see at ``per_replica_qps`` -- so capacity
    comparisons across deployment sizes hold the per-replica load fixed.

    Args:
        name: One of :func:`known_scenarios`.
        per_replica_qps: Per-replica time-averaged arrival rate.
        replicas: Deployment size.
        **kwargs: Scenario-specific parameters (e.g. ``burst_factor``).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return make_scenario(name, per_replica_qps, **kwargs).scaled(replicas)


# -- chaos scenarios: arrivals + faults + admission, as one named bundle ------


@dataclass(frozen=True)
class ChaosScenario:
    """A named operational-realism scenario for a fleet serve.

    Bundles the three planes a chaos run configures: the arrival process
    (offered load), the fault schedule (crashes / stragglers) and the
    admission policy (shedding).  ``faults`` / ``admission`` are ``None``
    when the scenario does not exercise that plane -- a fault-free bundle
    serves bit-identically to a plain fleet run.
    """

    name: str
    process: ArrivalProcess
    faults: object | None = None
    admission: object | None = None


def _chaos_replica_flap(rate_qps, replicas, seed, *, mtbf_s=40.0,
                        mttr_s=5.0, horizon_s=120.0, warmup_s=1.0):
    """Steady traffic while replicas flap: seeded exponential up/down
    alternation per replica, with a restart warm-up."""
    from repro.serving.faults import FaultSchedule

    return ChaosScenario(
        name="replica_flap",
        process=PoissonProcess(rate_qps=rate_qps),
        faults=FaultSchedule.flap(
            replicas, mtbf_s=mtbf_s, mttr_s=mttr_s, horizon_s=horizon_s,
            seed=seed, warmup_s=warmup_s,
        ),
    )


def _chaos_straggler(rate_qps, replicas, seed, *, slowdown=4.0):
    """Steady traffic with replica 0 a straggler: every iteration on it
    takes ``slowdown`` times as long, so queue-aware routing must route
    around it."""
    from repro.serving.faults import FaultSchedule

    return ChaosScenario(
        name="straggler",
        process=PoissonProcess(rate_qps=rate_qps),
        faults=FaultSchedule(slowdowns=(float(slowdown),)),
    )


def _chaos_flash_crowd_shed(rate_qps, replicas, seed, *, burst_factor=8.0,
                            burst_fraction=0.5, max_wait_s=30.0):
    """A flash crowd against predicted-cost load shedding: bursty arrivals
    overload the fleet and the admission policy sheds what it cannot
    serve within ``max_wait_s`` of predicted queueing."""
    from repro.serving.faults import LoadSheddingPolicy

    return ChaosScenario(
        name="flash_crowd_shed",
        process=BurstyProcess(
            rate_qps=rate_qps,
            burst_factor=burst_factor,
            burst_fraction=burst_fraction,
        ),
        admission=LoadSheddingPolicy(max_wait_s=max_wait_s),
    )


#: Chaos-scenario factories: ``f(rate_qps, replicas, seed, **kwargs)``.
#: The serving-layer imports happen inside the factories (the serving
#: modules import this module at load time).
CHAOS_SCENARIOS = {
    "replica_flap": _chaos_replica_flap,
    "straggler": _chaos_straggler,
    "flash_crowd_shed": _chaos_flash_crowd_shed,
}


def known_chaos_scenarios() -> tuple[str, ...]:
    """Names of the registered chaos scenarios."""
    return tuple(sorted(CHAOS_SCENARIOS))


def make_chaos_scenario(
    name: str, rate_qps: float, replicas: int, seed: int = 0, **kwargs
) -> ChaosScenario:
    """Instantiate a registered chaos scenario.

    Args:
        name: One of :func:`known_chaos_scenarios`.
        rate_qps: Fleet-wide time-averaged arrival rate.
        replicas: Deployment size the fault schedule targets.
        seed: Seed of the fault process (arrival sampling is seeded
            separately, at :func:`attach_arrivals` time).
        **kwargs: Scenario-specific parameters (e.g. ``mtbf_s``,
            ``slowdown``, ``max_wait_s``).
    """
    key = name.lower()
    if key not in CHAOS_SCENARIOS:
        known = ", ".join(known_chaos_scenarios())
        raise KeyError(
            f"unknown chaos scenario {name!r}; known scenarios: {known}"
        )
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return CHAOS_SCENARIOS[key](float(rate_qps), int(replicas), int(seed),
                                **kwargs)


def fleet_rates(
    rates, replicas: int
) -> tuple[float, ...]:
    """Scale a per-replica rate grid to fleet-wide offered rates."""
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return tuple(float(rate) * replicas for rate in rates)


def attach_arrivals(
    trace: WorkloadTrace,
    process: ArrivalProcess,
    seed: int | np.random.Generator = 0,
) -> WorkloadTrace:
    """Stamp sampled arrival times onto a trace's requests.

    Request order, ids and length distributions are preserved; arrival times
    are increasing, so request order remains arrival order.
    """
    times = process.arrival_times(len(trace), seed)
    requests = [
        replace(spec, arrival_s=float(t))
        for spec, t in zip(trace.requests, times)
    ]
    return WorkloadTrace(
        name=f"{trace.name}@{process.name}-{process.rate_qps:g}qps",
        requests=requests,
        input_distribution=trace.input_distribution,
        output_distribution=trace.output_distribution,
    )


def empirical_rate(arrival_times: np.ndarray) -> float:
    """Observed mean arrival rate of a sampled arrival sequence."""
    times = np.asarray(arrival_times, dtype=float)
    if times.size < 2 or times[-1] <= 0:
        return 0.0
    return float(times.size / times[-1])


def interarrival_cv(arrival_times: np.ndarray) -> float:
    """Coefficient of variation of the inter-arrival gaps (1 for Poisson)."""
    times = np.asarray(arrival_times, dtype=float)
    if times.size < 2:
        return 0.0
    gaps = np.diff(np.concatenate(([0.0], times)))
    mean = float(gaps.mean())
    if mean <= 0:
        return 0.0
    return float(gaps.std() / mean)

"""NLP task definitions (Table 3 of the paper).

| Task                  | ID | Input (avg, std, max) | Output (avg, std, 99th, max) |
|-----------------------|----|-----------------------|------------------------------|
| Summarization         | S  | (256, 252, 512)       | (32, 13, 63, 80)             |
| Translation           | T  | (128, 81, 256)        | (128, 68, 292, 320)          |
| Code generation       | G  | (64, 23, 128)         | (192, 93, 417, 480)          |
| Conversational Q&A    | C1 | (256, 115, 512)       | (64, 30, 137, 160)           |
| Conversational Q&A    | C2 | (512, 252, 1024)      | (256, 134, 579, 640)         |

Each task provides the truncated-normal input and output length
distributions with those statistics, plus the input/output correlation the
paper measured in the underlying datasets (low for everything except
translation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distributions import SequenceDistribution


@dataclass(frozen=True)
class TaskSpec:
    """A benchmark NLP task with its sequence-length statistics.

    Attributes:
        task_id: Short identifier used in the paper's figures (S, T, G, C1, C2).
        name: Human-readable task name.
        input_mean / input_std / input_max: Input-length statistics.
        output_mean / output_std / output_p99 / output_max: Output-length
            statistics; ``output_p99`` is the 99th-percentile length used to
            define latency bounds.
        correlation: Pearson correlation between input and output lengths
            observed in the source datasets.
    """

    task_id: str
    name: str
    input_mean: float
    input_std: float
    input_max: int
    output_mean: float
    output_std: float
    output_p99: int
    output_max: int
    correlation: float = 0.15

    def input_distribution(self) -> SequenceDistribution:
        """Truncated-normal distribution of input lengths."""
        return SequenceDistribution.truncated_normal(
            self.input_mean,
            self.input_std,
            self.input_max,
            name=f"{self.task_id}-input",
        )

    def output_distribution(self) -> SequenceDistribution:
        """Truncated-normal distribution of output lengths."""
        return SequenceDistribution.truncated_normal(
            self.output_mean,
            self.output_std,
            self.output_max,
            name=f"{self.task_id}-output",
        )


SUMMARIZATION = TaskSpec(
    task_id="S",
    name="Summarization",
    input_mean=256, input_std=252, input_max=512,
    output_mean=32, output_std=13, output_p99=63, output_max=80,
    correlation=0.15,
)

TRANSLATION = TaskSpec(
    task_id="T",
    name="Translation",
    input_mean=128, input_std=81, input_max=256,
    output_mean=128, output_std=68, output_p99=292, output_max=320,
    correlation=0.75,
)

CODE_GENERATION = TaskSpec(
    task_id="G",
    name="Code Generation",
    input_mean=64, input_std=23, input_max=128,
    output_mean=192, output_std=93, output_p99=417, output_max=480,
    correlation=0.12,
)

CONVERSATIONAL_QA_SHORT = TaskSpec(
    task_id="C1",
    name="Conversational Q&A (short)",
    input_mean=256, input_std=115, input_max=512,
    output_mean=64, output_std=30, output_p99=137, output_max=160,
    correlation=0.18,
)

CONVERSATIONAL_QA_LONG = TaskSpec(
    task_id="C2",
    name="Conversational Q&A (long)",
    input_mean=512, input_std=252, input_max=1024,
    output_mean=256, output_std=134, output_p99=579, output_max=640,
    correlation=0.21,
)

ALL_TASKS: dict[str, TaskSpec] = {
    "S": SUMMARIZATION,
    "T": TRANSLATION,
    "G": CODE_GENERATION,
    "C1": CONVERSATIONAL_QA_SHORT,
    "C2": CONVERSATIONAL_QA_LONG,
}


def get_task(task_id: str) -> TaskSpec:
    """Look up a task by its paper identifier (case-insensitive)."""
    key = task_id.upper()
    if key not in ALL_TASKS:
        known = ", ".join(sorted(ALL_TASKS))
        raise KeyError(f"unknown task {task_id!r}; known tasks: {known}")
    return ALL_TASKS[key]


def known_tasks() -> list[str]:
    """IDs of all defined tasks."""
    return sorted(ALL_TASKS)

"""Real-world-dataset-like workloads (Section 7.5).

The paper's real-dataset experiments use WMT-16 En-De (translation), the
Stanford Alpaca instruction dataset (conversational Q&A) and CNN/DailyMail
(summarization).  We cannot ship those datasets, so this module provides
samplers that reproduce the *length statistics that matter to scheduling*:
the published mean/std of input and output lengths, the strong right
(long-tail) skew of real outputs that the paper highlights as the reason
ExeGPT's gains grow on real data, and the input/output correlation structure
(high for WMT translation, low for the others).

Lengths are drawn from a log-normal body (naturally right-skewed) clipped to
the dataset's maximum, with a Gaussian copula providing the correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.distributions import SequenceDistribution
from repro.workloads.trace import RequestSpec, WorkloadTrace


@dataclass(frozen=True)
class RealDatasetSpec:
    """Length statistics of a real dataset.

    Attributes:
        name: Dataset name as used in Figure 10 (WMT, Alpaca, CNN).
        task: The NLP task the dataset represents.
        input_median / input_sigma / input_max: Log-normal parameters of the
            input length (median and log-space sigma) and a hard cap.
        output_median / output_sigma / output_max: Same for output lengths.
        correlation: Input/output length correlation.
    """

    name: str
    task: str
    input_median: float
    input_sigma: float
    input_max: int
    output_median: float
    output_sigma: float
    output_max: int
    correlation: float

    def sample_pairs(
        self, num_requests: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw (input, output) length pairs with the dataset's statistics."""
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if num_requests == 0:
            return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        cov = np.array([[1.0, self.correlation], [self.correlation, 1.0]])
        normals = rng.multivariate_normal([0.0, 0.0], cov, size=num_requests)
        inputs = np.exp(np.log(self.input_median) + self.input_sigma * normals[:, 0])
        outputs = np.exp(np.log(self.output_median) + self.output_sigma * normals[:, 1])
        inputs = np.clip(np.round(inputs), 1, self.input_max).astype(np.int64)
        outputs = np.clip(np.round(outputs), 1, self.output_max).astype(np.int64)
        return inputs, outputs


WMT = RealDatasetSpec(
    name="WMT",
    task="translation",
    input_median=26.0, input_sigma=0.55, input_max=256,
    output_median=27.0, output_sigma=0.55, output_max=320,
    correlation=0.9,
)

ALPACA = RealDatasetSpec(
    name="Alpaca",
    task="conversational-qa",
    input_median=18.0, input_sigma=0.8, input_max=512,
    output_median=60.0, output_sigma=1.0, output_max=640,
    correlation=0.1,
)

CNN_DAILYMAIL = RealDatasetSpec(
    name="CNN",
    task="summarization",
    input_median=680.0, input_sigma=0.45, input_max=2048,
    output_median=52.0, output_sigma=0.35, output_max=160,
    correlation=0.2,
)

REAL_DATASETS: dict[str, RealDatasetSpec] = {
    "WMT": WMT,
    "ALPACA": ALPACA,
    "CNN": CNN_DAILYMAIL,
}


def get_dataset(name: str) -> RealDatasetSpec:
    """Look up a real-dataset spec by name (case-insensitive)."""
    key = name.upper()
    if key not in REAL_DATASETS:
        known = ", ".join(sorted(REAL_DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return REAL_DATASETS[key]


def generate_realworld_trace(
    dataset: RealDatasetSpec | str,
    num_requests: int,
    seed: int = 0,
) -> WorkloadTrace:
    """Generate a trace whose lengths mimic a real dataset.

    The trace's attached distributions are the *empirical* distributions of
    the generated lengths, which is exactly what a deployment (and the
    paper's 10%/90% protocol) would estimate from observed traffic.
    """
    spec = get_dataset(dataset) if isinstance(dataset, str) else dataset
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    rng = np.random.default_rng(seed)
    inputs, outputs = spec.sample_pairs(num_requests, rng)
    requests = [
        RequestSpec(request_id=i, input_len=int(inp), output_len=int(out))
        for i, (inp, out) in enumerate(zip(inputs, outputs))
    ]
    return WorkloadTrace(
        name=f"real-{spec.name.lower()}",
        requests=requests,
        input_distribution=SequenceDistribution.empirical(
            inputs, name=f"{spec.name}-input"
        ),
        output_distribution=SequenceDistribution.empirical(
            outputs, name=f"{spec.name}-output"
        ),
    )


def skewness(samples: np.ndarray) -> float:
    """Sample skewness, used to verify the long-tail property in tests."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 3 or np.std(arr) == 0:
        return 0.0
    return float(stats.skew(arr))

"""Workload definitions: paper tasks, synthetic and real-world-like traces."""

from repro.workloads.realworld import (
    ALPACA,
    CNN_DAILYMAIL,
    REAL_DATASETS,
    RealDatasetSpec,
    WMT,
    generate_realworld_trace,
    get_dataset,
    skewness,
)
from repro.workloads.synthetic import (
    generate_task_trace,
    generate_trace_from_distributions,
    sample_correlated_lengths,
)
from repro.workloads.tasks import (
    ALL_TASKS,
    CODE_GENERATION,
    CONVERSATIONAL_QA_LONG,
    CONVERSATIONAL_QA_SHORT,
    SUMMARIZATION,
    TRANSLATION,
    TaskSpec,
    get_task,
    known_tasks,
)
from repro.workloads.trace import RequestSpec, WorkloadTrace

__all__ = [
    "ALL_TASKS",
    "ALPACA",
    "CNN_DAILYMAIL",
    "CODE_GENERATION",
    "CONVERSATIONAL_QA_LONG",
    "CONVERSATIONAL_QA_SHORT",
    "REAL_DATASETS",
    "RealDatasetSpec",
    "RequestSpec",
    "SUMMARIZATION",
    "TRANSLATION",
    "TaskSpec",
    "WMT",
    "WorkloadTrace",
    "generate_realworld_trace",
    "generate_task_trace",
    "generate_trace_from_distributions",
    "get_dataset",
    "get_task",
    "known_tasks",
    "sample_correlated_lengths",
    "skewness",
]

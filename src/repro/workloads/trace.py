"""Workload traces: the unit of input consumed by runners and baselines.

A trace is an ordered list of requests, each defined only by its input and
(forced) output length -- the paper's evaluation enforces generated lengths
drawn from the task distribution rather than letting the model emit EOS, so
token identities never matter to the scheduling problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.distributions import SequenceDistribution


@dataclass(frozen=True)
class RequestSpec:
    """One inference request in a trace.

    Attributes:
        request_id: Unique id within the trace.
        input_len: Number of input (prompt) tokens.
        output_len: Number of tokens the request will generate.
        arrival_s: Arrival time in seconds; 0 means "already queued", which
            matches the paper's throughput-oriented evaluation.
    """

    request_id: int
    input_len: int
    output_len: int
    arrival_s: float = 0.0

    def __post_init__(self) -> None:
        if self.input_len < 1:
            raise ValueError("input_len must be >= 1")
        if self.output_len < 1:
            raise ValueError("output_len must be >= 1")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")

    @property
    def total_tokens(self) -> int:
        """Input plus output tokens of the request."""
        return self.input_len + self.output_len


@dataclass(frozen=True)
class WorkloadTrace:
    """An ordered collection of requests plus the distributions behind them.

    Attributes:
        name: Trace label.
        requests: The requests, in arrival order.
        input_distribution: Distribution the input lengths were drawn from
            (or estimated from), used by the scheduler.
        output_distribution: Same for output lengths.
    """

    name: str
    requests: tuple[RequestSpec, ...]
    input_distribution: SequenceDistribution
    output_distribution: SequenceDistribution

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def num_requests(self) -> int:
        """Number of requests in the trace."""
        return len(self.requests)

    @property
    def total_output_tokens(self) -> int:
        """Sum of output lengths over all requests."""
        return sum(r.output_len for r in self.requests)

    @property
    def total_input_tokens(self) -> int:
        """Sum of input lengths over all requests."""
        return sum(r.input_len for r in self.requests)

    def input_lengths(self) -> np.ndarray:
        """Array of input lengths, in request order."""
        return np.array([r.input_len for r in self.requests], dtype=np.int64)

    def output_lengths(self) -> np.ndarray:
        """Array of output lengths, in request order."""
        return np.array([r.output_len for r in self.requests], dtype=np.int64)

    def observed_correlation(self) -> float:
        """Pearson correlation between the trace's input and output lengths."""
        if len(self.requests) < 2:
            return 0.0
        inputs = self.input_lengths().astype(float)
        outputs = self.output_lengths().astype(float)
        if np.std(inputs) == 0 or np.std(outputs) == 0:
            return 0.0
        return float(np.corrcoef(inputs, outputs)[0, 1])

    def split(self, fraction: float) -> tuple["WorkloadTrace", "WorkloadTrace"]:
        """Split into (head, tail) traces at ``fraction`` of the requests.

        The real-dataset experiments use 10% of a dataset to estimate the
        length distributions and evaluate on the remaining 90%.
        """
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        cut = max(int(len(self.requests) * fraction), 1)
        head = self.requests[:cut]
        tail = self.requests[cut:] or self.requests[-1:]
        head_trace = WorkloadTrace(
            name=f"{self.name}-head",
            requests=head,
            input_distribution=SequenceDistribution.empirical(
                [r.input_len for r in head], name=f"{self.name}-head-input"
            ),
            output_distribution=SequenceDistribution.empirical(
                [r.output_len for r in head], name=f"{self.name}-head-output"
            ),
        )
        tail_trace = WorkloadTrace(
            name=f"{self.name}-tail",
            requests=tail,
            input_distribution=SequenceDistribution.empirical(
                [r.input_len for r in tail], name=f"{self.name}-tail-input"
            ),
            output_distribution=SequenceDistribution.empirical(
                [r.output_len for r in tail], name=f"{self.name}-tail-output"
            ),
        )
        return head_trace, tail_trace

    def estimate_distributions(
        self,
    ) -> tuple[SequenceDistribution, SequenceDistribution]:
        """Empirical input/output distributions observed in this trace."""
        return (
            SequenceDistribution.empirical(
                self.input_lengths(), name=f"{self.name}-emp-input"
            ),
            SequenceDistribution.empirical(
                self.output_lengths(), name=f"{self.name}-emp-output"
            ),
        )

"""Synthetic workload generation.

The paper evaluates mostly with synthesised sequences: input and output
lengths are drawn from the per-task truncated-normal distributions, and the
decoder is forced to generate exactly the drawn output length (no early EOS),
"similar to the evaluation of ORCA".  This module draws those length pairs,
optionally with the Gaussian-copula correlation structure observed in the
translation datasets, and bundles them as :class:`~repro.workloads.trace.WorkloadTrace`
objects the engine can replay.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.distributions import SequenceDistribution
from repro.workloads.tasks import TaskSpec
from repro.workloads.trace import RequestSpec, WorkloadTrace


def sample_correlated_lengths(
    input_dist: SequenceDistribution,
    output_dist: SequenceDistribution,
    num_requests: int,
    correlation: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``num_requests`` (input, output) length pairs.

    A Gaussian copula imposes the requested rank correlation while keeping
    each marginal distribution exact: correlated standard normals are mapped
    through their CDF to uniforms, then through each marginal's inverse CDF.

    Args:
        input_dist: Marginal distribution of input lengths.
        output_dist: Marginal distribution of output lengths.
        num_requests: Number of pairs to draw.
        correlation: Target correlation in [-1, 1]; 0 draws independently.
        rng: Random generator.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    if not -1.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [-1, 1]")
    if num_requests == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    if abs(correlation) < 1e-9:
        return (
            input_dist.sample(num_requests, rng),
            output_dist.sample(num_requests, rng),
        )
    cov = np.array([[1.0, correlation], [correlation, 1.0]])
    normals = rng.multivariate_normal(mean=[0.0, 0.0], cov=cov, size=num_requests)
    uniforms = stats.norm.cdf(normals)
    inputs = _quantile_lookup(input_dist, uniforms[:, 0])
    outputs = _quantile_lookup(output_dist, uniforms[:, 1])
    return inputs, outputs


def _quantile_lookup(dist: SequenceDistribution, quantiles: np.ndarray) -> np.ndarray:
    cdf = np.cumsum(dist.probabilities)
    idx = np.searchsorted(cdf, quantiles, side="left")
    idx = np.clip(idx, 0, len(dist.lengths) - 1)
    return dist.lengths[idx]


def generate_task_trace(
    task: TaskSpec,
    num_requests: int,
    seed: int = 0,
    correlated: bool = False,
    randomize_input_order: bool = True,
) -> WorkloadTrace:
    """Generate a synthetic trace for one of the Table 3 tasks.

    Args:
        task: The task whose distributions to sample.
        num_requests: Number of requests in the trace.
        seed: Random seed (traces are reproducible).
        correlated: If True, impose the task's measured input/output
            correlation; the paper's default evaluation assumes independence
            and, for the strongly correlated translation task, randomises
            input order across batches -- which is what
            ``randomize_input_order`` provides.
        randomize_input_order: Shuffle the input lengths independently of the
            output lengths, the paper's mitigation for correlated tasks.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    rng = np.random.default_rng(seed)
    correlation = task.correlation if correlated else 0.0
    inputs, outputs = sample_correlated_lengths(
        task.input_distribution(),
        task.output_distribution(),
        num_requests,
        correlation,
        rng,
    )
    if correlated and randomize_input_order and num_requests > 1:
        rng.shuffle(inputs)
    requests = [
        RequestSpec(request_id=i, input_len=int(inp), output_len=int(out))
        for i, (inp, out) in enumerate(zip(inputs, outputs))
    ]
    return WorkloadTrace(
        name=f"synthetic-{task.task_id}",
        requests=requests,
        input_distribution=task.input_distribution(),
        output_distribution=task.output_distribution(),
    )


def generate_trace_from_distributions(
    input_dist: SequenceDistribution,
    output_dist: SequenceDistribution,
    num_requests: int,
    seed: int = 0,
    name: str = "synthetic",
) -> WorkloadTrace:
    """Generate a trace directly from explicit length distributions."""
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    rng = np.random.default_rng(seed)
    inputs = input_dist.sample(num_requests, rng)
    outputs = output_dist.sample(num_requests, rng)
    requests = [
        RequestSpec(request_id=i, input_len=int(inp), output_len=int(out))
        for i, (inp, out) in enumerate(zip(inputs, outputs))
    ]
    return WorkloadTrace(
        name=name,
        requests=requests,
        input_distribution=input_dist,
        output_distribution=output_dist,
    )

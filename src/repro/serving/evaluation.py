"""Scenario evaluation harness: run ExeGPT and the baselines side by side.

This is the machinery behind the paper's figures: given a model, a task (or
a trace) and a latency bound, configure every system for the bound, execute
the same trace on each, and report throughput and latency.  The experiment
modules under :mod:`repro.experiments` assemble these comparisons into the
exact rows/series of each figure and table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import BaselineSystem
from repro.baselines.deepspeed import DeepSpeedInference
from repro.baselines.faster_transformer import FasterTransformer
from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm
from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.core.exegpt import ExeGPT
from repro.engine.metrics import RunResult
from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class SystemMeasurement:
    """One system's measured performance under one latency bound.

    Attributes:
        system: System name.
        bound_label: Label of the latency bound ("10%", "Inf", ...).
        bound_s: The bound in seconds.
        throughput_seq_per_s: Measured throughput.
        p99_latency_s: Measured 99th-percentile latency.
        max_latency_s: Measured worst-case latency.
        satisfied: Whether the run met the bound.
        config_description: Human-readable schedule / batch configuration.
    """

    system: str
    bound_label: str
    bound_s: float
    throughput_seq_per_s: float
    p99_latency_s: float
    max_latency_s: float
    satisfied: bool
    config_description: str = ""


def measure_baseline(
    system: BaselineSystem,
    trace: WorkloadTrace,
    constraint: LatencyConstraint,
    max_batch: int = 256,
) -> SystemMeasurement:
    """Configure a baseline for a bound and measure it on a trace."""
    if constraint.is_unbounded:
        batch = system.configure_for_bound(float("1e12"), max_batch=max_batch)
    else:
        batch = system.configure_for_bound(constraint.bound_s, max_batch=max_batch)
    result = system.run(trace, batch)
    p99 = result.latency_percentile(99.0, skip_warmup=True)
    reference = (
        result.reference_length_latency(constraint.target_length)
        if constraint.target_length
        else p99
    )
    return SystemMeasurement(
        system=system.name,
        bound_label=constraint.label or f"{constraint.bound_s:.3g}s",
        bound_s=constraint.bound_s,
        throughput_seq_per_s=result.steady_state_throughput(),
        p99_latency_s=p99,
        max_latency_s=result.max_latency_s,
        satisfied=constraint.satisfied_by(reference, tolerance=0.1 * constraint.bound_s),
        config_description=f"batch={batch}",
    )


def measure_exegpt(
    engine: ExeGPT,
    trace: WorkloadTrace,
    constraint: LatencyConstraint,
    policies: tuple[SchedulePolicy, ...] = (
        SchedulePolicy.RRA,
        SchedulePolicy.WAA_C,
        SchedulePolicy.WAA_M,
    ),
) -> SystemMeasurement:
    """Schedule and run ExeGPT for a bound; returns "NS" when infeasible.

    The paper marks scenarios where WAA cannot satisfy the bound as "NS"
    (not satisfiable); here an infeasible search yields zero throughput and
    ``satisfied=False``.
    """
    search = engine.schedule(constraint, policies=policies)
    if search.best is None:
        return SystemMeasurement(
            system="exegpt",
            bound_label=constraint.label or f"{constraint.bound_s:.3g}s",
            bound_s=constraint.bound_s,
            throughput_seq_per_s=0.0,
            p99_latency_s=float("inf"),
            max_latency_s=float("inf"),
            satisfied=False,
            config_description="NS",
        )
    result = engine.run(trace, search.best.config)
    p99 = result.latency_percentile(99.0, skip_warmup=True)
    reference = (
        result.reference_length_latency(constraint.target_length)
        if constraint.target_length
        else p99
    )
    return SystemMeasurement(
        system=f"exegpt-{search.best.config.policy.value}",
        bound_label=constraint.label or f"{constraint.bound_s:.3g}s",
        bound_s=constraint.bound_s,
        throughput_seq_per_s=result.steady_state_throughput(),
        p99_latency_s=p99,
        max_latency_s=result.max_latency_s,
        satisfied=constraint.satisfied_by(reference, tolerance=0.1 * constraint.bound_s),
        config_description=search.best.config.describe(),
    )


def build_online_server(
    engine: ExeGPT,
    system: str,
    slo_bound_s: float,
    max_queue: int = 512,
    schedule_headroom: float = 0.7,
):
    """Configure one system's online server for an end-to-end SLO bound.

    The single construction path behind :class:`~repro.serving.online.
    OnlineEvaluator` and fleet builders: ``"exegpt"`` searches RRA/WAA
    schedules under the headroom-scaled bound (retrying at the full bound
    when the scaled one is infeasible), ``"orca"`` / ``"vllm"`` pick the
    baseline's largest batch size whose worst case meets the scaled bound.
    ``schedule_headroom`` is the fraction of the SLO given to the schedule
    search / batch configuration; the remainder absorbs queueing.
    """
    from repro.serving.online import (
        ContinuousBatchingOnlineServer,
        ExeGPTOnlineServer,
        OnlineServer,
    )

    if not 0 < schedule_headroom <= 1:
        raise ValueError("schedule_headroom must be in (0, 1]")
    key = system.lower()
    bound = slo_bound_s * schedule_headroom
    target_length = max(int(engine.output_distribution.percentile(99)), 1)
    if key == "exegpt":
        constraint = LatencyConstraint(bound_s=bound, target_length=target_length)
        search = engine.schedule(constraint)
        if search.best is None:
            search = engine.schedule(
                LatencyConstraint(bound_s=slo_bound_s, target_length=target_length)
            )
        if search.best is None:
            raise ValueError(
                f"no ExeGPT schedule satisfies the SLO bound {slo_bound_s:g}s"
            )
        server: OnlineServer = ExeGPTOnlineServer(
            simulator=engine.simulator,
            config=search.best.config,
            max_queue=max_queue,
        )
    elif key in ("orca", "vllm"):
        (baseline,) = default_baselines(engine, (key,))
        batch = baseline.configure_for_bound(bound)
        server = ContinuousBatchingOnlineServer(
            system=baseline,
            batch_size=batch,
            max_queue=max_queue,
        )
    else:
        raise KeyError(
            f"unknown online system {system!r}; known: exegpt, orca, vllm"
        )
    return server


def build_online_fleet(
    engine: ExeGPT,
    system: str,
    slo_bound_s: float,
    replicas: int,
    routing="jsq",
    max_queue: int = 512,
    schedule_headroom: float = 0.7,
    admission=None,
    faults=None,
):
    """Configure an N-replica online fleet of one system for an SLO bound.

    The single-server construction (:func:`build_online_server`) runs once;
    the fleet is ``replicas`` clones of that server behind ``routing``.
    This is the entry point large sweeps combine with
    :meth:`~repro.serving.fleet.Fleet.serve_pool` to serve million-request
    pools without trace materialization.  ``admission`` and ``faults``
    pass through to the fleet (see :mod:`repro.serving.faults`) to measure
    the same deployment under load shedding or injected chaos.
    """
    from repro.serving.fleet import Fleet

    server = build_online_server(
        engine,
        system,
        slo_bound_s,
        max_queue=max_queue,
        schedule_headroom=schedule_headroom,
    )
    return Fleet.homogeneous(server, replicas, routing=routing,
                             admission=admission, faults=faults)


def default_baselines(
    engine: ExeGPT, systems: tuple[str, ...] = ("ft",)
) -> list[BaselineSystem]:
    """Instantiate baseline systems sharing ExeGPT's profile and workload."""
    profile = engine.profile
    available = {
        "ft": FasterTransformer,
        "dsi": DeepSpeedInference,
        "orca": Orca,
        "vllm": Vllm,
    }
    baselines: list[BaselineSystem] = []
    for name in systems:
        key = name.lower()
        if key not in available:
            known = ", ".join(sorted(available))
            raise KeyError(f"unknown baseline {name!r}; known baselines: {known}")
        baselines.append(
            available[key](
                profile=profile,
                input_distribution=engine.input_distribution,
                output_distribution=engine.output_distribution,
            )
        )
    return baselines


@dataclass
class ScenarioEvaluation:
    """Evaluate one (model, workload) scenario across systems and bounds.

    Attributes:
        engine: The ExeGPT instance for the scenario.
        trace: The trace replayed by every system.
        baselines: Baseline systems to compare against.
    """

    engine: ExeGPT
    trace: WorkloadTrace
    baselines: list[BaselineSystem] = field(default_factory=list)

    def evaluate(
        self,
        constraints: list[LatencyConstraint],
        policies: tuple[SchedulePolicy, ...] = (
            SchedulePolicy.RRA,
            SchedulePolicy.WAA_C,
            SchedulePolicy.WAA_M,
        ),
        include_exegpt: bool = True,
    ) -> list[SystemMeasurement]:
        """Measure every system under every latency bound."""
        measurements: list[SystemMeasurement] = []
        for constraint in constraints:
            if include_exegpt:
                measurements.append(
                    measure_exegpt(self.engine, self.trace, constraint, policies)
                )
            for baseline in self.baselines:
                measurements.append(
                    measure_baseline(baseline, self.trace, constraint)
                )
        return measurements


def speedup_over(
    measurements: list[SystemMeasurement], reference_system: str = "ft"
) -> dict[str, float]:
    """Per-bound throughput speedup of ExeGPT over a reference system."""
    by_bound: dict[str, dict[str, float]] = {}
    for m in measurements:
        by_bound.setdefault(m.bound_label, {})[m.system] = m.throughput_seq_per_s
    speedups: dict[str, float] = {}
    for bound, systems in by_bound.items():
        exe = max(
            (v for k, v in systems.items() if k.startswith("exegpt")), default=0.0
        )
        ref = systems.get(reference_system, 0.0)
        if ref > 0:
            speedups[bound] = exe / ref
    return speedups

"""Online arrival-driven serving simulation.

The offline runners replay a trace whose requests are all "already queued";
this module simulates *serving*: requests arrive over time (see
:mod:`repro.workloads.arrivals`), wait in a bounded admission queue, are
admitted into the engine under the system's scheduling policy, and leave
per-request records of

* **queueing delay** -- admission time minus arrival time,
* **TTFT** -- time to first generated token, measured from arrival, and
* **end-to-end latency** -- completion time minus arrival time,

from which SLO attainment is evaluated with the existing
:class:`~repro.serving.sla.SLA` machinery (the SLA is applied to the
*end-to-end* latency, so queueing at overload shows up as SLO violations).

Two server drivers are provided:

* :class:`ContinuousBatchingOnlineServer` wraps an ORCA-family baseline
  (:class:`~repro.baselines.orca.Orca` or :class:`~repro.baselines.vllm.Vllm`)
  and runs its iteration-level policy online: at every iteration boundary the
  server admits arrived requests (at most one prefill per iteration) into the
  running batch, subject to the batch cap and the KV cache
  (:class:`~repro.engine.kv_manager.PagedKVCache` for vLLM, contiguous for
  ORCA).
* :class:`ExeGPTOnlineServer` enforces an ExeGPT
  :class:`~repro.core.config.ScheduleConfig` online: RRA alternates encode
  phases with ``N_D`` decode iterations, WAA encodes on dedicated stages
  concurrently with decoding; admission follows the Section 5.2 dynamic
  workload adjuster, gated by what has actually arrived.

Both drivers build their schedules on the shared discrete-event
:class:`~repro.engine.timeline.Timeline`, using its incremental scheduling
(``schedule_pending``) to learn the simulated clock after each iteration and
its release times (``earliest_start_s``) so work never starts before the
requests it serves have arrived.  Iteration construction itself -- stage
chaining, micro-batching, WAA KV handover, compaction, timestamp
bookkeeping -- goes through the same
:class:`~repro.engine.execution.ExecutionEngine` as the offline runner and
baselines, so the online and offline simulators share one implementation of
execution semantics, and each iteration's stage durations are resolved
through batched profile lookups rather than per-task scalar calls.

Every server is a **steppable replica**: the arrival-ingest / clock /
termination loop lives in :class:`ServingLoop`, not in the server, and the
server exposes ``reset(timeline, pool)`` / ``enqueue(rid)`` / ``busy`` /
``iterate(clock) -> next_time`` over replica-local id arrays into a request
pool it does not own.  ``OnlineServer.serve`` is simply the 1-replica
instantiation of that loop; :class:`~repro.serving.fleet.Fleet` runs N
replicas behind a routing policy over ONE shared pool through the *same*
loop, which is why a 1-replica fleet reproduces the single server
bit-identically.

:class:`OnlineEvaluator` sweeps offered request rates per traffic scenario
and reports the maximum sustainable QPS: the highest offered rate at which a
system completes every request (no admission-queue overflow) while meeting
the latency SLO -- for a single server or, with ``replicas=N``, for an
N-replica fleet deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.baselines.base import BaselineSystem
from repro.core.config import ScheduleConfig
from repro.core.dynamic import DynamicWorkloadAdjuster
from repro.core.simulator import XSimulator
from repro.engine.batching import split_ids
from repro.engine.execution import ExecutionEngine, KVHandover, TaskRef
from repro.engine.metrics import RunResult
from repro.engine.pool import EMPTY_IDS, RequestPool
from repro.engine.timeline import Timeline
from repro.serving.sla import SLA
from repro.workloads.arrivals import ArrivalProcess, attach_arrivals, make_scenario
from repro.workloads.trace import WorkloadTrace

_MAX_ITERATIONS = 500000

#: Serving-loop implementations (see :class:`ServingLoop`): the batched
#: discrete-event core is the default; the stepped core is the historical
#: per-event reference the event core must match bit for bit.
SERVING_CORES = ("event", "stepped")
DEFAULT_CORE = "event"


def default_max_iterations(pool, replicas: int = 1) -> int:
    """Convergence-guard default scaled to the workload.

    The historical fixed 500k cap tripped on any trace with >= 500k
    arrivals even while the loop was making progress.  The scaled default
    bounds honest progress instead: every request costs at most a few
    ``iterate`` calls of admission overhead plus its decode iterations
    (one generated token per iterate is the slowest possible pace), and
    each replica may burn a few idle iterations draining.  The explicit
    ``max_iterations`` override still wins when a caller wants a tighter
    guard.
    """
    remaining = int(pool.remaining_tokens(pool.ids()))
    return max(_MAX_ITERATIONS, 8 * len(pool) + remaining + 64 * replicas)


# ---------------------------------------------------------------------------
# Per-request records and aggregate result
# ---------------------------------------------------------------------------


@dataclass
class OnlineRequestRecord:
    """Outcome of one request in an online run.

    Attributes:
        request_id / input_len / output_len: The request's static properties.
        arrival_s: When the request arrived.
        admitted_s: When its prefill was issued (-1 if never admitted).
        first_token_s: When its first output token finished (-1 if none).
        finish_s: When its last token finished (-1 if unfinished).
        rejected: True when the admission queue overflowed at arrival.
        shed: True when an admission policy dropped the request (load
            shedding, tenant quota, priority eviction) -- accounted
            separately from ``rejected`` so drops stay attributable.
        preempted: How many times the request's decode was preempted back
            to an admission queue by a priority policy.
    """

    request_id: int
    input_len: int
    output_len: int
    arrival_s: float
    admitted_s: float = -1.0
    first_token_s: float = -1.0
    finish_s: float = -1.0
    rejected: bool = False
    shed: bool = False
    preempted: int = 0

    @property
    def completed(self) -> bool:
        """Whether the request generated all its tokens."""
        return self.finish_s >= 0.0

    @property
    def queue_delay_s(self) -> float:
        """Arrival-to-admission delay (-1 if never admitted)."""
        if self.admitted_s < 0:
            return -1.0
        return self.admitted_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Arrival-to-first-token latency (-1 if no token was generated)."""
        if self.first_token_s < 0:
            return -1.0
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (-1 if unfinished)."""
        if self.finish_s < 0:
            return -1.0
        return self.finish_s - self.arrival_s


class RecordSequence:
    """Immutable record sequence materialized on demand from columns.

    Behaves like a tuple of :class:`OnlineRequestRecord` -- length,
    indexing, slicing, iteration, equality (including against real record
    tuples) -- but stores only the ten backing arrays.  A million-request
    serve therefore allocates **no** per-request Python objects unless a
    caller actually touches individual records; building the boxed record
    tuple eagerly cost seconds of allocation plus a superlinear garbage-
    collector term (millions of tracked objects) that dominated large
    sweeps.  Indexing with an id array gathers a new sequence (the fleet's
    per-replica record split), so even result slicing stays columnar.
    """

    __slots__ = ("_arrays",)

    def __init__(
        self,
        request_id: np.ndarray,
        input_len: np.ndarray,
        output_len: np.ndarray,
        arrival_s: np.ndarray,
        admitted_s: np.ndarray,
        first_token_s: np.ndarray,
        finish_s: np.ndarray,
        rejected: np.ndarray,
        shed: np.ndarray | None = None,
        preempted: np.ndarray | None = None,
    ) -> None:
        if shed is None:
            shed = np.zeros(rejected.shape[0], dtype=bool)
        if preempted is None:
            preempted = np.zeros(rejected.shape[0], dtype=np.int64)
        self._arrays = (
            request_id, input_len, output_len, arrival_s,
            admitted_s, first_token_s, finish_s, rejected,
            shed, preempted,
        )

    def __len__(self) -> int:
        return int(self._arrays[0].shape[0])

    def _record(self, row: int) -> OnlineRequestRecord:
        (
            request_id, input_len, output_len, arrival_s,
            admitted_s, first_token_s, finish_s, rejected,
            shed, preempted,
        ) = self._arrays
        return OnlineRequestRecord(
            request_id=int(request_id[row]),
            input_len=int(input_len[row]),
            output_len=int(output_len[row]),
            arrival_s=float(arrival_s[row]),
            admitted_s=float(admitted_s[row]),
            first_token_s=float(first_token_s[row]),
            finish_s=float(finish_s[row]),
            rejected=bool(rejected[row]),
            shed=bool(shed[row]),
            preempted=int(preempted[row]),
        )

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            row = int(index)
            if row < 0:
                row += len(self)
            if not 0 <= row < len(self):
                raise IndexError("record index out of range")
            return self._record(row)
        # Slices and id arrays gather columns, never boxing a record.
        return RecordSequence(*(a[index] for a in self._arrays))

    def __iter__(self):
        for values in zip(*(a.tolist() for a in self._arrays)):
            yield OnlineRequestRecord(*values)

    def __eq__(self, other) -> bool:
        if isinstance(other, RecordSequence):
            return all(
                np.array_equal(a, b)
                for a, b in zip(self._arrays, other._arrays)
            )
        if isinstance(other, (tuple, list)):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # mutable-record elements; same as a list

    def columns(self) -> dict[str, np.ndarray]:
        """The aggregate columns :class:`OnlineResult` caches."""
        return {
            "arrival": self._arrays[3],
            "admitted": self._arrays[4],
            "first_token": self._arrays[5],
            "finish": self._arrays[6],
            "rejected": self._arrays[7],
            "shed": self._arrays[8],
            "preempted": self._arrays[9],
            "output_len": self._arrays[2],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordSequence(len={len(self)})"


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate outcome of serving one arrival-stamped trace.

    Conservation holds by construction: every offered request is either
    completed, rejected or shed (``offered == completed + rejected + shed``),
    because the serving loop drains the queue and pool before returning and
    a crashed replica's requeued ids are re-routed, never lost
    (:meth:`~repro.engine.pool.RequestPool.requeue` refuses done ids, so no
    request is ever resurrected either).

    Aggregates (counts, latency arrays) are computed **once**, on first
    access, from a single pass over the records (:attr:`_columns`) and
    cached -- rate sweeps touch ``completed``/``rejected``/percentiles many
    times per run, and the historical per-access record scans were O(n)
    each.  The records are snapshotted by that first access; they are not
    meant to change after construction.  Results built by a serve carry a
    :class:`RecordSequence` (records boxed on demand from columns); a plain
    tuple of records is still accepted and scanned as before.

    Attributes:
        system: Serving system name.
        scenario: Traffic scenario name ("" when the trace carried arrivals).
        offered_rate_qps: Mean offered arrival rate (0 when unknown).
        records: Per-request records, in request order.
        makespan_s: Simulated time from 0 to the last completion.
        extra: Free-form driver measurements (iterations, peak KV, ...).
    """

    system: str
    scenario: str
    offered_rate_qps: float
    records: "tuple[OnlineRequestRecord, ...] | RecordSequence"
    makespan_s: float
    extra: dict[str, float] = field(default_factory=dict)

    # -- cached summary columns ---------------------------------------------------

    @cached_property
    def _columns(self) -> dict[str, np.ndarray]:
        """One pass over the records; every aggregate derives from these."""
        records = self.records
        if isinstance(records, RecordSequence):
            return records.columns()
        return {
            "arrival": np.array([r.arrival_s for r in records], dtype=float),
            "admitted": np.array([r.admitted_s for r in records], dtype=float),
            "first_token": np.array(
                [r.first_token_s for r in records], dtype=float
            ),
            "finish": np.array([r.finish_s for r in records], dtype=float),
            "rejected": np.array([r.rejected for r in records], dtype=bool),
            "shed": np.array(
                [getattr(r, "shed", False) for r in records], dtype=bool
            ),
            "preempted": np.array(
                [getattr(r, "preempted", 0) for r in records], dtype=np.int64
            ),
            "output_len": np.array(
                [r.output_len for r in records], dtype=np.int64
            ),
        }

    @cached_property
    def _completed_mask(self) -> np.ndarray:
        return self._columns["finish"] >= 0.0

    @cached_property
    def _latency_values(self) -> dict[str, np.ndarray]:
        """Non-negative per-metric latencies of completed requests."""
        cols = self._columns
        mask = self._completed_mask
        arrival = cols["arrival"][mask]
        values: dict[str, np.ndarray] = {}
        for name, column in (
            ("latency_s", cols["finish"]),
            ("ttft_s", cols["first_token"]),
            ("queue_delay_s", cols["admitted"]),
        ):
            raw = column[mask]
            deltas = np.where(raw < 0, -1.0, raw - arrival)
            values[name] = deltas[deltas >= 0]
        return values

    # -- counts ----------------------------------------------------------------

    @property
    def offered(self) -> int:
        """Requests that arrived."""
        return len(self.records)

    @property
    def completed(self) -> int:
        """Requests that finished generation."""
        return int(np.count_nonzero(self._completed_mask))

    @property
    def rejected(self) -> int:
        """Requests dropped at arrival because the admission queue was full."""
        return int(np.count_nonzero(self._columns["rejected"]))

    @property
    def shed(self) -> int:
        """Requests dropped by an admission policy (load shedding, tenant
        quota, priority eviction) -- zero without one."""
        return int(np.count_nonzero(self._columns["shed"]))

    @property
    def preempted(self) -> int:
        """Total decode preemptions across all requests (a request
        preempted twice counts twice)."""
        return int(self._columns["preempted"].sum())

    @property
    def dropped(self) -> int:
        """Requests that never completed by decision: rejected + shed."""
        return self.rejected + self.shed

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests rejected."""
        if not self.records:
            return 0.0
        return self.rejected / len(self.records)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered requests dropped (rejected or shed)."""
        if not self.records:
            return 0.0
        return self.dropped / len(self.records)

    @property
    def conserved(self) -> bool:
        """The conservation invariant: offered == completed + rejected +
        shed, with the three outcomes mutually exclusive."""
        cols = self._columns
        outcomes = (
            self._completed_mask.astype(np.int64)
            + cols["rejected"].astype(np.int64)
            + cols["shed"].astype(np.int64)
        )
        return bool(np.all(outcomes == 1))

    @property
    def achieved_qps(self) -> float:
        """Completed requests per second of simulated time."""
        if self.makespan_s <= 0:
            return 0.0
        return self.completed / self.makespan_s

    # -- latency statistics ------------------------------------------------------

    def _completed_values(self, attribute: str) -> np.ndarray:
        return self._latency_values[attribute]

    def latency_percentile(self, q: float) -> float:
        """End-to-end latency percentile over completed requests."""
        values = self._completed_values("latency_s")
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, q))

    def ttft_percentile(self, q: float) -> float:
        """TTFT percentile over completed requests."""
        values = self._completed_values("ttft_s")
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, q))

    def queue_delay_percentile(self, q: float) -> float:
        """Queueing-delay percentile over completed requests."""
        values = self._completed_values("queue_delay_s")
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, q))

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency of completed requests."""
        values = self._completed_values("latency_s")
        if values.size == 0:
            return 0.0
        return float(values.mean())

    # -- SLO evaluation ------------------------------------------------------------

    def to_run_result(self) -> RunResult:
        """Completed requests as a :class:`RunResult` for the SLA machinery.

        Latencies are *end-to-end* (arrival to completion, queueing included),
        which is what an online SLO constrains.
        """
        cols = self._columns
        mask = self._completed_mask
        finish = cols["finish"][mask]
        arrival = cols["arrival"][mask]
        output_lens = cols["output_len"][mask]
        return RunResult(
            system=self.system,
            makespan_s=self.makespan_s,
            num_requests=int(finish.size),
            total_generated_tokens=int(output_lens.sum()),
            latencies_s=tuple((finish - arrival).tolist()),
            completion_times_s=tuple(finish.tolist()),
            output_lengths=tuple(output_lens.tolist()),
            extra=dict(self.extra),
        )

    def attainment(self, sla: SLA) -> float:
        """Fraction of *offered* requests completing within the SLA bound.

        Rejected (and hypothetically unfinished) requests count as misses, so
        attainment degrades monotonically as the offered load outgrows the
        system.
        """
        if not self.records:
            return 1.0
        cols = self._columns
        mask = self._completed_mask
        latencies = cols["finish"][mask] - cols["arrival"][mask]
        hits = int(np.count_nonzero(latencies <= sla.bound_s))
        return hits / len(self.records)

    def satisfies(self, sla: SLA, max_rejection_rate: float = 0.0) -> bool:
        """Whether the run sustains the SLO.

        Requires the SLA to hold on the completed requests' end-to-end
        latencies *and* the total drop rate -- rejected plus shed, so an
        admission policy cannot launder overload into "sustainable" by
        shedding -- to stay within ``max_rejection_rate``.
        """
        if self.completed == 0:
            return False
        if self.drop_rate > max_rejection_rate:
            return False
        return sla.satisfied(self.to_run_result())

    @classmethod
    def from_columns(
        cls,
        system: str,
        scenario: str,
        offered_rate_qps: float,
        columns: "RecordColumns",
        makespan_s: float,
        extra: dict[str, float],
    ) -> "OnlineResult":
        """Build a result straight from a serve's columnar record store.

        The records stay columnar: a :class:`RecordSequence` snapshots the
        pool's static columns next to the serve's outcome columns, boxing
        individual :class:`OnlineRequestRecord` objects only when a caller
        indexes or iterates.  The :attr:`_columns` aggregate cache is
        seeded with the same arrays -- a million-request result never
        scans (or even allocates) per-request records to compute counts or
        percentiles.
        """
        pool = columns.pool
        records = RecordSequence(
            pool.request_id.astype(np.int64, copy=True),
            pool.input_len.astype(np.int64, copy=True),
            pool.output_len.astype(np.int64, copy=True),
            pool.arrival_s.astype(float, copy=True),
            columns.admitted_s,
            columns.first_token_s,
            columns.finish_s,
            columns.rejected,
            columns.shed,
            columns.preempted,
        )
        result = cls(
            system=system,
            scenario=scenario,
            offered_rate_qps=offered_rate_qps,
            records=records,
            makespan_s=makespan_s,
            extra=extra,
        )
        # cached_property writes land in the instance __dict__, so seeding
        # the cache here short-circuits even the first-access column pick.
        result.__dict__["_columns"] = records.columns()
        return result


# ---------------------------------------------------------------------------
# The shared event loop: arrival ingest, clock, termination
# ---------------------------------------------------------------------------


class RecordColumns:
    """Columnar per-request outcome store of one serve.

    The record side of the serving loop at million-request scale: outcome
    timestamps land as vectorized scatters (``column[ids] = when``) and
    rejection flags as mask writes, so no per-request record object exists
    until the final :class:`OnlineResult` is built
    (:meth:`OnlineResult.from_columns`).  Requires an array-backed
    :class:`RequestPool` (the only pool online serving runs on).
    """

    __slots__ = (
        "pool", "admitted_s", "first_token_s", "finish_s", "rejected",
        "shed", "preempted",
    )

    def __init__(self, pool: RequestPool) -> None:
        n = len(pool)
        self.pool = pool
        self.admitted_s = np.full(n, -1.0)
        self.first_token_s = np.full(n, -1.0)
        self.finish_s = np.full(n, -1.0)
        self.rejected = np.zeros(n, dtype=bool)
        self.shed = np.zeros(n, dtype=bool)
        self.preempted = np.zeros(n, dtype=np.int64)

    def reject(self, rid: int) -> None:
        """Flag one arrival as rejected (the stepped core's callback)."""
        self.rejected[rid] = True

    def reject_batch(self, ids: np.ndarray) -> None:
        """Flag a batch of arrivals as rejected (one mask write)."""
        self.rejected[ids] = True

    def mark_shed(self, rid: int) -> None:
        """Flag one arrival as dropped by an admission policy."""
        self.shed[rid] = True

    def mark_shed_batch(self, ids: np.ndarray) -> None:
        """Flag a batch of arrivals as shed (one mask write).

        The batched-admission mirror of :meth:`reject_batch`: shedding a
        whole arrival window is a single scatter, not a per-id loop.  The
        caller (the fleet) writes the matching ``-2`` assignments.
        """
        self.shed[ids] = True


class ServingLoop:
    """The arrival-ingest / clock / termination loop of online serving.

    One implementation drives both the single server
    (:meth:`OnlineServer.serve` runs it over ``[self]``) and the routing
    fleet (:meth:`repro.serving.fleet.Fleet.serve` runs it over N
    replicas); a 1-replica fleet therefore reproduces the single server's
    decisions bit for bit.

    The loop is event-driven over two event kinds: *arrivals*, read off
    the pool's ``arrival_s`` column in (arrival time, request id) order,
    and *replica readiness*, the next-start clock each ``iterate`` call
    returns.  Invariants:

    * Every arrival with ``arrival_s <= clock`` is offered to the router
      (an id handoff into some replica's bounded admission queue) before
      any replica iterates at ``clock`` -- an arrival landing at *exactly*
      a replica-ready clock is routed first, then the replica iterates.
      When no eligible queue has space, the arrival is rejected --
      permanently.
    * Among replicas with pending work (a queued id or engine work), the
      one with the earliest next-ready clock acts; ties break on the
      lower replica index, so interleaving is deterministic.
    * When no replica has work, the clock skips to the next arrival.

    Two cores implement those invariants:

    * ``"event"`` (default) -- the batched discrete-event core.  Arrivals
      up to the clock are drained as one ``searchsorted`` slice of the
      sorted arrival array and routed through ``route_batch`` (vectorized
      when the policy supports it), per-replica ready times live in a
      numpy array with a masked-argmin event pick, and rejections land as
      one mask write per batch.  While every replica is pending, the clock
      jumps straight to the next ready time and the whole arrival window
      drains as one batch (routing cannot wake anyone or reorder iterates
      then); with an idle replica in the mix the advance is clamped to the
      next arrival so wake-ups happen at arrival clocks, exactly as in the
      stepped core.
    * ``"stepped"`` -- the historical per-event loop: one ``route`` call
      per arrival, a Python list scan per event pick.  It is the
      executable reference the event core must match bit for bit (the
      parity gate of the serving test suite and perf harness).

    Args:
        pool: The (shared) request pool whose arrival column feeds the loop.
        replicas: Steppable replicas (:class:`OnlineServer` instances,
            already ``reset`` against ``pool``).
        route: ``route(rid, clock) -> bool`` -- hand an arrived id to some
            replica's queue; ``False`` means every eligible queue was full.
        on_reject: Called once for each arrival that could not be placed.
        route_batch: Optional ``route_batch(rids, clock) -> assignments``
            -- route a whole arrival batch (ids in arrival order), returning
            the replica index per id with -1 for rejected arrivals.  Must
            decide exactly as sequential ``route`` calls would.  Without
            it the event core falls back to per-id ``route`` calls.
        on_reject_batch: Optional batch form of ``on_reject``.
        max_iterations: Convergence guard over total ``iterate`` calls;
            defaults to :func:`default_max_iterations` of the pool.
        name: Label used in the convergence error.
        core: ``"event"`` or ``"stepped"`` (see above).
        faults: Optional :class:`~repro.serving.faults.FaultPlane`.  At the
            top of every loop iteration, due fault transitions are applied
            *before* arrival ingest (a crash at an arrival's clock lands
            first, so the arrival routes around the dead replica), and
            every clock advance is clamped to the next fault transition so
            no event window spans one.  A plane with an empty schedule has
            ``next_time == inf`` and the loop is bit-identical to running
            without one.
        on_crash: ``on_crash(replica_index, when)`` -- invoked when a
            ``down`` transition fires, before the replica's ready time is
            reset.  The owner (the fleet) reclaims the replica's queued +
            in-flight ids and re-routes them.  Required when ``faults``
            schedules any downtime.
        diagnostics: Optional ``diagnostics() -> str`` hook appended to
            the convergence error -- the owner surfaces state the loop
            cannot see (the fleet reports per-replica admit/shed counts),
            so a real non-convergence is debuggable from the message.
    """

    def __init__(
        self,
        pool: RequestPool,
        replicas,
        route,
        on_reject,
        route_batch=None,
        on_reject_batch=None,
        max_iterations: int | None = None,
        name: str = "online",
        core: str = DEFAULT_CORE,
        faults=None,
        on_crash=None,
        diagnostics=None,
    ) -> None:
        self.pool = pool
        self.replicas = list(replicas)
        if not self.replicas:
            raise ValueError("ServingLoop needs at least one replica")
        if core not in SERVING_CORES:
            raise ValueError(
                f"unknown serving core {core!r}; known: {', '.join(SERVING_CORES)}"
            )
        self.route = route
        self.on_reject = on_reject
        self.route_batch = route_batch
        self.on_reject_batch = on_reject_batch
        if max_iterations is None:
            max_iterations = default_max_iterations(pool, len(self.replicas))
        self.max_iterations = max_iterations
        self.name = name
        self.core = core
        if faults is not None and faults.has_downtime and on_crash is None:
            raise ValueError(
                "a fault plane scheduling downtime needs an on_crash handler"
            )
        self.faults = faults
        self.on_crash = on_crash
        self.diagnostics = diagnostics
        #: Per-replica ``iterate`` call counts of the last :meth:`run`.
        self.iteration_counts: list[int] = [0] * len(self.replicas)

    def run(self) -> int:
        """Drive until arrivals, queues and engines drain; returns the
        total number of ``iterate`` calls across all replicas."""
        if self.core == "event":
            return self._run_event()
        return self._run_stepped()

    def _convergence_error(
        self, clock: float, ingested: int, total: int
    ) -> RuntimeError:
        """The convergence failure, carrying enough loop state to debug a
        real non-convergence from the message alone."""
        depths = [r.queue_depth for r in self.replicas]
        in_flight = [r.in_flight for r in self.replicas]
        message = (
            f"online serving loop {self.name} did not converge: "
            f"exceeded max_iterations={self.max_iterations} at "
            f"clock={clock:.6f}s with arrivals ingested={ingested}/{total} "
            f"(remaining={total - ingested}), per-replica "
            f"iterations={self.iteration_counts}, queue depths={depths}, "
            f"in flight={in_flight}"
        )
        if self.faults is not None:
            slowdowns = [
                getattr(r, "slowdown", 1.0) for r in self.replicas
            ]
            message += (
                f", fault states={self.faults.states()}, "
                f"crashes={self.faults.crashes.tolist()}, "
                f"requeued={self.faults.requeued.tolist()}, "
                f"slowdowns={slowdowns}, "
                f"next fault transition={self.faults.next_time}"
            )
        if self.diagnostics is not None:
            message += f", {self.diagnostics()}"
        return RuntimeError(message)

    def _apply_faults(self, clock: float, next_ready) -> bool:
        """Apply every fault transition due at ``clock``; True if any was.

        Transitions are applied in time order before arrival ingest.  A
        ``down`` transition first hands the replica to ``on_crash`` (which
        reclaims and re-routes its work), then rewinds the replica's ready
        time to the crash instant so a restarted replica wakes as an idle
        one would.  ``warming``/``ready`` only flip plane state, which
        routing observes through the plane's accepting mask.
        """
        due = self.faults.pop_due(clock)
        for when, index, kind in due:
            if kind == "down":
                if self.on_crash is not None:
                    self.on_crash(index, when)
                next_ready[index] = when
        return bool(due)

    # -- the stepped reference core ------------------------------------------------

    def _run_stepped(self) -> int:
        pool = self.pool
        replicas = self.replicas
        # Arrival order: (arrival_s, request_id), a pointer into one sorted
        # id array rather than a deque of objects.
        order = pool.arrival_order()
        arrival_s = pool.arrival_s
        pos = 0
        clock = 0.0
        next_ready = [0.0] * len(replicas)
        iterations = 0
        self.iteration_counts = [0] * len(replicas)
        faults = self.faults
        while True:
            if faults is not None:
                self._apply_faults(clock, next_ready)
            # Ingest: offer every arrival with arrival_s <= clock to the
            # router; un-placeable arrivals are rejected on the spot.
            while pos < order.size and arrival_s[order[pos]] <= clock:
                rid = int(order[pos])
                pos += 1
                if not self.route(rid, clock):
                    self.on_reject(rid)
            pending = [
                i for i, r in enumerate(replicas) if r.queue_depth or r.busy
            ]
            if not pending:
                if pos >= order.size:
                    break
                # Event-driven idle skip to the next arrival (or the next
                # fault transition, whose side effects may matter first).
                target = float(arrival_s[order[pos]])
                if faults is not None:
                    target = min(target, faults.next_time)
                clock = max(clock, target)
                continue
            index = min(pending, key=lambda i: (next_ready[i], i))
            if next_ready[index] > clock:
                # Advance the clock toward the replica's ready time, but
                # never past the next arrival: arrivals in between must be
                # routed (and rejections accounted) the moment they land --
                # an idle replica picks them up at their arrival time, not
                # when some busy replica frees up.  Fault transitions clamp
                # unconditionally: a crash between now and the ready time
                # changes who iterates next.
                target = next_ready[index]
                if pos < order.size:
                    target = min(target, float(arrival_s[order[pos]]))
                if faults is not None:
                    target = min(target, faults.next_time)
                clock = target
                continue
            next_ready[index] = max(replicas[index].iterate(clock), clock)
            self.iteration_counts[index] += 1
            iterations += 1
            if iterations > self.max_iterations:
                raise self._convergence_error(clock, pos, order.size)
        return iterations

    # -- the batched discrete-event core ---------------------------------------------

    def _ingest_batch(
        self, batch: np.ndarray, times: np.ndarray, clock: float, pending
    ) -> None:
        """Route one arrival batch (ids in arrival order, ``times`` their
        arrival timestamps) drained at ``clock``.

        With a ``route_batch`` the whole batch is one routing call and one
        rejection mask write, and only the replicas that received ids have
        their pending flags raised; without one, the per-id ``route``
        fallback keeps arbitrary policies correct -- each id is offered at
        its own arrival time, exactly as the stepped core would -- and the
        pending flags are recomputed from the replicas afterwards.
        """
        if self.route_batch is not None:
            assigned = self.route_batch(batch, clock)
            # -1 is rejected; -2 means the router consumed the id itself
            # (an admission policy shed it) and accounted for it already.
            rejected = batch[assigned == -1]
            if rejected.size:
                if self.on_reject_batch is not None:
                    self.on_reject_batch(rejected)
                else:
                    for rid in rejected.tolist():
                        self.on_reject(rid)
            placed = assigned[assigned >= 0]
            if placed.size:
                # Duplicate indices are fine for a boolean scatter; skip
                # the sort np.unique would pay per window.
                pending[placed] = True
        else:
            for rid, when in zip(batch.tolist(), times.tolist()):
                if not self.route(rid, when):
                    self.on_reject(rid)
            for i, replica in enumerate(self.replicas):
                if not pending[i]:
                    pending[i] = bool(replica.queue_depth or replica.busy)

    def _run_event(self) -> int:
        replicas = self.replicas
        n = len(replicas)
        order = self.pool.arrival_order()
        # One contiguous sorted-arrival array: the ingest slice per event
        # is a searchsorted on it, not a per-arrival comparison loop.
        arrival_sorted = np.ascontiguousarray(self.pool.arrival_s[order])
        total = order.size
        pos = 0
        clock = 0.0
        next_ready = np.zeros(n, dtype=np.float64)
        pending = np.zeros(n, dtype=bool)
        iterations = 0
        self.iteration_counts = [0] * n
        faults = self.faults
        while True:
            if faults is not None and self._apply_faults(clock, next_ready):
                # A transition (crash reclaim/reroute, restart) may change
                # any replica's work; recompute all pending flags.
                for i, replica in enumerate(replicas):
                    pending[i] = bool(replica.queue_depth or replica.busy)
            # Batched ingest: every arrival with arrival_s <= clock, as one
            # slice of the sorted order ('right' side == the stepped <=).
            if pos < total and arrival_sorted[pos] <= clock:
                stop = pos + int(
                    np.searchsorted(arrival_sorted[pos:], clock, side="right")
                )
                batch = order[pos:stop]
                times = arrival_sorted[pos:stop]
                pos = stop
                self._ingest_batch(batch, times, clock, pending)
            if not pending.any():
                if pos >= total:
                    break
                target = float(arrival_sorted[pos])
                if faults is not None:
                    target = min(target, faults.next_time)
                clock = max(clock, target)
                continue
            # Masked argmin == min over (next_ready, index): numpy argmin
            # returns the first occurrence, i.e. the lowest replica index
            # among ties, matching the stepped core's deterministic pick.
            ready = np.where(pending, next_ready, np.inf)
            index = int(np.argmin(ready))
            ready_at = float(ready[index])
            if ready_at > clock:
                # With every replica pending, routing cannot change which
                # replica iterates next or when (next-ready times move only
                # in iterate, pending flags cannot rise further), so ALL
                # arrivals up to the ready time drain as one batch at the
                # loop top -- the million-request fast path.  With an idle
                # replica in the mix an arrival may wake it mid-window, and
                # it must iterate at that arrival's clock, so the advance
                # is clamped to the next arrival (the stepped semantics).
                if pos < total and not pending.all():
                    # Only an *accepting* idle replica can be woken by a
                    # routed arrival; a down or warming replica never
                    # receives work (routing masks it out), so it does not
                    # force per-arrival stepping.  Restart transitions are
                    # fault transitions, which clamp below.
                    if faults is None or bool(
                        np.any(~pending & faults.accepting)
                    ):
                        ready_at = min(ready_at, float(arrival_sorted[pos]))
                if faults is not None:
                    # Unconditional: a fault transition inside the window
                    # invalidates the "nothing can change" reasoning above.
                    ready_at = min(ready_at, faults.next_time)
                    if (
                        faults.next_time <= ready_at
                        and pos < total
                        and arrival_sorted[pos] < ready_at
                    ):
                        # Arrivals strictly before the transition must be
                        # routed against the pre-transition fault state, as
                        # the stepped core does; jumping straight to the
                        # transition would drain them at the loop top AFTER
                        # pop_due flips the accepting mask.  Reaching here
                        # means the wake clamp above did not fire (an idle
                        # accepting replica would have pulled ready_at
                        # under the transition), so nothing can change
                        # between these arrivals -- ingest every one of
                        # them as a single batch at the LAST pre-transition
                        # arrival, not one window per arrival.
                        stop = pos + int(
                            np.searchsorted(
                                arrival_sorted[pos:], ready_at, side="left"
                            )
                        )
                        ready_at = float(arrival_sorted[stop - 1])
                clock = ready_at
                continue
            replica = replicas[index]
            next_ready[index] = max(replica.iterate(clock), clock)
            # Only the iterated replica's pending state can change here:
            # routing is the sole other writer, and it raises flags itself.
            pending[index] = bool(replica.queue_depth or replica.busy)
            self.iteration_counts[index] += 1
            iterations += 1
            if iterations > self.max_iterations:
                raise self._convergence_error(clock, pos, total)
        return iterations


# ---------------------------------------------------------------------------
# Server base: a steppable replica with a bounded admission queue
# ---------------------------------------------------------------------------


class IdQueue:
    """Bounded FIFO of request ids on a preallocated numpy ring buffer.

    The replica-local admission queue.  Same ordering semantics as a
    ``deque`` (append/extend at the tail, pop at the head, ``remove``
    drops the first occurrence), but the bulk views the hot paths need --
    :meth:`as_array` for load snapshots and crash reclaim,
    :meth:`head_array` for engine admission -- are ring-buffer slices
    instead of per-element Python iteration.
    """

    __slots__ = ("_buf", "_head", "_size")

    def __init__(self, capacity: int) -> None:
        self._buf = np.empty(max(1, capacity), dtype=np.int64)
        self._head = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def head(self) -> int:
        """Peek the id at the front (the next :meth:`popleft`)."""
        return int(self._buf[self._head])

    def append(self, rid: int) -> None:
        buf = self._buf
        buf[(self._head + self._size) % buf.size] = rid
        self._size += 1

    def extend(self, rids: np.ndarray) -> None:
        buf = self._buf
        n = buf.size
        start = (self._head + self._size) % n
        count = int(rids.size)
        first = min(count, n - start)
        buf[start : start + first] = rids[:first]
        if first < count:
            buf[: count - first] = rids[first:]
        self._size += count

    def popleft(self) -> int:
        rid = int(self._buf[self._head])
        self._head = (self._head + 1) % self._buf.size
        self._size -= 1
        return rid

    def pop_many(self, count: int) -> None:
        """Drop the first ``count`` ids (already read via head_array)."""
        self._head = (self._head + count) % self._buf.size
        self._size -= count

    def head_array(self, count: int) -> np.ndarray:
        """The first ``min(count, len)`` ids, head first, as a copy."""
        count = min(count, self._size)
        buf, head = self._buf, self._head
        end = head + count
        if end <= buf.size:
            return buf[head:end].copy()
        return np.concatenate((buf[head:], buf[: end - buf.size]))

    def as_array(self) -> np.ndarray:
        """Every queued id, head first, as a copy."""
        return self.head_array(self._size)

    def clear(self) -> None:
        self._head = 0
        self._size = 0

    def remove(self, rid: int) -> None:
        """Drop the first occurrence of ``rid`` (priority eviction).

        Raises:
            ValueError: if the id is not queued here.
        """
        ids = self.as_array()
        hits = np.flatnonzero(ids == rid)
        if hits.size == 0:
            raise ValueError(f"request {rid} is not queued")
        kept = np.delete(ids, hits[0])
        self._head = 0
        self._size = int(kept.size)
        self._buf[: kept.size] = kept


class OnlineServer:
    """Base class of the online serving drivers -- a *steppable replica*.

    A server owns its scheduling policy and per-run engine state, but
    neither the request pool nor the event loop: :meth:`reset` binds it to
    a timeline and a (possibly shared) pool, after which a driver -- its
    own :meth:`serve` in the single-server case, a
    :class:`~repro.serving.fleet.Fleet` for N replicas behind a router --
    hands it request ids (:meth:`enqueue`) and steps it (:meth:`iterate`)
    through the shared :class:`ServingLoop`.  The server only ever touches
    the replica-local ids routed to it, so any number of replicas can
    operate on disjoint id slices of one shared pool.

    Subclasses implement one engine iteration (admit queued ids, plan the
    iteration's stage tasks through the shared :class:`ExecutionEngine`,
    advance the pool) and report the next iteration's start clock; the
    engine's deferred bookkeeping is resolved once, after the loop drains,
    by :meth:`resolve_records`.

    **Admission-queue bound.**  ``max_queue`` is the capacity of the
    replica-local admission queue, enforced at the instant of handoff:
    :meth:`enqueue` refuses (returns ``False``) exactly when
    ``queue_depth == max_queue``, and a refused arrival is *rejected* --
    dropped permanently, never retried.  Draining the queue into the
    engine is the subclass's scheduling policy and never rejects.  A fleet
    applies the same per-replica bound at its routing boundary (an arrival
    is rejected only when every routable replica's queue is full), so
    single-server and fleet rejection accounting agree by construction.

    Args:
        name: System name used in results.
        max_queue: Admission-queue capacity; arrivals beyond it are rejected.
    """

    def __init__(self, name: str, max_queue: int = 512) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.name = name
        self.max_queue = max_queue
        #: Straggler factor (durations multiply by it); the fleet sets it
        #: per serve from the fault schedule.  1.0 = healthy.
        self.slowdown = 1.0
        self._engine: ExecutionEngine | None = None
        self._pool: RequestPool | None = None
        self._queue = IdQueue(max_queue)
        # Load-snapshot cache: bumped on every mutation that can change
        # outstanding_tokens, so admission/routing reads between mutations
        # are O(1) instead of a queue + batch column reduction each.
        self._load_version = 0
        self._load_cached: tuple[int, int] = (-1, 0)

    # -- subclass hooks ----------------------------------------------------------

    def _reset(self, timeline: Timeline, pool: RequestPool) -> None:
        """Prepare per-run state (alive set, KV cache, engine, ...)."""
        raise NotImplementedError

    def _busy(self) -> bool:
        """Whether admitted-but-unfinished work remains."""
        raise NotImplementedError

    def _iterate(self, clock: float) -> float:
        """Run one engine iteration starting at ``clock``; returns the next
        iteration's start clock (must make progress whenever work was done)."""
        raise NotImplementedError

    def _in_flight_ids(self) -> np.ndarray:
        """Ids admitted into the engine and not yet shed by compaction."""
        return self._active

    def _crash(self) -> None:
        """Drop all engine scheduling state (subclass hook)."""
        raise NotImplementedError

    # -- steppable replica API ----------------------------------------------------

    def reset(self, timeline: Timeline, pool: RequestPool) -> None:
        """Bind the replica to a run: a fresh timeline and a (possibly
        shared) request pool it does not own.  Clears the admission queue
        and all per-run engine state."""
        self._timeline = timeline
        self._pool = pool
        self._queue = IdQueue(self.max_queue)
        self._load_version = 0
        self._load_cached = (-1, 0)
        self._reset(timeline, pool)

    @property
    def busy(self) -> bool:
        """Whether admitted-but-unfinished work remains in the engine."""
        return self._busy()

    @property
    def queue_depth(self) -> int:
        """Ids waiting in the replica-local admission queue (O(1))."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Ids admitted into the engine and not yet finished (O(1)).

        Routing policies read this per replica per decision, so it must
        count without materializing the id arrays (subclasses with extra
        in-flight stashes override the *count*, not :meth:`_in_flight_ids`,
        for this path).
        """
        return int(self._active.size)

    def enqueue(self, rid: int) -> bool:
        """Id handoff into the local admission queue.

        Returns ``False`` -- without side effects -- when the queue is at
        ``max_queue``; the caller must then reject the arrival (it is
        never retried).
        """
        if len(self._queue) >= self.max_queue:
            return False
        self._queue.append(rid)
        self._load_version += 1
        return True

    def enqueue_batch(self, rids: np.ndarray) -> int:
        """Admit the longest possible prefix of ``rids`` into the queue.

        Returns the count accepted -- exactly what per-id :meth:`enqueue`
        calls in the same order would accept, since the queue only grows
        during an ingest batch.  The caller rejects the rest.
        """
        space = self.max_queue - len(self._queue)
        if space <= 0:
            return 0
        accepted = min(space, int(rids.size))
        self._queue.extend(rids[:accepted])
        self._load_version += 1
        return accepted

    def queued_ids(self) -> list[int]:
        """The admission queue's ids, head first (admission-policy view)."""
        return self._queue.as_array().tolist()

    def drain_queue(self) -> np.ndarray:
        """Empty the admission queue, returning its ids head first.

        The crash-reclaim primitive: one ring-buffer slice and one clear,
        so the fleet's crash handler never walks the queue itself.
        """
        ids = self._queue.as_array()
        self._queue.clear()
        self._load_version += 1
        return ids

    def remove_queued(self, rid: int) -> None:
        """Drop one id from the admission queue (priority eviction).

        Raises:
            ValueError: if the id is not queued here.
        """
        self._queue.remove(rid)
        self._load_version += 1

    def preemptible_ids(self) -> np.ndarray:
        """In-flight ids a priority policy may preempt (the running batch;
        ids parked in a KV handover are not preemptible)."""
        return self._active

    def preempt(self, rid: int) -> None:
        """Evict one id from the running batch (priority preemption).

        The caller owns the rest of the preemption protocol: rewinding the
        id's progress through ``pool.requeue`` and re-enqueueing it.

        Raises:
            ValueError: if the id is not in the running batch.
        """
        remaining = self._active[self._active != rid]
        if remaining.size == self._active.size:
            raise ValueError(f"request {rid} is not in the running batch")
        self._active = remaining
        self._load_version += 1
        self._release_preempted(rid)

    def _release_preempted(self, rid: int) -> None:
        """Free per-request engine resources of a preempted id (hook)."""

    def crash(self) -> None:
        """Lose all engine scheduling state mid-serve (replica failure).

        The caller (the fleet's crash handler) drains the admission queue
        and requeues the in-flight ids first; this call then forgets the
        running batch, KV state and iteration chaining.  The timeline and
        deferred bookkeeping survive: work the replica already executed
        stays priced, and stale events of ids that finish elsewhere are
        filtered out at record resolution by final assignment.
        """
        self._load_version += 1
        self._crash()

    def iterate(self, clock: float) -> float:
        """Run one engine iteration starting at ``clock``; returns the
        next iteration's start clock."""
        self._load_version += 1
        return self._iterate(clock)

    def outstanding_tokens(self) -> int:
        """Tokens owed by everything routed to this replica.

        Queued ids owe their prefill (input tokens) and full generation;
        in-flight ids owe their remaining generation.  The column
        reduction -- O(queue + batch), independent of the pool's total
        size -- runs only when the replica mutated since the last read;
        admission and routing policies polling every replica per decision
        hit the cached value (O(1)), which is exact because every
        mutation point bumps ``_load_version``.
        """
        version, value = self._load_cached
        if version == self._load_version:
            return value
        pool = self._pool
        queued = self._queue.as_array()
        value = (
            pool.total_input(queued)
            + pool.remaining_tokens(queued)
            + pool.remaining_tokens(self._in_flight_ids())
        )
        self._load_cached = (self._load_version, value)
        return value

    def service_rate(self) -> float:
        """Cost-model estimate of the replica's token throughput (tokens/s).

        Least-outstanding-work routing divides each replica's
        :meth:`outstanding_tokens` by this rate, so replicas -- including
        heterogeneous ones -- are compared in estimated drain *time*.
        """
        raise NotImplementedError

    def effective_service_rate(self) -> float:
        """:meth:`service_rate` corrected for the straggler slowdown.

        Routing and load shedding compare replicas through this, so a 4x
        straggler looks (and is) 4x slower.  At the default slowdown of
        1.0 the rate is returned untouched, bit for bit.
        """
        rate = self.service_rate()
        if self.slowdown == 1.0:
            return rate
        return rate / self.slowdown

    def clone(self, name: str | None = None) -> "OnlineServer":
        """A fresh, identically configured server (a fleet replica)."""
        raise NotImplementedError

    def resolve_records(
        self,
        records: RecordColumns,
        assignments: np.ndarray | None = None,
        index: int = 0,
    ) -> None:
        """Resolve the engine's deferred bookkeeping into the record
        columns of the ids this replica served -- one scatter per event
        batch.

        With ``assignments`` (the fleet's final id->replica map), each
        event batch is filtered to the ids whose *final* assignment is
        this replica: a crashed or preempting replica's bookkeeping holds
        stale events for ids that finished elsewhere, and without the
        filter a lower-indexed replica's stale stamps would overwrite a
        survivor's real ones.  Within one replica, later events of a
        requeued id overwrite its earlier partial stamps (per-category
        insertion order), which is the correct final state.
        """
        self._timeline.schedule_pending()
        bookkeeping = self._engine.bookkeeping
        for event, ids, when in bookkeeping.resolve_events(self._timeline):
            if assignments is not None:
                ids = ids[assignments[ids] == index]
                if not ids.size:
                    continue
            if event == "admitted":
                records.admitted_s[ids] = when
            elif event == "first_token":
                records.first_token_s[ids] = when
            else:
                records.finish_s[ids] = when

    # -- the single-replica serving entry point -----------------------------------

    def serve(
        self,
        trace: WorkloadTrace,
        scenario: str = "",
        offered_rate_qps: float = 0.0,
        core: str = DEFAULT_CORE,
    ) -> OnlineResult:
        """Serve an arrival-stamped trace and collect per-request records.

        The 1-replica instantiation of :class:`ServingLoop`: this server
        is the only replica, routing is a direct :meth:`enqueue`, and an
        arrival that finds the queue at ``max_queue`` is rejected.
        """
        if len(trace) == 0:
            raise ValueError("trace must contain at least one request")
        return self.serve_pool(
            RequestPool.from_trace(trace),
            scenario=scenario,
            offered_rate_qps=offered_rate_qps,
            core=core,
        )

    def serve_pool(
        self,
        pool: RequestPool,
        scenario: str = "",
        offered_rate_qps: float = 0.0,
        core: str = DEFAULT_CORE,
    ) -> OnlineResult:
        """Serve an arrival-stamped request pool directly.

        The trace-free entry point for large sweeps: a million-request
        pool built from arrays (:meth:`RequestPool.from_arrays`) is served
        without ever materializing per-request spec or record objects on
        the hot path.  The pool's generation progress is reset first, so
        the same pool can be served repeatedly (across cores, configs or
        fleets); without the reset a second serve would see every request
        already ``done`` and silently complete nothing.
        """
        if len(pool) == 0:
            raise ValueError("pool must contain at least one request")
        pool.reset_progress()
        records = RecordColumns(pool)
        self.reset(Timeline(), pool)

        def route_batch(rids: np.ndarray, clock: float) -> np.ndarray:
            accepted = self.enqueue_batch(rids)
            assigned = np.zeros(rids.size, dtype=np.int64)
            assigned[accepted:] = -1
            return assigned

        loop = ServingLoop(
            pool,
            [self],
            route=lambda rid, clock: self.enqueue(rid),
            on_reject=records.reject,
            route_batch=route_batch,
            on_reject_batch=records.reject_batch,
            name=self.name,
            core=core,
        )
        iterations = loop.run()
        self.resolve_records(records)
        return OnlineResult.from_columns(
            system=self.name,
            scenario=scenario,
            offered_rate_qps=offered_rate_qps,
            columns=records,
            makespan_s=self._timeline.makespan_s,
            extra=self._extra(iterations),
        )

    def _extra(self, iterations: int) -> dict[str, float]:
        return {"iterations": float(iterations)}


# ---------------------------------------------------------------------------
# Driver 1: iteration-level continuous batching (ORCA / vLLM online)
# ---------------------------------------------------------------------------


class ContinuousBatchingOnlineServer(OnlineServer):
    """Online driver for the ORCA-family baselines.

    Replays the baseline's iteration-level policy against an arrival stream:
    each iteration decodes the running batch and prefills at most
    ``system.max_prefills_per_iteration`` newly admitted requests, subject to
    the batch cap and the system's KV cache (contiguous for ORCA, paged for
    vLLM).

    Args:
        system: The cost/KV model (an :class:`Orca` or :class:`Vllm`).
        batch_size: Running-batch cap (typically from ``configure_for_bound``).
        max_queue: Admission-queue capacity.
        batched_pricing: Resolve stage durations through the vectorized
            profile lookups (default); ``False`` keeps the scalar reference
            path for the perf-regression harness.
        plan_templates: Use the plan-free steady-state fast path for
            decode-only cycles (default); ``False`` keeps the historical
            per-cycle plan construction, which the template path must match
            bit for bit (the template-parity serving tests).  Only active
            with ``batched_pricing``.
        pricing_cache: Give the engine a memoized pricing cache (default);
            ``False`` prices every cycle through fresh lookups.
    """

    def __init__(
        self,
        system: BaselineSystem,
        batch_size: int,
        max_queue: int = 512,
        name: str | None = None,
        batched_pricing: bool = True,
        plan_templates: bool = True,
        pricing_cache: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        super().__init__(name=name or f"{system.name}-online", max_queue=max_queue)
        self.system = system
        self.batch_size = batch_size
        self.batched_pricing = batched_pricing
        self.plan_templates = plan_templates
        self.pricing_cache = pricing_cache

    def clone(self, name: str | None = None) -> "ContinuousBatchingOnlineServer":
        return ContinuousBatchingOnlineServer(
            system=self.system,
            batch_size=self.batch_size,
            max_queue=self.max_queue,
            name=name or self.name,
            batched_pricing=self.batched_pricing,
            plan_templates=self.plan_templates,
            pricing_cache=self.pricing_cache,
        )

    def service_rate(self) -> float:
        """Token throughput of a full decode batch at the workload's mean
        context, priced through the baseline's profiled stage times."""
        system = self.system
        context = (
            system.input_distribution.mean + system.output_distribution.mean / 2.0
        )
        step_s = sum(
            system.decode_times(system.placement.stages, self.batch_size, context)
        )
        if step_s <= 0:
            return float("inf")
        return self.batch_size / step_s

    def _reset(self, timeline: Timeline, pool: RequestPool) -> None:
        self._active = EMPTY_IDS
        self._cache = self.system._make_kv_cache()
        self._prev_last_task: TaskRef | None = None
        self._engine = self.system.make_engine(
            timeline,
            pool,
            batched_pricing=self.batched_pricing,
            pricing_cache=self.pricing_cache,
        )

    def _crash(self) -> None:
        # The running batch and its KV state die with the replica; the
        # iteration chain is cut so the restarted replica plans afresh.
        self._active = EMPTY_IDS
        self._cache = self.system._make_kv_cache()
        self._prev_last_task = None

    def _release_preempted(self, rid: int) -> None:
        self.system._release(self._cache, self._pool, rid)

    def _busy(self) -> bool:
        return bool(self._active.size)

    def _iterate(self, clock: float) -> float:
        system = self.system
        stages = system.placement.stages
        engine = self._engine
        pool = self._pool

        admitted: list[int] = []
        while (
            self._queue
            and self._active.size + len(admitted) < self.batch_size
            and len(admitted) < system.max_prefills_per_iteration
        ):
            candidate = self._queue.head()
            if not system._admit(self._cache, pool, candidate):
                break
            self._queue.popleft()
            admitted.append(candidate)

        # The alive set is kept compacted between iterations.
        alive = self._active
        if not alive.size and not admitted:
            # KV cache full but nothing decoding would be a deadlock; the
            # pool is drained before this can happen, so only an impossible
            # single request reaches here.
            raise RuntimeError(
                f"{self.name}: cannot admit any request; KV cache too small"
            )

        admitted_ids = np.asarray(admitted, dtype=np.int64)
        if not admitted and self.plan_templates and self.batched_pricing:
            # Decode-only cycle: the plan structure is one decode component
            # per stage, so skip plan construction and emit straight from
            # cached prices (bit-identical to the plan path below).
            outcome = engine.mixed_decode_template(
                stages, alive, prev_last=self._prev_last_task, release_s=clock,
            )
        else:
            plan = engine.plan()
            outcome = engine.mixed_iteration(
                plan, stages, alive, admitted_ids,
                prev_last=self._prev_last_task, release_s=clock,
            )
            engine.commit(plan)
        self._prev_last_task = outcome.last

        system._release_batch(self._cache, pool, outcome.completed)
        self._active = pool.compact(np.concatenate([alive, admitted_ids]))

        return self._timeline.finish_time(outcome.last.task_id)

    def _extra(self, iterations: int) -> dict[str, float]:
        return {
            "iterations": float(iterations),
            "batch_size": float(self.batch_size),
            "peak_kv_gib": self._cache.peak_bytes / (1024 ** 3),
        }


# ---------------------------------------------------------------------------
# Driver 2: ExeGPT schedules online (RRA and WAA)
# ---------------------------------------------------------------------------


class ExeGPTOnlineServer(OnlineServer):
    """Enforces an ExeGPT schedule against an arrival stream.

    RRA runs in cycles: an encode phase admits arrived requests (dynamic
    workload adjustment, Section 5.2), then ``N_D`` pipelined decode
    iterations run over the standing pool.  WAA encodes on its dedicated
    stages concurrently with decoding (``N_D = 1``), handing batches to the
    decode pool through the KV-transfer link.  Admission is gated by the
    simulated clock: only requests that have actually arrived can join an
    encode phase, and an idle server fast-forwards to the next arrival.

    Args:
        simulator: The XSimulator holding profile and distributions.
        config: The schedule to enforce (typically ``XScheduler``'s best).
        max_queue: Admission-queue capacity.
        dynamic_adjustment: Enable the Section 5.2 admission adjuster.
        batched_pricing: Resolve stage durations through the vectorized
            profile lookups (default); ``False`` keeps the scalar reference
            path for the perf-regression harness.
        plan_templates: Emit each cycle's decode iterations through the
            bulk :meth:`~repro.engine.execution.ExecutionEngine.decode_run`
            fast path (default); ``False`` keeps the historical
            plan-per-cycle loop, which the bulk path must match bit for
            bit (the template-parity serving tests).  Only active with
            ``batched_pricing``.
        pricing_cache: Give the engine a memoized pricing cache (default);
            ``False`` prices every cycle through fresh lookups.
    """

    def __init__(
        self,
        simulator: XSimulator,
        config: ScheduleConfig,
        max_queue: int = 512,
        dynamic_adjustment: bool = True,
        name: str | None = None,
        batched_pricing: bool = True,
        plan_templates: bool = True,
        pricing_cache: bool = True,
    ) -> None:
        super().__init__(
            name=name or f"exegpt-{config.policy.value}-online", max_queue=max_queue
        )
        self.simulator = simulator
        self.config = config
        self.profile = simulator.profile
        self.model = simulator.model
        self.placement = simulator.build_placement(config)
        self.dynamic_adjustment = dynamic_adjustment
        self.batched_pricing = batched_pricing
        self.plan_templates = plan_templates
        self.pricing_cache = pricing_cache
        self.decoder_only = not self.model.is_encoder_decoder
        self.is_waa = config.policy.is_waa

    def clone(self, name: str | None = None) -> "ExeGPTOnlineServer":
        return ExeGPTOnlineServer(
            simulator=self.simulator,
            config=self.config,
            max_queue=self.max_queue,
            dynamic_adjustment=self.dynamic_adjustment,
            name=name or self.name,
            batched_pricing=self.batched_pricing,
            plan_templates=self.plan_templates,
            pricing_cache=self.pricing_cache,
        )

    def service_rate(self) -> float:
        """The simulator's steady-state token throughput of the schedule."""
        return self.simulator.estimate(self.config).throughput_tokens_per_s

    @property
    def in_flight(self) -> int:
        """Decode pool plus batches waiting in the KV handover (O(1))."""
        return int(self._active.size) + self._handover.pending_count

    def _in_flight_ids(self) -> np.ndarray:
        if not self._handover:
            return self._active
        return np.concatenate([self._active, self._handover.pending_ids()])

    def _make_adjuster(self) -> DynamicWorkloadAdjuster:
        decode_batch = self.simulator.derived_decode_batch(self.config)
        return DynamicWorkloadAdjuster(
            target_encode_batch=self.config.encode_batch,
            target_decode_batch=max(decode_batch, 1.0),
            avg_input_len=max(self.simulator.input_distribution.mean, 1.0),
            enabled=self.dynamic_adjustment,
        )

    def _reset(self, timeline: Timeline, pool: RequestPool) -> None:
        self._active = EMPTY_IDS
        self._adjuster = self._make_adjuster()
        self._decode_target = max(int(round(self._adjuster.target_decode_batch)), 1)
        self._freed_last_cycle = 0
        # Maps group index -> previous iteration's tail (a TaskRef from the
        # plan path, a committed task id from the decode_run fast path).
        self._prev_iter_last: dict[int, object] = {}
        self._cycles = 0
        # WAA: batches encoded but not yet merged into the decode pool.
        self._handover = KVHandover()
        self._engine = ExecutionEngine(
            timeline,
            self.profile,
            self.placement,
            pool,
            decoder_only=self.decoder_only,
            batched_pricing=self.batched_pricing,
            pricing_cache=self.pricing_cache,
        )

    def _crash(self) -> None:
        # Decode pool, handover stash and the adjuster's admission memory
        # die with the replica; the cycle counter and timeline survive.
        self._active = EMPTY_IDS
        self._adjuster = self._make_adjuster()
        self._freed_last_cycle = 0
        self._prev_iter_last = {}
        self._handover = KVHandover()

    def _busy(self) -> bool:
        return bool(self._active.size) or bool(self._handover)

    def _admit_from_queue(self) -> np.ndarray:
        adjuster = self._adjuster
        head = self._queue.head_array(adjuster.max_admit)
        count = adjuster.admit_count(
            self._pool.input_lens(head), self._active.size, self._freed_last_cycle
        )
        admitted = head[:count]
        self._queue.pop_many(count)
        self._pool.set_admitted_cycle(admitted, self._cycles)
        return admitted

    def _iterate(self, clock: float) -> float:
        if self.is_waa:
            next_clock = self._iterate_waa(clock)
        else:
            next_clock = self._iterate_rra(clock)
        # The single compaction point of a cycle: both policies shed the
        # cycle's completed requests here, so the alive-set bookkeeping
        # cannot diverge between the RRA and WAA paths.
        self._active = self._pool.compact(self._active)
        return next_clock

    # -- RRA: encode phase + N_D decode iterations per cycle ---------------------

    def _iterate_rra(self, clock: float) -> float:
        placement = self.placement
        stages = placement.stages
        micro_batches = max(len(stages), 1)
        engine = self._engine

        admitted = self._admit_from_queue()

        plan = engine.plan()
        encode_last_tasks: list[TaskRef] = []
        if admitted.size:
            groups = split_ids(admitted, micro_batches)
            encode_last_tasks = engine.encode_phase(
                plan, stages, groups, release_s=clock
            )
            self._active = np.concatenate([self._active, admitted])

        self._freed_last_cycle = 0
        if self.plan_templates and self.batched_pricing:
            # Bulk fast path: commit the encode phase, then emit the whole
            # decode run of the cycle straight onto the timeline from one
            # vectorized pool pass per micro-batch -- same task order as
            # the plan loop below, bit for bit.
            engine.commit(plan)
            if self._active.size:
                groups = split_ids(self._active, micro_batches)
                outcome = engine.decode_run(
                    stages,
                    groups,
                    self.config.decode_iterations,
                    first_deps=encode_last_tasks,
                    release_s=clock,
                )
                self._freed_last_cycle = outcome.freed
        else:
            if self._active.size:
                groups = split_ids(self._active, micro_batches)
                prev_iter_last: dict[int, TaskRef] = {}
                for iteration in range(self.config.decode_iterations):
                    outcome = engine.decode_iteration(
                        plan,
                        stages,
                        groups,
                        first_deps=encode_last_tasks if iteration == 0 else [],
                        prev_last=prev_iter_last,
                        release_s=clock,
                    )
                    self._freed_last_cycle += outcome.freed
                    if not outcome.any_alive:
                        break
            engine.commit(plan)

        self._cycles += 1
        # The next cycle's encode can begin once the first stage drains.
        return self._timeline.stage_free_at(stages[0].stage_id, default=clock)

    # -- WAA: concurrent encode + one pipelined decode iteration ------------------

    def _iterate_waa(self, clock: float) -> float:
        placement = self.placement
        encode_stages = placement.encode_stages
        decode_stages = placement.decode_stages
        if not encode_stages or not decode_stages:
            raise ValueError("WAA placement needs both encode and decode stages")
        engine = self._engine

        plan = engine.plan()
        transfer_task: TaskRef | None = None
        admitted = self._admit_from_queue() if self._queue else EMPTY_IDS
        if admitted.size:
            _, enc_last = engine.encode_chain(
                plan,
                encode_stages,
                admitted,
                stage_key=lambda s: ("enc", s.stage_id),
                release_s=clock,
            )
            kv_layers = self.model.num_decoder_layers if self.decoder_only else 1
            transfer_task = engine.kv_transfer(
                plan, admitted, enc_last, kv_layers, handover=self._handover
            )

        # Merge at most one previously encoded batch into the decode pool.
        self._active, merge_deps = self._handover.merge_one(
            self._active, transfer_task
        )

        self._freed_last_cycle = 0
        if self.plan_templates and self.batched_pricing:
            # Commit the encode/transfer plan first, then emit the decode
            # iteration plan-free (same task order as the plan path below).
            engine.commit(plan)
            if self._active.size:
                groups = split_ids(self._active, self.config.micro_batches)
                outcome = engine.decode_run(
                    decode_stages,
                    groups,
                    1,
                    first_deps=merge_deps,
                    prev_last=self._prev_iter_last,
                    stage_key=lambda s: ("dec", s.stage_id),
                    release_s=clock,
                )
                self._freed_last_cycle = outcome.freed
        else:
            if self._active.size:
                groups = split_ids(self._active, self.config.micro_batches)
                outcome = engine.decode_iteration(
                    plan,
                    decode_stages,
                    groups,
                    first_deps=merge_deps,
                    prev_last=self._prev_iter_last,
                    stage_key=lambda s: ("dec", s.stage_id),
                    release_s=clock,
                )
                self._freed_last_cycle = outcome.freed
            engine.commit(plan)

        self._cycles += 1
        # Advance to the next time an admission decision can change: the
        # encoder freeing up or the decode iteration just built finishing.
        # Only strictly-future times count -- a stale encoder free-time from
        # an earlier batch must not freeze the clock (and with it arrival
        # ingestion) while the decode side is still draining the pool.
        candidates = [
            self._timeline.stage_free_at(
                ("enc", encode_stages[0].stage_id), default=-1.0
            ),
            self._timeline.stage_free_at(
                ("dec", decode_stages[0].stage_id), default=-1.0
            ),
        ]
        future = [c for c in candidates if c > clock]
        return min(future) if future else clock

    def _extra(self, iterations: int) -> dict[str, float]:
        return {
            "iterations": float(iterations),
            "decode_batch_target": float(self._decode_target),
        }


# ---------------------------------------------------------------------------
# Rate sweeps: maximum sustainable QPS under an SLO
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RatePoint:
    """One (system, scenario, rate) measurement of a sweep.

    Attributes:
        system / scenario: What was measured.
        rate_qps: Offered mean arrival rate.
        sustainable: Whether the SLO held (and nothing was rejected).
        result: The full online result.
    """

    system: str
    scenario: str
    rate_qps: float
    sustainable: bool
    result: OnlineResult


class OnlineEvaluator:
    """Sweeps offered request rates to find each system's capacity.

    For every (system, scenario, rate) triple the evaluator stamps the shared
    request trace with scenario arrivals at that rate, serves it online, and
    checks the SLO; the *maximum sustainable QPS* is the highest offered rate
    whose run completes every request within the SLO.

    Sweeps are fleet-aware: every measurement method accepts ``replicas``
    (deployment size) and ``routing`` (policy name or
    :class:`~repro.serving.fleet.RoutingPolicy`).  With ``replicas=1``
    (default) the system's single server serves the trace; with
    ``replicas=N`` an N-replica :class:`~repro.serving.fleet.Fleet` of
    cloned servers serves it over one shared pool, the offered rate is the
    *fleet-wide* rate, and the SLO is checked on the fleet-wide result
    (per-replica results stay available via :meth:`fleet`).  Fleets are
    cached per (system, replicas, policy) just like servers, so the
    schedule search still runs once per system.

    The SLO is an :class:`~repro.serving.sla.SLA` evaluated against
    end-to-end latency (queueing included); ``max_rejection_rate`` relaxes
    the no-drops requirement.

    One :class:`~repro.core.simulator.EstimateContext` backs the whole
    sweep.  The memoization itself lives on the simulator (``context`` is
    its lazily built, cached property); the evaluator forces and pins that
    context at construction and exposes it as :attr:`context`, so even if
    the engine's distributions are swapped mid-sweep the servers built here
    keep pricing against one consistent set of memoized placements,
    distribution statistics and RRA completion arrays.  The schedule search
    runs once per *system* -- when its server is first built, cached in
    ``_servers`` -- never per offered rate.

    Args:
        engine: The ExeGPT instance providing model, profile, distributions.
        trace: The request trace (lengths only; arrivals are stamped per
            sweep point).
        slo: The latency SLO.
        max_queue: Admission-queue capacity for every server.
        schedule_headroom: Fraction of the SLO bound given to the schedule
            search / batch configuration; the remainder absorbs queueing.
        max_rejection_rate: Tolerated fraction of dropped requests.
        seed: Seed for arrival sampling (one fixed stream per sweep point).
        servers / fleets: Optional externally owned server/fleet caches.
            Evaluators are cheap to construct but the schedule search
            behind :meth:`server` is not; callers that rebuild an
            evaluator per measurement from picklable specs -- the campaign
            workers in :mod:`repro.campaign.runner` -- pass shared dicts
            here so every evaluator of one process reuses the same
            searched servers and cloned fleets.  The caches are keyed by
            system / (system, replicas, policy) only, so share them
            exclusively between evaluators with identical engine, SLO,
            ``max_queue`` and ``schedule_headroom``.
    """

    def __init__(
        self,
        engine,
        trace: WorkloadTrace,
        slo: SLA,
        max_queue: int = 512,
        schedule_headroom: float = 0.7,
        max_rejection_rate: float = 0.0,
        seed: int = 0,
        servers: dict | None = None,
        fleets: dict | None = None,
    ) -> None:
        if not 0 < schedule_headroom <= 1:
            raise ValueError("schedule_headroom must be in (0, 1]")
        self.engine = engine
        self.trace = trace
        self.slo = slo
        self.max_queue = max_queue
        self.schedule_headroom = schedule_headroom
        self.max_rejection_rate = max_rejection_rate
        self.seed = seed
        self._servers: dict[str, OnlineServer] = (
            servers if servers is not None else {}
        )
        self._fleets: dict[tuple[str, int, str], object] = (
            fleets if fleets is not None else {}
        )
        # Force the simulator's lazily built memoized context now and pin it
        # for the evaluator's lifetime (see the class docstring).
        self.context = engine.simulator.context

    # -- server / fleet construction -----------------------------------------------

    def server(self, system: str) -> OnlineServer:
        """Build (and cache) the online server for a system name.

        Construction lives in
        :func:`repro.serving.evaluation.build_online_server`: ``"exegpt"``
        searches RRA/WAA schedules under the headroom-scaled SLO bound;
        ``"orca"`` / ``"vllm"`` configure the baseline's batch size for the
        same bound.
        """
        from repro.serving.evaluation import build_online_server

        key = system.lower()
        if key in self._servers:
            return self._servers[key]
        server = build_online_server(
            self.engine,
            key,
            self.slo.bound_s,
            max_queue=self.max_queue,
            schedule_headroom=self.schedule_headroom,
        )
        self._servers[key] = server
        return server

    def fleet(self, system: str, replicas: int, routing="jsq"):
        """Build (and cache) an N-replica fleet of a system's server.

        The fleet's replicas are clones of the cached single server, so the
        schedule search / batch configuration runs once per system no
        matter how many deployment sizes are swept.  Fleets are cached per
        (system, replicas, policy *name*) for string routings; a
        :class:`~repro.serving.fleet.RoutingPolicy` *instance* is the
        caller's own (possibly stateful or instrumented) object, so it
        always gets a fresh, uncached fleet built around exactly that
        instance.
        """
        from repro.serving.fleet import Fleet, RoutingPolicy, make_routing

        if isinstance(routing, RoutingPolicy):
            return Fleet.homogeneous(self.server(system), replicas, routing=routing)
        key = (system.lower(), replicas, make_routing(routing).name)
        if key in self._fleets:
            return self._fleets[key]
        fleet = Fleet.homogeneous(self.server(system), replicas, routing=routing)
        self._fleets[key] = fleet
        return fleet

    # -- sweeping --------------------------------------------------------------------

    def measure(
        self,
        system: str,
        process: ArrivalProcess,
        scenario: str = "",
        replicas: int = 1,
        routing="jsq",
    ) -> RatePoint:
        """Serve the trace under one arrival process and check the SLO.

        With ``replicas > 1`` the trace is served by an N-replica fleet;
        ``process.rate_qps`` is then the fleet-wide offered rate and the
        returned point's result is the fleet-wide :class:`OnlineResult`.
        """
        online_trace = attach_arrivals(self.trace, process, seed=self.seed)
        if replicas <= 1:
            result = self.server(system).serve(
                online_trace,
                scenario=scenario or process.name,
                offered_rate_qps=process.rate_qps,
            )
        else:
            result = self.fleet(system, replicas, routing).serve(
                online_trace,
                scenario=scenario or process.name,
                offered_rate_qps=process.rate_qps,
            ).fleet
        return RatePoint(
            system=result.system,
            scenario=result.scenario,
            rate_qps=process.rate_qps,
            sustainable=result.satisfies(self.slo, self.max_rejection_rate),
            result=result,
        )

    def sweep(
        self,
        system: str,
        scenario: str,
        rates: list[float] | tuple[float, ...],
        stop_after_failure: bool = True,
        replicas: int = 1,
        routing="jsq",
    ) -> list[RatePoint]:
        """Measure one system over increasing offered rates of a scenario.

        With ``stop_after_failure`` the sweep aborts once a rate misses the
        SLO (capacity is monotone in practice, so higher rates only waste
        simulation time).
        """
        points: list[RatePoint] = []
        for rate in sorted(rates):
            process = make_scenario(scenario, rate)
            point = self.measure(
                system, process, scenario=scenario,
                replicas=replicas, routing=routing,
            )
            points.append(point)
            if stop_after_failure and not point.sustainable:
                break
        return points

    def max_sustainable_qps(
        self,
        system: str,
        scenario: str,
        rates: list[float] | tuple[float, ...],
        replicas: int = 1,
        routing="jsq",
        refine_steps: int = 0,
    ) -> float:
        """Highest offered rate of ``rates`` the deployment sustains (0 if
        none).  ``replicas``/``routing`` select an N-replica fleet; rates
        are fleet-wide, so an N-replica sweep is typically handed a rate
        grid scaled by N (see ``ArrivalProcess.scaled``).

        ``refine_steps`` adds a bisection stage after the coarse ladder:
        when the ladder brackets the capacity (a sustainable rate directly
        below an unsustainable one), each step serves the midpoint rate
        and halves the bracket, so a sweep resolves capacity to
        ``gap / 2**refine_steps`` with ``refine_steps`` extra serves
        instead of a finer ladder's full grid.  SLO semantics are exactly
        the ladder's (:meth:`measure` per point); at the default of 0 the
        result is the ladder-only reference, bit for bit.
        """
        best = 0.0
        failed = 0.0
        for point in self.sweep(
            system, scenario, rates, replicas=replicas, routing=routing
        ):
            if point.sustainable:
                best = max(best, point.rate_qps)
            else:
                failed = point.rate_qps
        if refine_steps > 0 and best > 0.0 and failed > best:
            lo, hi = best, failed
            for _ in range(refine_steps):
                mid = (lo + hi) / 2.0
                point = self.measure(
                    system, make_scenario(scenario, mid), scenario=scenario,
                    replicas=replicas, routing=routing,
                )
                if point.sustainable:
                    lo = mid
                else:
                    hi = mid
            best = lo
        return best

    def evaluate(
        self,
        systems: tuple[str, ...] = ("exegpt", "orca", "vllm"),
        scenarios: tuple[str, ...] = ("steady", "bursty", "diurnal"),
        rates: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0),
        replicas: int = 1,
        routing="jsq",
    ) -> dict[tuple[str, str], float]:
        """Max sustainable QPS for every (system, scenario) pair."""
        table: dict[tuple[str, str], float] = {}
        for system in systems:
            for scenario in scenarios:
                table[(system, scenario)] = self.max_sustainable_qps(
                    system, scenario, rates, replicas=replicas, routing=routing
                )
        return table

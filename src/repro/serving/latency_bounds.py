"""Latency-bound selection (Section 7.1, Evaluation Scenarios).

The paper derives four latency constraints per (model, task) scenario: it
first runs FasterTransformer with batch sizes from the minimum to the
maximum in multiples of four, collects the worst-case latencies of those
runs, and uses the bottom 10%, 30% and 70% of that latency range plus
infinity as the four bounds.  The bound always refers to generating the
99th-percentile-length output sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.faster_transformer import FasterTransformer
from repro.core.config import LatencyConstraint


@dataclass(frozen=True)
class LatencyBoundSet:
    """The four bounds of one evaluation scenario.

    Attributes:
        tight / medium / relaxed: The bottom-10%, 30% and 70% bounds.
        unbounded: The infinite bound.
    """

    tight: LatencyConstraint
    medium: LatencyConstraint
    relaxed: LatencyConstraint
    unbounded: LatencyConstraint

    def __iter__(self):
        return iter((self.tight, self.medium, self.relaxed, self.unbounded))

    def as_list(self) -> list[LatencyConstraint]:
        """The four bounds, tightest first."""
        return [self.tight, self.medium, self.relaxed, self.unbounded]


def ft_latency_range(
    system: FasterTransformer,
    min_batch: int = 4,
    max_batch: int = 128,
    step: int = 4,
) -> list[float]:
    """Worst-case FT latencies for batch sizes ``min_batch..max_batch``."""
    if min_batch < 1 or max_batch < min_batch or step < 1:
        raise ValueError("invalid batch sweep parameters")
    latencies = []
    batch = min_batch
    while batch <= max_batch:
        latencies.append(system.worst_case_latency(batch))
        batch += step
    return latencies


def derive_latency_bounds(
    system: FasterTransformer,
    target_length: int,
    min_batch: int = 4,
    max_batch: int = 128,
    step: int = 4,
) -> LatencyBoundSet:
    """Derive the paper's four latency bounds from an FT batch sweep.

    Args:
        system: The FT baseline configured for the scenario's model/cluster.
        target_length: The 99th-percentile output length the bounds refer to.
        min_batch / max_batch / step: The batch sweep.
    """
    latencies = sorted(ft_latency_range(system, min_batch, max_batch, step))
    lo, hi = latencies[0], latencies[-1]
    span = hi - lo

    def at(fraction: float) -> float:
        return lo + fraction * span

    return LatencyBoundSet(
        tight=LatencyConstraint(at(0.10), target_length=target_length, label="10%"),
        medium=LatencyConstraint(at(0.30), target_length=target_length, label="30%"),
        relaxed=LatencyConstraint(at(0.70), target_length=target_length, label="70%"),
        unbounded=LatencyConstraint(
            float("inf"), target_length=target_length, label="Inf"
        ),
    )

"""Multi-replica serving: a routing fleet over ONE shared request pool.

The online drivers of :mod:`repro.serving.online` simulate one server; this
module scales them out.  A :class:`Fleet` owns

* **one shared** :class:`~repro.engine.pool.RequestPool` loaded from the
  trace (the single source of request lifecycle state),
* the **bounded admission queue**, realized as per-replica slices: each
  replica's local queue holds at most its ``max_queue`` ids, and an arrival
  is rejected at the *routing boundary* -- exactly when no routable replica
  has queue space -- so fleet and single-server rejection accounting agree
  by construction, and
* **N steppable replicas** -- any :class:`~repro.serving.online.OnlineServer`
  subclasses, homogeneous clones or per-replica schedules/placements --
  each bound to the shared pool and its own
  :class:`~repro.engine.timeline.Timeline`.

Admission is an **id handoff**: the routing policy picks a replica and the
request's id moves into that replica's local queue; the pool's columns are
never copied or partitioned.  Because every pool operation touches only the
ids it is given (see the multi-owner notes in :mod:`repro.engine.pool`),
replicas operating on disjoint id slices cannot interfere, and fleet-wide
aggregates -- queue depth, in-flight requests, outstanding work, completed
counts -- are O(1) counters or single column reductions over the shared
pool.

Routing policies:

* :class:`RoundRobinRouting` -- cyclic assignment, skipping full queues.
* :class:`JoinShortestQueueRouting` -- fewest queued + in-flight requests;
  ties break on the lower replica index (deterministic).
* :class:`LeastOutstandingWorkRouting` -- smallest estimated drain time:
  the replica's outstanding tokens (queued prefill + all remaining
  generation, one column reduction per id slice) divided by its
  cost-model service rate (:meth:`OnlineServer.service_rate`), so
  heterogeneous replicas are compared in *time*, not tokens.

The event loop is the same :class:`~repro.serving.online.ServingLoop` the
single server runs, which is why a 1-replica fleet reproduces
``OnlineServer.serve`` bit-identically -- the parity gate of the fleet test
suite.

Operational realism plugs in at two fleet-level seams (see
:mod:`repro.serving.faults`): a ``faults`` schedule injects replica
crash/restart (queued + in-flight ids reclaimed through the shared pool's
``requeue`` and re-routed by the live policy) and per-replica straggler
slowdowns (timeline ``time_scale``); an ``admission`` policy may *shed*
arrivals before routing or preempt low-priority decodes.  Both are
parity-gated: with an empty schedule and no admission policy, the serve is
bit-identical to a fault-free fleet, and under injected chaos the
conservation invariant ``offered == completed + rejected + shed`` is
asserted at the end of every serve.

The chaos path itself is batched (``batched_admission=True``, the
default): an arrival window under an open fault window or an admission
policy runs admit-mask -> mark-shed batch -> routable-masked
``select_batch`` -> ``enqueue_batch``, and a crash epilogue re-places the
reclaimed ids as one batched selection with batched reject accounting.
Every batched decision is bit-identical to the per-id fallback (forced
via ``batched_admission=False``), which any gate -- a policy without a
batch path, a window the policy classifies as order-dependent, tight
queue space -- still drops to per id.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.pool import RequestPool
from repro.engine.timeline import Timeline
from repro.serving.faults import AdmissionPolicy, FaultPlane, FaultSchedule
from repro.serving.online import (
    DEFAULT_CORE,
    OnlineResult,
    OnlineServer,
    RecordColumns,
    ServingLoop,
)
from repro.serving.sla import SLA
from repro.workloads.trace import WorkloadTrace


# ---------------------------------------------------------------------------
# Routing policies
# ---------------------------------------------------------------------------


class RoutingPolicy:
    """Base class of fleet routing policies.

    A policy sees the fleet mid-run and picks the replica whose admission
    queue receives an arrived request id.  It must only pick replicas that
    are *routable* (``fleet.routable(i)`` -- not down or warming under a
    fault plane; always true without one) and have queue space
    (``queue_depth < max_queue``), and return ``None`` when no such
    replica exists -- the fleet then rejects the arrival, which is the
    only place a fleet rejects.  Selection must be deterministic.

    The vectorized :meth:`select_batch` paths run under open fault
    windows too: a policy implementing one must mask its candidates with
    :meth:`Fleet.routable_mask` (all-True without a fault plane) instead
    of assuming every replica accepts work.  Admission decisions never
    interleave with batch selection -- the fleet sheds the window's
    refused ids first and batch-routes only the admitted rest.
    """

    #: Registry name of the policy.
    name = "routing"

    def reset(self, fleet: "Fleet") -> None:
        """Clear per-run state before a serve."""

    def select(self, fleet: "Fleet", rid: int, clock: float) -> int | None:
        """Replica index to hand ``rid`` to, or ``None`` when all are full."""
        raise NotImplementedError

    def select_batch(
        self, fleet: "Fleet", rids: np.ndarray, clock: float
    ) -> np.ndarray | None:
        """Vectorized routing of one arrival batch, or ``None``.

        Returns the replica index per id of ``rids`` (in order, -1 for
        arrivals no replica can take), deciding **exactly** as sequential
        :meth:`select` + enqueue calls would -- the event core's bit-parity
        contract.  ``None`` means the policy has no batch path (or its
        preconditions fail, e.g. queue bounds interact mid-batch); the
        fleet then falls back to per-id selection.  The base class always
        falls back, so custom policies stay correct unmodified.
        """
        return None


class RoundRobinRouting(RoutingPolicy):
    """Cyclic assignment, skipping replicas whose queue is full."""

    name = "round-robin"

    def reset(self, fleet: "Fleet") -> None:
        self._next = 0

    def select(self, fleet: "Fleet", rid: int, clock: float) -> int | None:
        replicas = fleet.replicas
        n = len(replicas)
        for offset in range(n):
            i = (self._next + offset) % n
            if not fleet.routable(i):
                continue
            if replicas[i].queue_depth < replicas[i].max_queue:
                self._next = (i + 1) % n
                return i
        return None

    def select_batch(
        self, fleet: "Fleet", rids: np.ndarray, clock: float
    ) -> np.ndarray | None:
        replicas = fleet.replicas
        n = len(replicas)
        k = int(rids.size)
        open_idx = np.flatnonzero(fleet.routable_mask())
        if open_idx.size == 0:
            # Nothing routable: sequential selection rejects every id.
            return np.full(k, -1, dtype=np.int64)
        space = np.array(
            [replicas[i].max_queue - replicas[i].queue_depth
             for i in open_idx.tolist()],
            dtype=np.int64,
        )
        # A pure cyclic deal over the routable subset hands each routable
        # replica at most ceil(k/|routable|) ids; it equals sequential
        # skip-the-full selection only when no routable queue can fill
        # mid-batch, so bound interaction falls back to per-id calls.
        if int(space.min()) < -(-k // int(open_idx.size)):
            return None
        # Sequential selection starts at the first routable index >=
        # self._next in cyclic order, then deals routable indices in turn.
        start = int(np.searchsorted(open_idx, self._next))
        if start == open_idx.size:
            start = 0
        assigned = open_idx[
            (start + np.arange(k, dtype=np.int64)) % open_idx.size
        ]
        self._next = int((int(assigned[-1]) + 1) % n)
        return assigned


class JoinShortestQueueRouting(RoutingPolicy):
    """Fewest outstanding *requests* (queued + in flight).

    Both terms are O(1) per replica; ties break on the lower replica
    index, so routing is deterministic.
    """

    name = "jsq"

    def select(self, fleet: "Fleet", rid: int, clock: float) -> int | None:
        loads, space, routable = fleet.load_snapshot()
        best: int | None = None
        best_load = -1
        for i, load in enumerate(loads):
            if routable[i] and space[i] > 0:
                if best is None or load < best_load:
                    best, best_load = i, load
        return best

    def select_batch(
        self, fleet: "Fleet", rids: np.ndarray, clock: float
    ) -> np.ndarray:
        """One k-way merge instead of k greedy scans.

        Sequential JSQ over a batch is "assign to argmin load, then that
        load += 1": replica ``i`` receives its assignments at loads
        ``load_i, load_i + 1, ...`` up to its queue space.  The j-th
        sequential pick is therefore the j-th element of the merged
        ``(load, replica)``-sorted union of those per-replica streams --
        lexsort's stable (value, index) order reproduces the lower-index
        tie-break exactly.
        """
        replicas = fleet.replicas
        n = len(replicas)
        k = int(rids.size)
        if k <= 8:
            # Small windows (the chaos steady state: one ingest per loop
            # pass) pay more for the merge's array setup than the merge
            # saves; run the sequential greedy directly -- identical
            # decisions by the merge equivalence above.
            loads_live, space_live, routable = fleet.load_snapshot()
            loads = list(loads_live)
            space = list(space_live)
            assigned = np.full(k, -1, dtype=np.int64)
            for j in range(k):
                best = -1
                best_load = -1
                for i in range(n):
                    if routable[i] and space[i] > 0:
                        load = loads[i]
                        if best < 0 or load < best_load:
                            best, best_load = i, load
                if best < 0:
                    break
                assigned[j] = best
                loads[best] += 1
                space[best] -= 1
            return assigned
        loads = np.array(
            [r.queue_depth + r.in_flight for r in replicas], dtype=np.int64
        )
        space = np.array(
            [r.max_queue - r.queue_depth for r in replicas], dtype=np.int64
        )
        take = np.clip(space, 0, k)
        # An open fault window excludes the non-accepting replicas' load
        # streams from the merge, exactly as sequential select skips them.
        take[~fleet.routable_mask()] = 0
        total = int(take.sum())
        offsets = np.arange(total) - np.repeat(np.cumsum(take) - take, take)
        vals = np.repeat(loads, take) + offsets
        idxs = np.repeat(np.arange(n, dtype=np.int64), take)
        merge = np.lexsort((idxs, vals))
        assigned = np.full(k, -1, dtype=np.int64)
        m = min(k, total)
        assigned[:m] = idxs[merge[:m]]
        return assigned


class LeastOutstandingWorkRouting(RoutingPolicy):
    """Smallest estimated drain time, priced via the cost model.

    Each replica's outstanding tokens (one column reduction over its
    replica-local id slices of the shared pool) are divided by its
    service rate (:meth:`OnlineServer.service_rate`, tokens/s from the
    replica's cost model, computed once per serve), so replicas with
    different schedules or placements are compared in estimated *time*.
    Ties break on the lower replica index.
    """

    name = "least-outstanding-work"

    def reset(self, fleet: "Fleet") -> None:
        # Effective rates: the cost-model rate corrected for straggler
        # slowdown (untouched at slowdown 1.0), so a slow replica's drain
        # time is honestly longer and the policy routes around it.
        self._rates = tuple(
            max(replica.effective_service_rate(), 1e-12)
            for replica in fleet.replicas
        )

    def select(self, fleet: "Fleet", rid: int, clock: float) -> int | None:
        best: int | None = None
        best_cost = float("inf")
        for i, replica in enumerate(fleet.replicas):
            if not fleet.routable(i):
                continue
            if replica.queue_depth >= replica.max_queue:
                continue
            cost = replica.outstanding_tokens() / self._rates[i]
            if best is None or cost < best_cost:
                best, best_cost = i, cost
        return best

    def select_batch(
        self, fleet: "Fleet", rids: np.ndarray, clock: float
    ) -> np.ndarray:
        """Outstanding tokens reduced once per replica, not once per id.

        During an ingest batch no replica iterates, so each replica's
        outstanding tokens change only by the whole requests this batch
        assigns to it: an integer ``+= input + output`` per assignment.
        The running integer totals divided by the cached rates are
        bit-identical to the per-id reductions of sequential
        :meth:`select` calls, lower-index ties included (strict ``<``
        there, first-occurrence argmin here).
        """
        replicas = fleet.replicas
        n = len(replicas)
        tokens = np.array(
            [r.outstanding_tokens() for r in replicas], dtype=np.int64
        )
        rates = np.asarray(self._rates, dtype=float)
        space = np.array(
            [r.max_queue - r.queue_depth for r in replicas], dtype=np.int64
        )
        added = fleet._pool.total_tokens(rids)
        costs = tokens / rates
        assigned = np.full(rids.size, -1, dtype=np.int64)
        open_mask = (space > 0) & fleet.routable_mask()
        for j in range(int(rids.size)):
            if not open_mask.any():
                break
            index = int(np.argmin(np.where(open_mask, costs, np.inf)))
            assigned[j] = index
            tokens[index] += added[j]
            costs[index] = tokens[index] / rates[index]
            space[index] -= 1
            if space[index] <= 0:
                open_mask[index] = False
        return assigned


ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    "round-robin": RoundRobinRouting,
    "rr": RoundRobinRouting,
    "jsq": JoinShortestQueueRouting,
    "join-shortest-queue": JoinShortestQueueRouting,
    "low": LeastOutstandingWorkRouting,
    "least-outstanding-work": LeastOutstandingWorkRouting,
}


def known_routings() -> tuple[str, ...]:
    """Names of the registered routing policies (aliases included)."""
    return tuple(sorted(ROUTING_POLICIES))


def make_routing(policy: str | RoutingPolicy) -> RoutingPolicy:
    """Instantiate a routing policy from its registry name.

    A :class:`RoutingPolicy` instance passes through unchanged (so a fleet
    can be handed a pre-configured policy object).
    """
    if isinstance(policy, RoutingPolicy):
        return policy
    key = policy.lower()
    if key not in ROUTING_POLICIES:
        known = ", ".join(known_routings())
        raise KeyError(f"unknown routing policy {policy!r}; known: {known}")
    return ROUTING_POLICIES[key]()


# ---------------------------------------------------------------------------
# Fleet result
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetResult:
    """Outcome of serving one arrival-stamped trace through a fleet.

    Attributes:
        fleet: Fleet-wide :class:`OnlineResult` over every offered request
            (the result rate sweeps and SLOs are checked against).
        replicas: Per-replica :class:`OnlineResult`\\ s over the requests
            each replica served, in replica order (rejected requests
            belong to no replica).
        assignments: Replica index per pool id (-1 for rejected arrivals,
            -2 for arrivals shed by the admission policy).
        routing: Name of the routing policy that produced the assignment.
        crashes: Per-replica crash counts (None without a fault plane).
        requeued: Per-replica counts of ids reclaimed and requeued when
            that replica crashed (None without a fault plane).
    """

    fleet: OnlineResult
    replicas: tuple[OnlineResult, ...]
    assignments: np.ndarray
    routing: str
    crashes: np.ndarray | None = None
    requeued: np.ndarray | None = None

    @property
    def num_replicas(self) -> int:
        """Deployment size."""
        return len(self.replicas)

    @property
    def offered(self) -> int:
        """Requests that arrived (fleet-wide)."""
        return self.fleet.offered

    @property
    def completed(self) -> int:
        """Requests that finished generation (fleet-wide)."""
        return self.fleet.completed

    @property
    def rejected(self) -> int:
        """Arrivals rejected at the routing boundary."""
        return self.fleet.rejected

    @property
    def shed(self) -> int:
        """Arrivals dropped by the admission policy (fleet-wide)."""
        return self.fleet.shed

    @property
    def preempted(self) -> int:
        """Decode preemptions across the fleet."""
        return self.fleet.preempted

    @property
    def makespan_s(self) -> float:
        """Fleet makespan: the slowest replica's timeline."""
        return self.fleet.makespan_s

    def attainment(self, sla: SLA) -> float:
        """Fleet-wide SLO attainment over offered requests."""
        return self.fleet.attainment(sla)

    def satisfies(self, sla: SLA, max_rejection_rate: float = 0.0) -> bool:
        """Whether the fleet-wide run sustains the SLO."""
        return self.fleet.satisfies(sla, max_rejection_rate)

    def routed_counts(self) -> np.ndarray:
        """Requests routed to each replica (one bincount)."""
        placed = self.assignments[self.assignments >= 0]
        return np.bincount(placed, minlength=len(self.replicas))


# ---------------------------------------------------------------------------
# The fleet
# ---------------------------------------------------------------------------


class Fleet:
    """N steppable replicas behind a routing policy, over one shared pool.

    Args:
        replicas: The replica servers (any :class:`OnlineServer`
            subclasses; schedules/placements may differ per replica).
            Each is reset against the shared pool at every serve.
        routing: Routing policy (name or instance); see
            :data:`ROUTING_POLICIES`.
        name: Fleet name used in fleet-wide results; defaults to
            ``"<first replica>x<N>-<policy>"``.
        admission: Optional :class:`~repro.serving.faults.AdmissionPolicy`
            consulted before routing -- arrivals it refuses are *shed*
            (assignment -2), and it may evict queued or preempt in-flight
            low-priority work.  ``None`` (and :class:`AcceptAll`) keeps
            the serve bit-identical to the admission-free path.
        faults: Optional :class:`~repro.serving.faults.FaultSchedule`
            injecting replica crash/restart windows and per-replica
            straggler slowdowns into every serve.  An empty schedule is
            bit-identical to running without one.
        batched_admission: Whether the chaos path may batch (default).
            When True, arrival windows under open fault windows route
            through the routable-masked ``select_batch``, admission
            policies are consulted through ``admit_batch`` (falling back
            per id whenever a policy or window declines), and crash
            epilogues re-place reclaimed ids as one batch.  ``False``
            forces the historical per-id fallback everywhere -- the
            bit-parity reference the batched path is measured and tested
            against.
    """

    def __init__(
        self,
        replicas,
        routing: str | RoutingPolicy = "jsq",
        name: str | None = None,
        admission: AdmissionPolicy | None = None,
        faults: FaultSchedule | None = None,
        batched_admission: bool = True,
    ) -> None:
        self.replicas: list[OnlineServer] = list(replicas)
        if not self.replicas:
            raise ValueError("a fleet needs at least one replica")
        if len({id(replica) for replica in self.replicas}) != len(self.replicas):
            raise ValueError(
                "fleet replicas must be distinct server objects (one engine "
                "cannot be stepped as two replicas); clone() the server or "
                "use Fleet.homogeneous"
            )
        self.routing = make_routing(routing)
        self.admission = admission
        self.faults = faults
        self.batched_admission = batched_admission
        self.name = name or (
            f"{self.replicas[0].name}x{len(self.replicas)}-{self.routing.name}"
        )
        self._pool: RequestPool | None = None
        self._plane: FaultPlane | None = None
        self._records: RecordColumns | None = None
        self._assignments: np.ndarray | None = None
        self._all_routable = np.ones(len(self.replicas), dtype=bool)
        self._evicted = np.zeros(len(self.replicas), dtype=np.int64)
        self._snap_reset()

    def _snap_reset(self) -> None:
        n = len(self.replicas)
        self._snap_versions = [-1] * n
        self._snap_loads = [0] * n
        self._snap_space = [0] * n
        self._snap_routable = [True] * n
        self._snap_cursor = -2

    def load_snapshot(self) -> tuple[list[int], list[int], list[bool]]:
        """Per-replica ``(loads, space, routable)`` lists, cached.

        ``loads[i]`` is queued + in-flight requests, ``space[i]`` the free
        queue slots, ``routable[i]`` the fault plane's accepting flag.
        Each replica's entries refresh only when its load version moved
        (every queue/engine mutation bumps it), and the routable flags
        only when the fault cursor moved, so the steady-state window
        touches the one replica that changed instead of re-reading every
        property of every replica.  The lists are live caches: callers
        must copy before mutating.
        """
        versions = self._snap_versions
        loads = self._snap_loads
        space = self._snap_space
        for i, replica in enumerate(self.replicas):
            version = replica._load_version
            if version != versions[i]:
                versions[i] = version
                depth = replica.queue_depth
                loads[i] = depth + replica.in_flight
                space[i] = replica.max_queue - depth
        plane = self._plane
        if plane is not None and plane._cursor != self._snap_cursor:
            self._snap_cursor = plane._cursor
            self._snap_routable = plane.accepting.tolist()
        return loads, space, self._snap_routable

    @classmethod
    def homogeneous(
        cls,
        server: OnlineServer,
        replicas: int,
        routing: str | RoutingPolicy = "jsq",
        name: str | None = None,
        admission: AdmissionPolicy | None = None,
        faults: FaultSchedule | None = None,
        batched_admission: bool = True,
    ) -> "Fleet":
        """A fleet of ``replicas`` clones of one server.

        The prototype itself is left untouched (it keeps working as a
        single server); clones share its configuration objects but carry
        independent per-run state.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        clones = [
            server.clone(name=f"{server.name}#{i}") for i in range(replicas)
        ]
        fleet_name = name or (
            f"{server.name}x{replicas}-{make_routing(routing).name}"
        )
        return cls(clones, routing=routing, name=fleet_name,
                   admission=admission, faults=faults,
                   batched_admission=batched_admission)

    def __len__(self) -> int:
        return len(self.replicas)

    # -- fleet-wide mid-run reductions ---------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Ids queued across every replica (O(replicas))."""
        return sum(replica.queue_depth for replica in self.replicas)

    @property
    def in_flight(self) -> int:
        """Ids admitted into engines and unfinished (O(replicas))."""
        return sum(replica.in_flight for replica in self.replicas)

    @property
    def completed_count(self) -> int:
        """Requests finished fleet-wide: the shared pool's O(1) counter."""
        if self._pool is None:
            return 0
        return self._pool.done_count

    def outstanding_tokens(self) -> int:
        """Tokens owed fleet-wide (one column reduction per id slice)."""
        return sum(replica.outstanding_tokens() for replica in self.replicas)

    def routable(self, index: int) -> bool:
        """Whether routing may place work on a replica right now.

        False exactly while the fault plane holds the replica down or
        warming after a restart; always True without a fault plane.
        """
        plane = self._plane
        return plane is None or bool(plane.accepting[index])

    def routable_mask(self) -> np.ndarray:
        """Boolean per-replica routable flags (read-only, do not mutate).

        The batch form of :meth:`routable`: the fault plane's live
        ``accepting`` array, or a cached all-True array without a plane,
        so masked ``select_batch``/``admit_batch`` paths pay no per-call
        allocation in the fault-free case.
        """
        plane = self._plane
        if plane is None:
            return self._all_routable
        return plane.accepting

    # -- admission-policy seams ------------------------------------------------------

    def shed_queued(self, index: int, rid: int) -> None:
        """Evict one queued id on an admission policy's order: it is shed
        (assignment -2) and its queue slot freed."""
        self.replicas[index].remove_queued(rid)
        self._records.mark_shed(rid)
        self._assignments[rid] = -2
        self._evicted[index] += 1

    def preempt_to_queue(self, index: int, rid: int) -> None:
        """Preempt one in-flight id back to its replica's queue tail.

        The id leaves the running batch (KV freed where the driver tracks
        it), its generation progress rewinds through the shared pool's
        ``requeue``, and it re-enters the same replica's admission queue;
        its ``preempted`` record count increments.  The caller must have
        checked the queue has a slot.
        """
        replica = self.replicas[index]
        replica.preempt(rid)
        self._pool.requeue(np.asarray([rid], dtype=np.int64))
        if not replica.enqueue(rid):
            raise RuntimeError(
                f"fleet {self.name}: preempted request {rid} found replica "
                f"{index}'s queue full; the policy must check queue space"
            )
        self._records.preempted[rid] += 1

    # -- serving --------------------------------------------------------------------

    def serve(
        self,
        trace: WorkloadTrace,
        scenario: str = "",
        offered_rate_qps: float = 0.0,
        core: str = DEFAULT_CORE,
    ) -> FleetResult:
        """Serve an arrival-stamped trace through the fleet.

        Loads the trace into ONE shared :class:`RequestPool` and hands it
        to :meth:`serve_pool`.
        """
        if len(trace) == 0:
            raise ValueError("trace must contain at least one request")
        return self.serve_pool(
            RequestPool.from_trace(trace),
            scenario=scenario,
            offered_rate_qps=offered_rate_qps,
            core=core,
        )

    def serve_pool(
        self,
        pool: RequestPool,
        scenario: str = "",
        offered_rate_qps: float = 0.0,
        core: str = DEFAULT_CORE,
    ) -> FleetResult:
        """Serve an arrival-stamped request pool through the fleet.

        Resets every replica against the shared pool (each on its own
        timeline) and drives the shared :class:`ServingLoop`: every
        arrival is routed -- an id handoff into the selected replica's
        bounded local queue -- or rejected when the policy finds every
        queue full.  Arrival batches go through the policy's
        :meth:`~RoutingPolicy.select_batch` when it has one, falling back
        to per-id :meth:`~RoutingPolicy.select` otherwise (and whenever
        the batch path's preconditions fail).  After the loop drains,
        each replica resolves its engine bookkeeping into the shared
        record columns.  The pool's generation progress is reset first,
        so one pool can be served through several fleets or cores in
        turn (a stale ``done`` mask would otherwise empty the run).
        """
        if len(pool) == 0:
            raise ValueError("pool must contain at least one request")
        pool.reset_progress()
        self._pool = pool
        records = RecordColumns(pool)
        assignments = np.full(len(pool), -1, dtype=np.int64)
        plane = (
            FaultPlane(self.faults, len(self.replicas))
            if self.faults is not None else None
        )
        self._plane = plane
        self._records = records
        self._assignments = assignments
        self._evicted = np.zeros(len(self.replicas), dtype=np.int64)
        for i, replica in enumerate(self.replicas):
            slowdown = (
                self.faults.slowdown_for(i) if self.faults is not None else 1.0
            )
            replica.slowdown = slowdown
            replica.reset(Timeline(time_scale=slowdown), pool)
        self._snap_reset()
        self.routing.reset(self)
        if self.admission is not None:
            self.admission.reset(self)

        def place(rid: int, clock: float) -> bool:
            index = self.routing.select(self, rid, clock)
            if index is None and self.admission is not None:
                index = self.admission.make_room(self, rid, clock)
            if index is None:
                return False
            if not self.replicas[index].enqueue(rid):
                raise RuntimeError(
                    f"routing policy {self.routing.name} selected replica "
                    f"{index} with a full queue"
                )
            assignments[rid] = index
            if self.admission is not None:
                self.admission.note_placed(self, rid, index)
            return True

        def route(rid: int, clock: float) -> bool:
            if (self.admission is not None
                    and not self.admission.admit(self, rid, clock)):
                # Shed: consumed by the admission policy, not rejected.
                records.mark_shed(rid)
                assignments[rid] = -2
                return True
            return place(rid, clock)

        def enqueue_assigned(rids: np.ndarray, batch_assigned: np.ndarray) -> None:
            # Commit one batch selection: per-replica enqueue_batch calls
            # plus a single assignments scatter (-1 entries included, so
            # reclaimed ids losing their replica are honestly unassigned).
            if rids.size <= 8:
                # Small windows: per-id appends beat the group-by setup.
                for rid, index in zip(rids.tolist(), batch_assigned.tolist()):
                    if index >= 0 and not self.replicas[index].enqueue(rid):
                        raise RuntimeError(
                            f"routing policy {self.routing.name} "
                            f"batch-selected replica {index} with a full "
                            f"queue"
                        )
                assignments[rids] = batch_assigned
                return
            for index in np.unique(batch_assigned[batch_assigned >= 0]):
                mine = rids[batch_assigned == index]
                if self.replicas[index].enqueue_batch(mine) != mine.size:
                    raise RuntimeError(
                        f"routing policy {self.routing.name} batch-selected "
                        f"replica {index} beyond its queue space"
                    )
            assignments[rids] = batch_assigned

        def window_space(rids: np.ndarray) -> bool:
            # The batched-chaos space guard: the routable replicas must
            # jointly have queue space for the whole window.  Then every
            # admitted id is guaranteed a slot -- make_room stays
            # unreachable and note_placed fires for every admitted id,
            # exactly as the sequential path -- which is what lets the
            # shipped policies batch their windows exactly.
            need = int(rids.size)
            _, space, routable = self.load_snapshot()
            total = 0
            for i, open_ in enumerate(routable):
                if open_:
                    total += space[i]
                    if total >= need:
                        return True
            return need == 0

        def route_window_batched(
            rids: np.ndarray, clock: float
        ) -> np.ndarray | None:
            # The batched admission composition: admit-mask -> mark-shed
            # batch -> masked select_batch -> enqueue_batch.  Any gate
            # declining (no space guard, unsafe placement hooks, no
            # admit_batch, no routing batch path) returns None BEFORE any
            # state changes, so the per-id fallback re-decides cleanly.
            admission = self.admission
            if not window_space(rids):
                return None
            if not admission.batch_placement_safe(self, rids):
                return None
            mask = admission.admit_batch(self, rids, clock)
            if mask is None:
                return None
            if mask.all():
                # All-admit window (the chaos steady state): skip the
                # boolean gathers/scatters entirely.
                assigned_sub = self.routing.select_batch(self, rids, clock)
                if assigned_sub is None:
                    return None
                enqueue_assigned(rids, assigned_sub)
                placed_mask = assigned_sub >= 0
                if placed_mask.any():
                    admission.note_placed_batch(
                        self, rids[placed_mask], assigned_sub[placed_mask]
                    )
                return assigned_sub
            admitted = rids[mask]
            if admitted.size:
                assigned_sub = self.routing.select_batch(self, admitted, clock)
                if assigned_sub is None:
                    return None
            else:
                assigned_sub = np.empty(0, dtype=np.int64)
            shed = rids[~mask]
            if shed.size:
                records.mark_shed_batch(shed)
                assignments[shed] = -2
            enqueue_assigned(admitted, assigned_sub)
            placed_mask = assigned_sub >= 0
            if placed_mask.any():
                admission.note_placed_batch(
                    self, admitted[placed_mask], assigned_sub[placed_mask]
                )
            batch_assigned = np.full(rids.size, -2, dtype=np.int64)
            batch_assigned[mask] = assigned_sub
            return batch_assigned

        def route_window_galloped(
            rids: np.ndarray, clock: float
        ) -> np.ndarray:
            # Mixed windows (any batched gate declining) are consumed in
            # galloping chunks: uniform runs go through the batched path,
            # and each genuinely order-dependent decision boundary is
            # crossed per-id.  A declined chunk costs one snapshot and
            # changes no state, so halving retries for free; the chunk
            # doubles again after every batched success, making a uniform
            # run of length m cost O(m + replicas * log m).
            n = int(rids.size)
            out = np.empty(n, dtype=np.int64)
            start = 0
            chunk = n
            while start < n:
                end = min(start + chunk, n)
                sub = rids[start:end]
                batch_assigned = route_window_batched(sub, clock)
                if batch_assigned is not None:
                    out[start:end] = batch_assigned
                    start = end
                    chunk = min(chunk * 2, n)
                    continue
                if sub.size > 8:
                    chunk = sub.size // 2
                    continue
                for j, rid in enumerate(sub.tolist(), start):
                    out[j] = assignments[rid] if route(rid, clock) else -1
                start = end
                chunk = 16
            return out

        def route_batch(rids: np.ndarray, clock: float) -> np.ndarray:
            if self.admission is not None:
                if self.batched_admission:
                    return route_window_galloped(rids, clock)
            elif (plane is None or self.batched_admission
                  or bool(plane.accepting.all())):
                # select_batch honors the routable mask, so an open fault
                # window masks out the non-accepting replicas instead of
                # disqualifying the whole batched path (unless the
                # per-id reference is forced via batched_admission=False).
                batch_assigned = self.routing.select_batch(self, rids, clock)
                if batch_assigned is not None:
                    enqueue_assigned(rids, batch_assigned)
                    return batch_assigned
            # Per-id fallback: sequential admit + select + enqueue, the
            # path arbitrary (custom/stateful) policies always take.
            batch_assigned = np.full(rids.size, -1, dtype=np.int64)
            for j, rid in enumerate(rids.tolist()):
                if route(rid, clock):
                    batch_assigned[j] = assignments[rid]
            return batch_assigned

        def place_batch(rids: np.ndarray, when: float) -> bool:
            # The batched crash epilogue.  Crash re-placement skips
            # admission (exactly as per-id place()), so the gates are the
            # routing batch path and -- with an admission policy installed
            # -- the space guard + placement-hook safety that keep
            # make_room unreachable and note_placed order-insensitive.
            admission = self.admission
            if admission is not None and not (
                window_space(rids)
                and admission.batch_placement_safe(self, rids)
            ):
                return False
            assigned = self.routing.select_batch(self, rids, when)
            if assigned is None:
                return False
            enqueue_assigned(rids, assigned)
            rejected = rids[assigned == -1]
            if rejected.size:
                records.reject_batch(rejected)
            placed_mask = assigned >= 0
            if admission is not None and placed_mask.any():
                admission.note_placed_batch(
                    self, rids[placed_mask], assigned[placed_mask]
                )
            return True

        def on_crash(index: int, when: float) -> None:
            # Reclaim the dead replica's work through the shared pool and
            # re-route it by the live policy.  pop_due has already marked
            # the replica non-accepting, so nothing lands back on it.
            replica = self.replicas[index]
            queued = replica.drain_queue()
            in_flight = np.asarray(replica._in_flight_ids(), dtype=np.int64)
            replica.crash()
            if in_flight.size:
                # Rewind generation progress and stamps; raises if any id
                # is already done (resurrection), which cannot happen
                # because drivers compact completed ids out of the running
                # batch at the end of every iterate.
                pool.requeue(in_flight)
            plane.requeued[index] += queued.size + in_flight.size
            reclaimed = np.concatenate((queued, in_flight))
            if reclaimed.size == 0:
                return
            if self.batched_admission and place_batch(reclaimed, when):
                return
            for rid in reclaimed.tolist():
                rid = int(rid)
                if not place(rid, when):
                    records.reject(rid)
                    assignments[rid] = -1

        def diagnostics() -> str:
            # Convergence-failure forensics: where the router put work and
            # what admission control did with the rest.
            placed = assignments[assignments >= 0]
            admitted = np.bincount(placed, minlength=len(self.replicas))
            return (
                f"per-replica admitted={admitted.tolist()}, "
                f"evicted={self._evicted.tolist()}, "
                f"shed={int(np.count_nonzero(records.shed))}, "
                f"rejected={int(np.count_nonzero(records.rejected))}"
            )

        loop = ServingLoop(
            pool,
            self.replicas,
            route=route,
            on_reject=records.reject,
            route_batch=route_batch,
            on_reject_batch=records.reject_batch,
            name=self.name,
            core=core,
            faults=plane,
            on_crash=on_crash if plane is not None else None,
            diagnostics=diagnostics,
        )
        iterations = loop.run()
        # Under crashes or an admission policy, an id's bookkeeping may be
        # spread over replicas it visited before landing; each replica then
        # resolves only the ids whose *final* assignment it holds, so a
        # stale stamp can never overwrite a survivor's real one.
        chaotic = (
            (plane is not None and plane.has_downtime)
            or self.admission is not None
        )
        for i, replica in enumerate(self.replicas):
            if chaotic:
                replica.resolve_records(records, assignments=assignments,
                                        index=i)
            else:
                replica.resolve_records(records)

        # Accounting, asserted at the fleet boundary: unassigned ids (-1)
        # are exactly the rejected records and shed ids (-2) exactly the
        # shed records, so fleet drop accounting is the single-server
        # semantics by construction.
        if not np.array_equal(assignments == -1, records.rejected):
            raise RuntimeError(
                f"fleet {self.name}: rejection accounting diverged "
                f"({int(np.count_nonzero(assignments == -1))} unassigned vs "
                f"{int(np.count_nonzero(records.rejected))} rejected records)"
            )
        if not np.array_equal(assignments == -2, records.shed):
            raise RuntimeError(
                f"fleet {self.name}: shed accounting diverged "
                f"({int(np.count_nonzero(assignments == -2))} consumed vs "
                f"{int(np.count_nonzero(records.shed))} shed records)"
            )
        if chaotic:
            # The headline chaos invariant: every offered request has
            # exactly one outcome -- completed, rejected or shed.  In
            # particular every id a crashed replica requeued completed
            # somewhere (or was rejected at reroute), and no id was lost
            # or double-counted.
            outcomes = (
                (records.finish_s >= 0.0).astype(np.int64)
                + records.rejected.astype(np.int64)
                + records.shed.astype(np.int64)
            )
            if not bool(np.all(outcomes == 1)):
                bad = int(np.count_nonzero(outcomes != 1))
                raise RuntimeError(
                    f"fleet {self.name}: conservation violated for {bad} "
                    "requests (offered != completed + rejected + shed)"
                )

        makespans = [replica._timeline.makespan_s for replica in self.replicas]
        extra = {
            "iterations": float(iterations),
            "replicas": float(len(self.replicas)),
        }
        if plane is not None:
            extra["crashes"] = float(plane.crashes.sum())
            extra["requeued"] = float(plane.requeued.sum())
        if self.admission is not None:
            extra["shed"] = float(np.count_nonzero(records.shed))
            extra["preempted"] = float(records.preempted.sum())
        fleet_result = OnlineResult.from_columns(
            system=self.name,
            scenario=scenario,
            offered_rate_qps=offered_rate_qps,
            columns=records,
            makespan_s=max(makespans),
            extra=extra,
        )
        ordered = fleet_result.records
        per_replica = []
        counts = loop.iteration_counts
        for i, replica in enumerate(self.replicas):
            # An id-array gather on the columnar records: each replica's
            # result shares the fleet columns, no records are boxed.
            mine = ordered[np.flatnonzero(assignments == i)]
            per_replica.append(
                OnlineResult(
                    system=replica.name,
                    scenario=scenario,
                    offered_rate_qps=0.0,
                    records=mine,
                    makespan_s=makespans[i],
                    extra=replica._extra(counts[i]),
                )
            )
        return FleetResult(
            fleet=fleet_result,
            replicas=tuple(per_replica),
            assignments=assignments,
            routing=self.routing.name,
            crashes=plane.crashes.copy() if plane is not None else None,
            requeued=plane.requeued.copy() if plane is not None else None,
        )

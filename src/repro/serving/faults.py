"""Fault injection and admission control for the serving fleet.

A production fleet loses replicas, limps along on degraded hardware, and
sheds load under pressure; this module lets the simulator do the same while
keeping every run seeded and deterministic.  Three orthogonal planes:

* **Crash/restart** -- a :class:`FaultSchedule` lists ``(replica, t_down,
  t_up)`` windows (explicit, or drawn from a seeded exponential
  :meth:`FaultSchedule.flap` process).  When a replica goes down its queued
  and in-flight ids are reclaimed through the shared
  :meth:`~repro.engine.pool.RequestPool.requeue` and re-routed by the live
  routing policy; after ``t_up`` the replica warms for ``warmup_s`` before
  accepting work again.
* **Stragglers** -- per-replica ``slowdowns`` factors stretch every task
  duration on that replica's :class:`~repro.engine.timeline.Timeline`, so
  queue-aware routing policies visibly route around the slow replica.
* **Admission control** -- an :class:`AdmissionPolicy` on the fleet decides,
  before routing, whether an arrival is *shed* (distinct from *rejected*,
  which means every routable queue was full).  Policies here implement
  predicted-cost load shedding, per-tenant quotas, and priority classes
  with preemption of low-priority decodes.  All three ship a vectorized
  :meth:`AdmissionPolicy.admit_batch` window path (bit-identical to the
  per-id hooks by construction) so chaos-enabled serving stays on the
  event core's batched ingest instead of dropping to per-id routing.

The headline correctness gate is **conservation**: at all times
``offered == completed + rejected + shed``; a completed request can never
be resurrected by a crash (enforced by ``requeue`` raising on done ids).

Everything is bit-parity safe: a fault plane with an empty schedule and an
:class:`AcceptAll` policy reproduce the fault-free run exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultPlane",
    "AdmissionPolicy",
    "AcceptAll",
    "LoadSheddingPolicy",
    "TenantQuotaPolicy",
    "PriorityAdmissionPolicy",
]


# ---------------------------------------------------------------------------
# Fault schedules (static description) and the fault plane (runtime state)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One crash window: replica ``replica`` is down on ``[down_s, up_s)``.

    ``up_s`` may be ``inf`` for a permanent failure.  After ``up_s`` the
    replica spends the schedule's ``warmup_s`` warming before it accepts
    work again.
    """

    replica: int
    down_s: float
    up_s: float = math.inf

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError("replica index must be non-negative")
        if self.down_s < 0:
            raise ValueError("down_s must be non-negative")
        if not self.up_s > self.down_s:
            raise ValueError("up_s must be strictly after down_s")


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic description of crashes and stragglers for one serve.

    Attributes:
        events: Crash windows.  Windows of the same replica must not
            overlap (including the restart warm-up).
        slowdowns: Per-replica duration multipliers, indexed by replica;
            replicas beyond the tuple run at 1.0.  A factor of 4.0 makes
            every iteration on that replica take 4x as long.
        warmup_s: Delay after each ``up_s`` before the replica accepts
            work again.
    """

    events: tuple[FaultEvent, ...] = ()
    slowdowns: tuple[float, ...] = ()
    warmup_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        if self.warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        for factor in self.slowdowns:
            if factor <= 0:
                raise ValueError("slowdown factors must be positive")
        per_replica: dict[int, list[FaultEvent]] = {}
        for event in self.events:
            per_replica.setdefault(event.replica, []).append(event)
        for replica, windows in per_replica.items():
            windows.sort(key=lambda e: e.down_s)
            for prev, nxt in zip(windows, windows[1:]):
                if nxt.down_s < prev.up_s + self.warmup_s:
                    raise ValueError(
                        f"replica {replica} fault windows overlap: "
                        f"[{prev.down_s}, {prev.up_s}) + warmup and "
                        f"[{nxt.down_s}, {nxt.up_s})"
                    )

    @classmethod
    def flap(
        cls,
        replicas: int,
        mtbf_s: float,
        mttr_s: float,
        horizon_s: float,
        seed: int = 0,
        warmup_s: float = 0.0,
        slowdowns: tuple[float, ...] = (),
    ) -> "FaultSchedule":
        """Seeded exponential up/down alternation for every replica.

        Each replica alternates exponentially distributed up-times (mean
        ``mtbf_s``) and down-times (mean ``mttr_s``) until ``horizon_s``.
        One generator is consumed replica by replica, so the schedule is a
        pure function of its arguments.
        """
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for replica in range(replicas):
            clock = float(rng.exponential(mtbf_s))
            while clock < horizon_s:
                down = clock
                up = down + float(rng.exponential(mttr_s))
                events.append(FaultEvent(replica=replica, down_s=down, up_s=up))
                clock = up + warmup_s + float(rng.exponential(mtbf_s))
        return cls(events=tuple(events), slowdowns=tuple(slowdowns),
                   warmup_s=warmup_s)

    def slowdown_for(self, replica: int) -> float:
        """Duration multiplier for a replica (1.0 when not listed)."""
        if replica < len(self.slowdowns):
            return float(self.slowdowns[replica])
        return 1.0

    def events_for(self, replica: int) -> tuple[FaultEvent, ...]:
        """Crash windows of one replica, ordered by down time."""
        return tuple(sorted(
            (e for e in self.events if e.replica == replica),
            key=lambda e: e.down_s,
        ))


class FaultPlane:
    """Runtime state of a :class:`FaultSchedule` during one serve.

    Expands the schedule into a time-ordered list of transitions --
    ``"down"`` at each ``down_s``, ``"warming"`` at ``up_s`` (state label
    only, emitted when the schedule has a warm-up), ``"ready"`` at
    ``up_s + warmup_s`` -- and tracks which replicas currently accept
    work.  The serving loop pops due transitions at the top of every
    iteration; routing policies consult :attr:`accepting`.

    With an empty schedule ``next_time`` is ``inf`` and ``accepting`` is
    all-True, so every clamp and mask in the loop is a no-op and the run
    is bit-identical to the fault-free path.
    """

    def __init__(self, schedule: FaultSchedule, replicas: int) -> None:
        for event in schedule.events:
            if event.replica >= replicas:
                raise ValueError(
                    f"fault event targets replica {event.replica} but the "
                    f"fleet has {replicas} replicas"
                )
        self.schedule = schedule
        self.accepting = np.ones(replicas, dtype=bool)
        self.crashes = np.zeros(replicas, dtype=np.int64)
        self.requeued = np.zeros(replicas, dtype=np.int64)
        self._state = ["up"] * replicas
        transitions: list[tuple[float, int, str]] = []
        for event in schedule.events:
            transitions.append((event.down_s, event.replica, "down"))
            if math.isfinite(event.up_s):
                if schedule.warmup_s > 0:
                    transitions.append((event.up_s, event.replica, "warming"))
                transitions.append(
                    (event.up_s + schedule.warmup_s, event.replica, "ready")
                )
        transitions.sort(key=lambda t: (t[0], t[1]))
        self._transitions = transitions
        self._cursor = 0

    @property
    def has_downtime(self) -> bool:
        """Whether any crash window is scheduled."""
        return bool(self.schedule.events)

    @property
    def next_time(self) -> float:
        """Time of the next un-applied transition (``inf`` when exhausted)."""
        if self._cursor >= len(self._transitions):
            return math.inf
        return self._transitions[self._cursor][0]

    def pop_due(self, clock: float) -> list[tuple[float, int, str]]:
        """Apply and return all transitions with time <= ``clock``.

        Returned in time order (ties broken by replica index).  State --
        :attr:`accepting` and the per-replica labels -- is updated here;
        the caller handles the crash side effects (reclaim + reroute).
        """
        due: list[tuple[float, int, str]] = []
        while (self._cursor < len(self._transitions)
               and self._transitions[self._cursor][0] <= clock):
            when, replica, kind = self._transitions[self._cursor]
            self._cursor += 1
            if kind == "down":
                self.accepting[replica] = False
                self._state[replica] = "down"
                self.crashes[replica] += 1
            elif kind == "warming":
                self._state[replica] = "warming"
            else:  # ready
                self.accepting[replica] = True
                self._state[replica] = "up"
            due.append((when, replica, kind))
        return due

    def state(self, replica: int) -> str:
        """Current label of one replica: ``up`` / ``down`` / ``warming``."""
        return self._state[replica]

    def states(self) -> list[str]:
        """Current labels of every replica."""
        return list(self._state)


# ---------------------------------------------------------------------------
# Admission policies
# ---------------------------------------------------------------------------


def _stable_ids(pool) -> np.ndarray:
    """Stable request ids of every pool row (columnar fast path)."""
    column = getattr(pool, "request_id", None)
    if column is not None:
        return np.asarray(column)
    return np.array(
        [pool.request_id_of(rid) for rid in range(len(pool))], dtype=np.int64
    )


class AdmissionPolicy:
    """Decides, before routing, whether an arrival enters the fleet.

    ``admit`` returning ``False`` *sheds* the request: it is accounted
    separately from *rejected* (all routable queues full) so results stay
    honest about why work was dropped.  ``make_room`` runs only after
    routing failed and may evict queued work to place the arrival.
    ``note_placed`` observes successful placements.

    The default implementations accept everything and never evict, so a
    subclass overrides only the hooks it needs.

    **The batched window path.**  The event core offers whole arrival
    windows at once; :meth:`admit_batch` is the vectorized form of
    :meth:`admit` over one window.  The base class returns ``None`` --
    "no batch path" -- which keeps arbitrary stateful subclasses on the
    per-id fallback unmodified.  A policy that implements it must return
    decisions **bit-identical** to sequential :meth:`admit` calls
    interleaved with the placements of the admitted ids, and must stay
    *pure*: the fleet may discard the mask (e.g. when routing then
    declines the batch) and re-run the per-id path, so the only state
    change allowed is semantics-neutral compaction of internal
    bookkeeping.  The fleet only consults it when its window
    preconditions hold -- every replica the fault plane leaves routable
    has, in total, queue space for the whole window (so every admitted
    id is guaranteed to place and ``make_room`` is never reached) and
    :meth:`batch_placement_safe` approved the window.
    """

    name = "admission"

    def reset(self, fleet) -> None:
        """Called at serve start, after replicas reset."""

    def admit(self, fleet, rid: int, clock: float) -> bool:
        """Whether to admit the arrival (``False`` sheds it)."""
        return True

    def admit_batch(self, fleet, rids: np.ndarray,
                    clock: float) -> np.ndarray | None:
        """Vectorized :meth:`admit` over one arrival window, or ``None``.

        Returns a boolean mask over ``rids`` (``True`` admits, ``False``
        sheds), deciding exactly as sequential :meth:`admit` calls would;
        ``None`` routes the whole window through the per-id fallback.
        Must be pure -- see the class docstring.
        """
        return None

    def note_placed(self, fleet, rid: int, replica: int) -> None:
        """Observe a successful placement."""

    def note_placed_batch(self, fleet, rids: np.ndarray,
                          replicas: np.ndarray) -> None:
        """Observe a window of successful placements at once.

        The default delegates to :meth:`note_placed` per id (skipped
        entirely when the hook is not overridden), so a policy only
        implements this when it can fold the whole window into its
        bookkeeping in one shot.
        """
        if type(self).note_placed is AdmissionPolicy.note_placed:
            return
        for rid, index in zip(rids.tolist(), replicas.tolist()):
            self.note_placed(fleet, int(rid), int(index))

    def make_room(self, fleet, rid: int, clock: float) -> int | None:
        """Last chance after routing failed: evict and return a replica."""
        return None

    def batch_placement_safe(self, fleet, rids: np.ndarray) -> bool:
        """Whether batched placement may commit this window.

        The fleet's batched chaos path places every admitted id through
        ``select_batch`` + ``enqueue_batch`` and reports them through
        :meth:`note_placed_batch`; eviction (:meth:`make_room`) is
        unreachable because the fleet pre-checks queue space for the
        whole window.  That is only equivalent to the sequential path
        when the per-placement hooks have no order-sensitive side
        effects, so the base implementation approves exactly the
        policies that override neither hook; stateful subclasses either
        stay on the per-id fallback or override this with a sharper
        window test (as the shipped policies do).
        """
        cls = type(self)
        return (cls.note_placed is AdmissionPolicy.note_placed
                and cls.make_room is AdmissionPolicy.make_room)


class AcceptAll(AdmissionPolicy):
    """The no-op policy: admit everything, never evict (parity reference)."""

    name = "accept_all"

    def admit_batch(self, fleet, rids: np.ndarray,
                    clock: float) -> np.ndarray:
        return np.ones(rids.size, dtype=bool)


class LoadSheddingPolicy(AdmissionPolicy):
    """Shed arrivals whose predicted wait exceeds ``max_wait_s``.

    The predicted wait of a replica is its outstanding decode work (the
    pool's O(1) ``outstanding_tokens`` reduction over queued + in-flight
    ids) divided by its effective token service rate, which comes from the
    replica's batched cost model (``estimate``/``estimate_batch``-backed
    ``service_rate``) corrected for any straggler slowdown.  If the *best*
    routable replica is still predicted to take longer than ``max_wait_s``
    the arrival is shed instead of queued behind work it cannot meet an
    SLO with.
    """

    name = "load_shedding"

    def __init__(self, max_wait_s: float) -> None:
        if max_wait_s <= 0:
            raise ValueError("max_wait_s must be positive")
        self.max_wait_s = max_wait_s
        self._rates: tuple[float, ...] = ()
        # All-admit slack (tokens): after a full window evaluation finds
        # an anchor candidate whose queue space and token headroom cover
        # the whole window, the leftover headroom admits later windows by
        # one O(window) token sum, no re-snapshot.  Placements consume it
        # (note_placed_batch); any fault transition, per-id decision, or
        # out-of-band placement invalidates it.
        self._slack = -1.0
        self._slack_anchor = 0
        self._slack_cursor = -1
        # All-shed memo: a shed window changes no replica state, so while
        # every replica's load version and the fault cursor are unchanged
        # the previous all-shed verdict replays exactly.
        self._shed_key: tuple[int, int] | None = None

    def reset(self, fleet) -> None:
        self._rates = tuple(
            max(replica.effective_service_rate(), 1e-12)
            for replica in fleet.replicas
        )
        self._slack = -1.0
        self._shed_key = None

    @staticmethod
    def _fault_cursor(fleet) -> int:
        plane = fleet._plane
        return plane._cursor if plane is not None else -1

    @staticmethod
    def _state_version(fleet) -> int:
        return sum(r._load_version for r in fleet.replicas)

    def admit(self, fleet, rid: int, clock: float) -> bool:
        # Per-id decisions interleave placements the batched slack cannot
        # see; drop it so the next window re-evaluates from scratch.
        self._slack = -1.0
        _, space, routable = fleet.load_snapshot()
        replicas = fleet.replicas
        rates = self._rates
        best = math.inf
        for index, open_ in enumerate(routable):
            if open_ and space[index] > 0:
                wait = replicas[index].outstanding_tokens() / rates[index]
                if wait < best:
                    best = wait
        if math.isinf(best):
            # No routable replica with space: let routing reject instead.
            return True
        return best <= self.max_wait_s

    def note_placed(self, fleet, rid: int, index: int) -> None:
        # Out-of-band placement (crash epilogue fallback): invalidate.
        self._slack = -1.0

    def note_placed_batch(self, fleet, rids, replicas) -> None:
        if self._slack >= 0:
            self._slack -= float(fleet._pool.total_tokens(rids).sum())

    def batch_placement_safe(self, fleet, rids) -> bool:
        # The placement hooks above are slack bookkeeping only: they are
        # order-insensitive and never move ids, so batching stays exact.
        return True

    def admit_batch(self, fleet, rids: np.ndarray,
                    clock: float) -> np.ndarray | None:
        """One O(replicas) snapshot decides uniform windows; mixed ones
        fall back.

        Shedding is state-free and admitted ids only *add* outstanding
        tokens, so within one window the best predicted wait is
        nondecreasing.  Two uniform cases follow from a single
        outstanding-tokens/rate snapshot taken once per window (the per-id
        path re-reduces every replica per arrival):

        * the best candidate already exceeds ``max_wait_s`` -- every id
          sheds (sheds change nothing, so the first decision repeats);
        * some **anchor** candidate has queue space for the whole window
          *and* token headroom for the whole window's tokens -- every id
          admits, because at every sequential step the anchor is still a
          candidate (placements on it are bounded by the window) whose
          wait stays within the bound, and per-id admit takes the *best*
          candidate, which can only be better;
        * fallback of the anchor test: even the worst initial candidate
          loaded with the entire window's tokens stays within the bound
          (covers windows larger than any single queue's space).

        Anything between is genuinely order-dependent and returns
        ``None`` for the per-id fallback.

        Two cross-window caches make the uniform verdicts O(window):

        * **all-admit slack** -- the anchor's headroom admits later
          windows while their cumulative placed tokens fit inside it and
          the anchor still has queue space for the incoming window
          (placements anywhere are charged against it, drains only
          reduce the anchor's own load);
        * **all-shed memo** -- shed windows mutate nothing, so the
          verdict replays while every replica's load version and the
          fault cursor are unchanged.
        """
        replicas = fleet.replicas
        cursor = self._fault_cursor(fleet)
        _, space_l, routable_l = fleet.load_snapshot()
        k = int(rids.size)
        if self._slack >= 0 and cursor == self._slack_cursor:
            window_tokens = float(fleet._pool.total_tokens(rids).sum())
            if (window_tokens <= self._slack
                    and space_l[self._slack_anchor] >= k):
                return np.ones(k, dtype=bool)
        version = self._state_version(fleet)
        if self._shed_key == (cursor, version):
            return np.zeros(k, dtype=bool)
        routable = np.asarray(routable_l)
        space = np.asarray(space_l, dtype=np.int64)
        candidates = routable & (space > 0)
        if not candidates.any():
            # Sequential admit lets routing reject when nothing is open.
            return np.ones(k, dtype=bool)
        tokens = np.array(
            [r.outstanding_tokens() for r in replicas], dtype=np.int64
        )
        rates = np.asarray(self._rates, dtype=float)
        waits = np.where(candidates, tokens / rates, math.inf)
        if float(waits.min()) > self.max_wait_s:
            self._shed_key = (cursor, version)
            return np.zeros(k, dtype=bool)
        window_tokens = int(fleet._pool.total_tokens(rids).sum())
        eligible = candidates & (space >= k)
        if eligible.any():
            headroom = np.where(
                eligible, self.max_wait_s * rates - tokens, -math.inf
            )
            anchor = int(np.argmax(headroom))
            if float(headroom[anchor]) >= window_tokens:
                self._slack = float(headroom[anchor])
                self._slack_anchor = anchor
                self._slack_cursor = cursor
                return np.ones(k, dtype=bool)
        loaded = np.where(
            candidates, (tokens + window_tokens) / rates, -math.inf
        )
        if float(loaded.max()) <= self.max_wait_s:
            return np.ones(k, dtype=bool)
        return None


class TenantQuotaPolicy(AdmissionPolicy):
    """Per-tenant fairness: cap each tenant's in-system requests.

    The tenant of a request defaults to ``request_id % tenants`` (a
    deterministic round-robin assignment over the trace); pass
    ``tenant_of`` to derive it differently.  An arrival whose tenant
    already has ``quota`` live requests (placed, not yet finished) is
    shed, so one tenant's flash crowd cannot starve the rest.
    """

    name = "tenant_quota"

    def __init__(self, tenants: int, quota: int,
                 tenant_of=None) -> None:
        if tenants <= 0:
            raise ValueError("tenants must be positive")
        if quota <= 0:
            raise ValueError("quota must be positive")
        self.tenants = tenants
        self.quota = quota
        self._tenant_of = tenant_of
        self._tenant: np.ndarray | None = None
        self._live: list[int] = []

    def reset(self, fleet) -> None:
        pool = fleet._pool
        if self._tenant_of is None:
            self._tenant = _stable_ids(pool) % self.tenants
        else:
            self._tenant = np.array(
                [self._tenant_of(pool, rid) for rid in range(len(pool))],
                dtype=np.int64,
            )
        self._live = []

    def _compact(self, fleet) -> np.ndarray:
        """Drop finished/dropped ids from the live list; tenant counts.

        One pass over the flat placement list -- the pool's ``alive_mask``
        column gather plus the record masks -- then a single ``bincount``
        by tenant.  An id a crash requeued and re-placed appears twice
        (matching the per-id bookkeeping, where ``note_placed`` fires
        again), so its tenant honestly counts the duplicate until one
        copy finishes.
        """
        ids = np.asarray(self._live, dtype=np.int64)
        if ids.size:
            records = fleet._records
            keep = (
                fleet._pool.alive_mask(ids)
                & ~records.rejected[ids]
                & ~records.shed[ids]
            )
            if not keep.all():
                ids = ids[keep]
                self._live = ids.tolist()
        return np.bincount(
            self._tenant[ids] if ids.size else np.empty(0, dtype=np.int64),
            minlength=self.tenants,
        )

    def admit(self, fleet, rid: int, clock: float) -> bool:
        counts = self._compact(fleet)
        return int(counts[self._tenant[rid]]) < self.quota

    def admit_batch(self, fleet, rids: np.ndarray,
                    clock: float) -> np.ndarray:
        """One compaction pass and one rank computation per window.

        During an ingest window the live set changes only by this
        window's own placements (the pool cannot finish anything
        mid-ingest and the fleet's space guard places every admitted id),
        so sequential admission degenerates per tenant to "admit the
        first ``quota - live`` ids, shed the rest".  The mask is the
        within-window occurrence rank of each id's tenant compared
        against that headroom -- computed with one stable argsort, no
        Python per id.
        """
        counts = self._compact(fleet)
        tenants_w = self._tenant[rids]
        headroom = self.quota - counts[tenants_w]
        order = np.argsort(tenants_w, kind="stable")
        sorted_t = tenants_w[order]
        boundaries = np.empty(sorted_t.size, dtype=bool)
        if sorted_t.size:
            boundaries[0] = True
            boundaries[1:] = sorted_t[1:] != sorted_t[:-1]
        starts = np.flatnonzero(boundaries)
        lengths = np.diff(np.concatenate((starts, [sorted_t.size])))
        rank_sorted = (
            np.arange(sorted_t.size, dtype=np.int64)
            - np.repeat(starts, lengths)
        )
        rank = np.empty_like(rank_sorted)
        rank[order] = rank_sorted
        return rank < headroom

    def note_placed(self, fleet, rid: int, replica: int) -> None:
        self._live.append(rid)

    def note_placed_batch(self, fleet, rids: np.ndarray,
                          replicas: np.ndarray) -> None:
        self._live.extend(rids.tolist())

    def batch_placement_safe(self, fleet, rids: np.ndarray) -> bool:
        # note_placed only appends to the live list (order-insensitive
        # within a window) and there is no make_room, so batched
        # placement is always equivalent.
        return True


class PriorityAdmissionPolicy(AdmissionPolicy):
    """Priority classes with eviction and preemption of low-priority work.

    Priority defaults to ``request_id % levels`` with 0 the *highest*
    class; pass ``priority_of`` to derive it differently.  Two mechanisms
    favor high-priority arrivals:

    * **Eviction** (``make_room``): when routing finds every queue full,
      a strictly lower-priority *queued* request is shed from the back of
      the first routable queue holding one, and the arrival takes its
      slot.
    * **Preemption** (``note_placed``): when a top-priority arrival lands
      on a replica whose running batch contains a low-priority decode,
      that decode is preempted back to the replica's queue -- removed
      from the batch, its generation progress rewound through
      ``RequestPool.requeue``, re-enqueued at the tail.  This is
      deliberately aggressive (a preempted decode restarts from its first
      token); cap it with ``max_preemptions``.
    """

    name = "priority"

    def __init__(self, levels: int = 2, priority_of=None,
                 preempt_decodes: bool = True,
                 max_preemptions: int | None = None) -> None:
        if levels < 2:
            raise ValueError("need at least two priority levels")
        self.levels = levels
        self.preempt_decodes = preempt_decodes
        self.max_preemptions = max_preemptions
        self._priority_of = priority_of
        self._priority: np.ndarray | None = None
        self.preemptions = 0
        self.evictions = 0

    def reset(self, fleet) -> None:
        pool = fleet._pool
        if self._priority_of is None:
            self._priority = _stable_ids(pool) % self.levels
        else:
            self._priority = np.array(
                [self._priority_of(pool, rid) for rid in range(len(pool))],
                dtype=np.int64,
            )
        self.preemptions = 0
        self.evictions = 0

    def admit_batch(self, fleet, rids: np.ndarray,
                    clock: float) -> np.ndarray:
        # Priority never sheds at admission (it evicts/preempts after
        # routing); the whole window admits in one gather-free mask.
        return np.ones(rids.size, dtype=bool)

    def batch_placement_safe(self, fleet, rids: np.ndarray) -> bool:
        """One gather classifies the window: batched unless preemption
        can fire.

        Eviction needs a routing failure, which the fleet's space guard
        rules out, so the only order-sensitive hook left is decode
        preemption -- possible exactly when it is enabled, under budget,
        and the window holds a top-priority arrival.  Such windows (the
        rare tail) take the per-id fallback; everything else batches.
        """
        if not self.preempt_decodes:
            return True
        if (self.max_preemptions is not None
                and self.preemptions >= self.max_preemptions):
            return True
        return not bool(np.any(self._priority[rids] == 0))

    def note_placed_batch(self, fleet, rids: np.ndarray,
                          replicas: np.ndarray) -> None:
        # Only reachable when batch_placement_safe approved the window,
        # i.e. every per-id note_placed would be a no-op.
        return

    def make_room(self, fleet, rid: int, clock: float) -> int | None:
        mine = int(self._priority[rid])
        for index, replica in enumerate(fleet.replicas):
            if not fleet.routable(index):
                continue
            for victim in reversed(replica.queued_ids()):
                if int(self._priority[victim]) > mine:
                    fleet.shed_queued(index, victim)
                    self.evictions += 1
                    return index
        return None

    def note_placed(self, fleet, rid: int, replica: int) -> None:
        if not self.preempt_decodes or int(self._priority[rid]) != 0:
            return
        if (self.max_preemptions is not None
                and self.preemptions >= self.max_preemptions):
            return
        server = fleet.replicas[replica]
        if server.queue_depth >= server.max_queue:
            return  # no queue slot to preempt into
        in_flight = server.preemptible_ids()
        if in_flight.size == 0:
            return
        low = in_flight[self._priority[in_flight] > 0]
        if low.size == 0:
            return
        fleet.preempt_to_queue(replica, int(low[0]))
        self.preemptions += 1

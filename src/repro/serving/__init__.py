"""Serving-level helpers: SLAs, latency bounds, offline and online evaluation."""

from repro.serving.evaluation import (
    ScenarioEvaluation,
    SystemMeasurement,
    default_baselines,
    measure_baseline,
    measure_exegpt,
    speedup_over,
)
from repro.serving.latency_bounds import (
    LatencyBoundSet,
    derive_latency_bounds,
    ft_latency_range,
)
from repro.serving.online import (
    ContinuousBatchingOnlineServer,
    ExeGPTOnlineServer,
    OnlineEvaluator,
    OnlineRequestRecord,
    OnlineResult,
    OnlineServer,
    RatePoint,
)
from repro.serving.sla import SLA, SLAKind

__all__ = [
    "ContinuousBatchingOnlineServer",
    "ExeGPTOnlineServer",
    "LatencyBoundSet",
    "OnlineEvaluator",
    "OnlineRequestRecord",
    "OnlineResult",
    "OnlineServer",
    "RatePoint",
    "SLA",
    "SLAKind",
    "ScenarioEvaluation",
    "SystemMeasurement",
    "default_baselines",
    "derive_latency_bounds",
    "ft_latency_range",
    "measure_baseline",
    "measure_exegpt",
    "speedup_over",
]

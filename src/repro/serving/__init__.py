"""Serving-level helpers: SLAs, latency-bound derivation and scenario evaluation."""

from repro.serving.evaluation import (
    ScenarioEvaluation,
    SystemMeasurement,
    default_baselines,
    measure_baseline,
    measure_exegpt,
    speedup_over,
)
from repro.serving.latency_bounds import (
    LatencyBoundSet,
    derive_latency_bounds,
    ft_latency_range,
)
from repro.serving.sla import SLA, SLAKind

__all__ = [
    "LatencyBoundSet",
    "SLA",
    "SLAKind",
    "ScenarioEvaluation",
    "SystemMeasurement",
    "default_baselines",
    "derive_latency_bounds",
    "ft_latency_range",
    "measure_baseline",
    "measure_exegpt",
    "speedup_over",
]

"""Serving-level helpers: SLAs, latency bounds, offline and online evaluation."""

from repro.serving.evaluation import (
    ScenarioEvaluation,
    SystemMeasurement,
    build_online_server,
    default_baselines,
    measure_baseline,
    measure_exegpt,
    speedup_over,
)
from repro.serving.fleet import (
    Fleet,
    FleetResult,
    JoinShortestQueueRouting,
    LeastOutstandingWorkRouting,
    RoundRobinRouting,
    RoutingPolicy,
    known_routings,
    make_routing,
)
from repro.serving.latency_bounds import (
    LatencyBoundSet,
    derive_latency_bounds,
    ft_latency_range,
)
from repro.serving.online import (
    ContinuousBatchingOnlineServer,
    ExeGPTOnlineServer,
    OnlineEvaluator,
    OnlineRequestRecord,
    OnlineResult,
    OnlineServer,
    RatePoint,
    ServingLoop,
)
from repro.serving.sla import SLA, SLAKind

__all__ = [
    "ContinuousBatchingOnlineServer",
    "ExeGPTOnlineServer",
    "Fleet",
    "FleetResult",
    "JoinShortestQueueRouting",
    "LatencyBoundSet",
    "LeastOutstandingWorkRouting",
    "OnlineEvaluator",
    "OnlineRequestRecord",
    "OnlineResult",
    "OnlineServer",
    "RatePoint",
    "RoundRobinRouting",
    "RoutingPolicy",
    "SLA",
    "SLAKind",
    "ScenarioEvaluation",
    "ServingLoop",
    "SystemMeasurement",
    "build_online_server",
    "default_baselines",
    "derive_latency_bounds",
    "ft_latency_range",
    "known_routings",
    "make_routing",
    "measure_baseline",
    "measure_exegpt",
    "speedup_over",
]

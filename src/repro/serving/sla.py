"""Service-level agreements for inference latency (Section 7.6).

The paper introduces two SLA styles because no provider publishes explicit
latency SLAs:

* **SLA-(a)** -- 99% of all queries must complete within the bound.
* **SLA-(b)** -- a query generating a pre-specified length (typically the
  99th-percentile output length) must complete within the bound.

Both are evaluated against a :class:`~repro.engine.metrics.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.engine.metrics import RunResult


class SLAKind(str, Enum):
    """Which latency statistic the SLA constrains."""

    QUERY_PERCENTILE = "sla-a"
    REFERENCE_LENGTH = "sla-b"


@dataclass(frozen=True)
class SLA:
    """A latency service-level agreement.

    Attributes:
        kind: SLA-(a) (percentile of all queries) or SLA-(b) (latency of a
            reference-length query).
        bound_s: The latency bound in seconds.
        percentile: Percentile used by SLA-(a).
        reference_length: Output length used by SLA-(b); informational here
            because the runner measures per-request latencies directly.
    """

    kind: SLAKind
    bound_s: float
    percentile: float = 99.0
    reference_length: int | None = None

    def __post_init__(self) -> None:
        if self.bound_s <= 0:
            raise ValueError("bound_s must be positive")
        if not 0 < self.percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")

    def satisfied(self, result: RunResult) -> bool:
        """Whether a measured run satisfies the SLA."""
        return self.violation(result) <= 0.0

    def violation(self, result: RunResult) -> float:
        """Seconds by which the run misses the SLA (<= 0 means satisfied)."""
        return self.observed_latency(result) - self.bound_s

    def observed_latency(self, result: RunResult) -> float:
        """The latency statistic the SLA is evaluated against."""
        if self.kind is SLAKind.QUERY_PERCENTILE:
            return result.latency_percentile(self.percentile)
        if self.reference_length is None:
            return result.latency_percentile(self.percentile)
        # SLA-(b): latency of queries near the reference length; approximate
        # with the max latency, which the forced-length evaluation makes the
        # reference-length query's latency.
        return result.max_latency_s

    def required_margin(self, result: RunResult) -> float:
        """Fraction by which the bound must tighten for the run to comply.

        Used in Section 7.6 to report, e.g., "a 13% tighter latency
        constraint is required when the average length grows by 15%".
        """
        observed = self.observed_latency(result)
        if observed <= self.bound_s:
            return 0.0
        return (observed - self.bound_s) / observed

"""Compare ExeGPT against FT, DSI, ORCA and vLLM on one scenario.

Reproduces a single column of Figures 6/7: OPT-13B on the translation task
under the paper's four latency bounds (derived from an FT batch sweep), with
every system replaying the same synthetic trace on the same simulated
cluster.

Run with::

    python examples/compare_inference_systems.py
"""

from __future__ import annotations

from repro import ExeGPT
from repro.experiments.common import format_measurements
from repro.serving import (
    default_baselines,
    derive_latency_bounds,
    measure_baseline,
    measure_exegpt,
    speedup_over,
)
from repro.workloads import generate_task_trace, get_task


def main() -> None:
    task = get_task("T")
    engine = ExeGPT.for_task("OPT-13B", task)
    trace = generate_task_trace(task, num_requests=384, seed=1)
    ft, dsi, orca, vllm = default_baselines(engine, ("ft", "dsi", "orca", "vllm"))
    bounds = derive_latency_bounds(ft, target_length=task.output_p99)

    measurements = []
    for constraint in bounds.as_list():
        measurements.append(measure_exegpt(engine, trace, constraint))
        for system in (ft, dsi, orca, vllm):
            measurements.append(measure_baseline(system, trace, constraint))

    print(format_measurements(measurements, title=f"OPT-13B / task {task.task_id}"))
    speedups = speedup_over(measurements, reference_system="ft")
    print("\nExeGPT speedup over FasterTransformer per bound:")
    for bound, speedup in speedups.items():
        print(f"  {bound:>6}: {speedup:.2f}x")


if __name__ == "__main__":
    main()

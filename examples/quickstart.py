"""Quickstart: schedule and run constraint-aware inference with ExeGPT.

Serves OPT-13B on the paper's 4xA40 deployment for a summarization workload
(Table 3 task S).  The script:

1. profiles the model on the (simulated) cluster,
2. asks XScheduler for the throughput-optimal schedule under a 10-second
   latency bound for the 99th-percentile output length,
3. replays a synthetic trace under that schedule with XRunner, and
4. compares the result against an unconstrained FasterTransformer run.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExeGPT, LatencyConstraint
from repro.serving import default_baselines
from repro.workloads import generate_task_trace, get_task


def main() -> None:
    task = get_task("S")
    print(f"Task: {task.name} (input ~{task.input_mean}, output ~{task.output_mean} tokens)")

    # 1. Build the engine for the paper's OPT-13B deployment (4x A40).
    engine = ExeGPT.for_task("OPT-13B", task)
    print(f"Model: {engine.model.name} on {engine.cluster.num_gpus}x {engine.cluster.gpu.name}")

    # 2. Find the best schedule under a 10 s bound for a 99th-pctl sequence.
    constraint = LatencyConstraint(bound_s=10.0, target_length=task.output_p99)
    search = engine.schedule(constraint)
    if search.best is None:
        raise SystemExit("no schedule satisfies the bound")
    best = search.best
    print(
        f"Selected schedule: {best.config.describe()}\n"
        f"  estimated throughput: {best.throughput_seq_per_s:.2f} seq/s\n"
        f"  estimated latency ({best.target_length} tokens): {best.latency_s:.2f} s\n"
        f"  search evaluated {search.evaluations} of {search.space_size} points "
        f"in {search.elapsed_s:.2f} s"
    )

    # 3. Execute a synthetic trace under the schedule.
    trace = generate_task_trace(task, num_requests=512, seed=0)
    result = engine.run(trace, best.config)
    print(
        f"Measured: {result.steady_state_throughput():.2f} seq/s, "
        f"p99 latency {result.latency_percentile(99, skip_warmup=True):.2f} s "
        f"(bound {constraint.bound_s:.1f} s)"
    )

    # 4. Compare against FasterTransformer configured for the same bound.
    (ft,) = default_baselines(engine, ("ft",))
    ft_batch = ft.configure_for_bound(constraint.bound_s)
    ft_result = ft.run(trace, ft_batch)
    print(
        f"FasterTransformer (batch {ft_batch}): "
        f"{ft_result.steady_state_throughput():.2f} seq/s, "
        f"p99 latency {ft_result.latency_percentile(99, skip_warmup=True):.2f} s"
    )
    speedup = result.steady_state_throughput() / max(
        ft_result.steady_state_throughput(), 1e-9
    )
    print(f"ExeGPT speedup over FT under this bound: {speedup:.2f}x")


if __name__ == "__main__":
    main()

"""Fleet serving as a campaign: N replicas behind a router, swept as a grid.

The 4-replica OPT-13B study from PR 5 -- every (system x scenario x
routing policy) deployment's max sustained QPS under a p99 SLO, next to
the single-replica capacity -- expressed as a declarative
:class:`~repro.campaign.spec.CampaignSpec` instead of a hand-rolled loop:

* every (system, scenario, fleet size, routing) point is one independent
  **cell** executed through the campaign runner, fanned out across
  processes when more than one CPU is available;
* each cell's result trace is persisted to ``.campaign-traces/fleet`` --
  re-running this script loads finished cells instead of re-simulating
  them (delete the directory for a cold run), and a Ctrl-C mid-run
  resumes where it stopped;
* the printed tables are pure analysis over the stored traces.

Run with::

    python examples/fleet_serving.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    TraceStore,
    capacity_rows,
    default_workers,
)

SYSTEMS = ("exegpt", "orca")
POLICIES = ("round-robin", "jsq", "least-outstanding-work")
POLICY_LABELS = {"round-robin": "rr", "jsq": "jsq", "least-outstanding-work": "low"}
SCENARIOS = ("steady", "bursty", "diurnal")
REPLICAS = 4
# Sized so each of the 4 replicas sees a single-server-scale share: a
# fleet sweep with too few requests per replica never saturates.
NUM_REQUESTS = 384
SLO_BOUND_S = 10.0
PER_REPLICA_RATES = (1.0, 2.0, 4.0, 8.0, 16.0, 24.0)
STORE_DIR = Path(__file__).resolve().parent / ".campaign-traces" / "fleet"


def fleet_campaign() -> CampaignSpec:
    """Single-replica baselines plus the 4-replica routing grid."""
    common = dict(
        models=("OPT-13B",),
        tasks=("S",),
        systems=SYSTEMS,
        scenarios=SCENARIOS,
        slo_p99_s=SLO_BOUND_S,
        per_replica_rates=PER_REPLICA_RATES,
        num_requests=NUM_REQUESTS,
        max_encode_batch=32,
        max_queue=64,
    )
    single = CampaignSpec.online_grid(
        "fleet-serving", replicas=(1,), routings=("jsq",), **common
    )
    fleet = CampaignSpec.online_grid(
        "fleet-serving", replicas=(REPLICAS,), routings=POLICIES, **common
    )
    return CampaignSpec(name="fleet-serving", cells=single.cells + fleet.cells)


def main() -> None:
    start = time.perf_counter()
    spec = fleet_campaign()
    workers = default_workers()
    print(
        f"Fleet campaign: {len(spec)} cells "
        f"({len(SYSTEMS)} systems x {len(SCENARIOS)} scenarios x "
        f"[1 replica + {REPLICAS} replicas x {len(POLICIES)} policies]), "
        f"{workers} worker(s), traces in {STORE_DIR}"
    )
    print(f"SLO: p99 end-to-end latency <= {SLO_BOUND_S:.0f} s, no drops\n")

    runner = CampaignRunner(store=TraceStore(STORE_DIR), workers=workers)
    result = runner.run(spec)
    print(
        f"{len(result.executed)} cells executed, "
        f"{len(result.loaded)} loaded from the trace store\n"
    )

    # Pure analysis from here down: re-running with a warm store simulates
    # nothing and reprints these tables from disk.
    capacity = {
        (r["system"], r["scenario"], r["replicas"], r["routing"]): r["max_qps"]
        for r in capacity_rows(result)
    }
    for system in SYSTEMS:
        labels = [f"{REPLICAS}x {POLICY_LABELS[p]}" for p in POLICIES]
        header = f"{system:<10}" + f"{'1-replica':>12}" + "".join(
            f"{label:>12}" for label in labels
        )
        print(f"Max sustained QPS ({system}):")
        print(header)
        print("-" * len(header))
        for scenario in SCENARIOS:
            row = f"{scenario:<10}" + f"{capacity[(system, scenario, 1, 'jsq')]:>12.2f}"
            for policy in POLICIES:
                row += f"{capacity[(system, scenario, REPLICAS, policy)]:>12.2f}"
            print(row)
        print()

    for system in SYSTEMS:
        wins = sum(
            1
            for scenario in SCENARIOS
            if capacity[(system, scenario, REPLICAS, "jsq")]
            > capacity[(system, scenario, 1, "jsq")]
        )
        print(
            f"{system}: {REPLICAS}-replica JSQ fleet sustains more than "
            f"1 replica on {wins}/{len(SCENARIOS)} scenarios"
        )
    print(f"Total wall-clock: {time.perf_counter() - start:.1f} s")


if __name__ == "__main__":
    main()

"""Fleet serving: N replicas behind a router, one shared request pool.

Scales the online serving simulation out to a 4-replica deployment of
OPT-13B on the paper's 4xA40 configuration: every replica runs its own
schedule (ExeGPT's searched schedule, or ORCA's configured batch), a
routing policy assigns each arriving request to a replica's bounded
admission queue, and all replicas operate on disjoint id slices of ONE
shared columnar request pool.  For each traffic scenario the script sweeps
fleet-wide offered rates and prints, per routing policy, the **max
sustained QPS** under the p99 latency SLO -- next to the single-replica
capacity, so the fleet's scaling is visible.

Routing policies compared:

* ``round-robin``            -- cyclic assignment (skips full queues),
* ``jsq``                    -- join shortest queue (queued + in flight),
* ``least-outstanding-work`` -- smallest cost-model-priced drain time.

Run with::

    python examples/fleet_serving.py
"""

from __future__ import annotations

import time

from repro import ExeGPT
from repro.serving import SLA, SLAKind
from repro.serving.online import OnlineEvaluator
from repro.workloads import fleet_rates, generate_task_trace, get_task, known_scenarios

SYSTEMS = ("exegpt", "orca")
POLICIES = ("round-robin", "jsq", "least-outstanding-work")
POLICY_LABELS = {"round-robin": "rr", "jsq": "jsq", "least-outstanding-work": "low"}
REPLICAS = 4
# Sized so each of the 4 replicas sees a single-server-scale share: a
# fleet sweep with too few requests per replica never saturates.
NUM_REQUESTS = 384
SLO_BOUND_S = 10.0


def main() -> None:
    start = time.perf_counter()
    task = get_task("S")
    engine = ExeGPT.for_task("OPT-13B", task)
    print(
        f"Fleet of {REPLICAS} replicas, each {engine.model.name} on "
        f"{engine.cluster.num_gpus}x {engine.cluster.gpu.name}, "
        f"task {task.task_id}"
    )

    trace = generate_task_trace(task, num_requests=NUM_REQUESTS, seed=0)
    slo = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=SLO_BOUND_S, percentile=99.0)
    print(f"SLO: p99 end-to-end latency <= {slo.bound_s:.0f} s, no dropped requests")

    evaluator = OnlineEvaluator(engine, trace, slo, max_queue=64, seed=1)
    for system in SYSTEMS:
        server = evaluator.server(system)
        if system == "exegpt":
            print(f"  exegpt replica schedule: {server.config.describe()}")
        else:
            print(f"  {system} replica batch size: {server.batch_size}")

    # Per-replica rate ladder around ExeGPT's estimated offline throughput;
    # fleet sweeps run the same ladder scaled by the deployment size, so
    # capacities are comparable per replica.
    estimate = engine.estimate(evaluator.server("exegpt").config)
    base = max(estimate.throughput_seq_per_s, 0.1)
    per_replica = tuple(round(base * f, 2) for f in (0.5, 1.0, 2.0, 4.0, 8.0))
    print(
        f"Offered rates: {per_replica} QPS per replica "
        f"(x{REPLICAS} fleet-wide)\n"
    )

    scenarios = known_scenarios()
    capacity: dict[tuple[str, str, str], float] = {}
    for system in SYSTEMS:
        labels = [f"{REPLICAS}x {POLICY_LABELS[p]}" for p in POLICIES]
        header = f"{system:<10}" + f"{'1-replica':>12}" + "".join(
            f"{label:>12}" for label in labels
        )
        print(f"Max sustained QPS ({system}):")
        print(header)
        print("-" * len(header))
        for scenario in scenarios:
            single = evaluator.max_sustainable_qps(system, scenario, per_replica)
            capacity[(system, scenario, "single")] = single
            row = f"{scenario:<10}" + f"{single:>12.2f}"
            for policy in POLICIES:
                qps = evaluator.max_sustainable_qps(
                    system,
                    scenario,
                    fleet_rates(per_replica, REPLICAS),
                    replicas=REPLICAS,
                    routing=policy,
                )
                capacity[(system, scenario, policy)] = qps
                row += f"{qps:>12.2f}"
            print(row)
        print()

    # Scaling summary: the fleet must beat one replica on every scenario it
    # can serve at all; bursty traffic is where one replica's bounded queue
    # overflows while the fleet absorbs the burst across replicas.
    for system in SYSTEMS:
        wins = sum(
            1
            for scenario in scenarios
            if capacity[(system, scenario, "jsq")]
            > capacity[(system, scenario, "single")]
        )
        print(
            f"{system}: {REPLICAS}-replica JSQ fleet sustains more than "
            f"1 replica on {wins}/{len(scenarios)} scenarios"
        )
    print(f"Total wall-clock: {time.perf_counter() - start:.1f} s")


if __name__ == "__main__":
    main()

"""Large-model serving: GPT-3 101B/175B on multi-node clusters.

Reproduces the flavour of Figure 8: for large decoder-only models WAA's
weight replication no longer fits in GPU memory, so ExeGPT falls back to RRA
scheduling -- and still outperforms FasterTransformer, especially at tight
latency bounds, on the code-generation workload.

Run with::

    python examples/large_model_scaling.py
"""

from __future__ import annotations

from repro import ExeGPT, SchedulePolicy
from repro.serving import (
    default_baselines,
    derive_latency_bounds,
    measure_baseline,
    measure_exegpt,
)
from repro.workloads import generate_task_trace, get_task


def main() -> None:
    task = get_task("G")
    for model_name in ("GPT3-101B", "GPT3-175B"):
        engine = ExeGPT.for_task(model_name, task)
        print(
            f"\n=== {engine.model.name} on {engine.cluster.num_gpus}x "
            f"{engine.cluster.gpu.name} ==="
        )

        # WAA needs a second copy of the decoder stack; check feasibility.
        waa = engine.schedule(
            float("inf"), policies=(SchedulePolicy.WAA_C, SchedulePolicy.WAA_M)
        )
        print(f"WAA feasible: {'yes' if waa.found else 'no (weight replication does not fit)'}")

        trace = generate_task_trace(task, num_requests=192, seed=2)
        (ft,) = default_baselines(engine, ("ft",))
        bounds = derive_latency_bounds(ft, target_length=task.output_p99)
        for constraint in (bounds.tight, bounds.unbounded):
            exe = measure_exegpt(engine, trace, constraint, policies=(SchedulePolicy.RRA,))
            ft_row = measure_baseline(ft, trace, constraint)
            speedup = exe.throughput_seq_per_s / max(ft_row.throughput_seq_per_s, 1e-9)
            print(
                f"  bound {constraint.label:>4}: ExeGPT {exe.throughput_seq_per_s:6.2f} seq/s "
                f"({exe.config_description}) vs FT {ft_row.throughput_seq_per_s:6.2f} seq/s "
                f"-> {speedup:.2f}x"
            )


if __name__ == "__main__":
    main()

"""Online serving: sweep arrival rates to find each system's capacity.

Serves OPT-13B on the paper's 4xA40 deployment against *arrival-driven*
traffic instead of a pre-loaded batch.  For each traffic scenario (steady
Poisson, bursty, diurnal ramp) and each system (ExeGPT with its searched
RRA/WAA schedule, ORCA, vLLM), the script:

1. stamps a shared request trace with scenario arrivals at an offered rate,
2. serves it through the online simulator (bounded admission queue,
   continuous-batching iterations, per-request TTFT / queueing / latency), and
3. reports the **max sustainable QPS**: the highest offered rate at which
   every request completes within the p99 latency SLO with no queue drops.

Run with::

    python examples/online_serving.py
"""

from __future__ import annotations

import time

from repro import ExeGPT
from repro.serving import SLA, SLAKind
from repro.serving.online import OnlineEvaluator
from repro.workloads import (
    generate_task_trace,
    get_task,
    known_scenarios,
    make_scenario,
)

SYSTEMS = ("exegpt", "orca", "vllm")
NUM_REQUESTS = 96
SLO_BOUND_S = 20.0


def main() -> None:
    start = time.perf_counter()
    task = get_task("S")
    engine = ExeGPT.for_task("OPT-13B", task)
    print(
        f"Serving {engine.model.name} on {engine.cluster.num_gpus}x "
        f"{engine.cluster.gpu.name}, task {task.task_id} "
        f"(input ~{task.input_mean}, output ~{task.output_mean} tokens)"
    )

    trace = generate_task_trace(task, num_requests=NUM_REQUESTS, seed=0)
    slo = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=SLO_BOUND_S, percentile=99.0)
    print(f"SLO: p99 end-to-end latency <= {slo.bound_s:.0f} s, no dropped requests")

    evaluator = OnlineEvaluator(engine, trace, slo, max_queue=64, seed=1)

    # Pre-build the servers so the schedule search / batch configuration is
    # reported once, outside the sweep.
    for system in SYSTEMS:
        server = evaluator.server(system)
        if system == "exegpt":
            print(f"  exegpt schedule: {server.config.describe()}")
        else:
            print(f"  {system} batch size: {server.batch_size}")

    # Rate grid: a geometric ladder around ExeGPT's estimated offline
    # throughput, so the sweep brackets every system's saturation point.
    estimate = engine.estimate(evaluator.server("exegpt").config)
    base = max(estimate.throughput_seq_per_s, 0.1)
    rates = tuple(round(base * factor, 2) for factor in (0.25, 0.5, 1.0, 1.5, 2.0))
    print(f"Offered rates swept: {rates} QPS\n")

    scenarios = known_scenarios()
    header = f"{'scenario':<10}" + "".join(f"{s:>12}" for s in SYSTEMS)
    print("Max sustainable QPS under the SLO:")
    print(header)
    print("-" * len(header))
    capacity: dict[tuple[str, str], float] = {}
    for scenario in scenarios:
        row = f"{scenario:<10}"
        for system in SYSTEMS:
            qps = evaluator.max_sustainable_qps(system, scenario, rates)
            capacity[(system, scenario)] = qps
            row += f"{qps:>12.2f}"
        print(row)

    print("\nDetail at the highest sustained rate (steady scenario):")
    for system in SYSTEMS:
        qps = capacity[(system, "steady")]
        if qps <= 0:
            print(f"  {system:>7}: unsustainable at every swept rate")
            continue
        point = evaluator.measure(system, make_scenario("steady", qps))
        result = point.result
        print(
            f"  {system:>7}: {qps:.2f} qps offered, "
            f"p99 latency {result.latency_percentile(99):.2f} s, "
            f"p99 TTFT {result.ttft_percentile(99):.2f} s, "
            f"p99 queueing {result.queue_delay_percentile(99):.2f} s"
        )

    wins = [
        s
        for s in scenarios
        if capacity[("exegpt", s)] >= capacity[("orca", s)]
    ]
    print(
        f"\nExeGPT sustains >= ORCA's rate on {len(wins)}/{len(scenarios)} "
        f"scenarios ({', '.join(wins) if wins else 'none'})."
    )
    print(f"Total wall-clock: {time.perf_counter() - start:.1f} s")


if __name__ == "__main__":
    main()

"""Explore the latency/throughput trade-off (the Table 6 case study).

For OPT-13B on summarization, sweep latency bounds from tight to unbounded
and report the schedule XScheduler selects for each, showing how the control
variables shift: encoder batch first, then the RRA/WAA policy choice, then
the encoding frequency.

Run with::

    python examples/latency_throughput_tradeoff.py
"""

from __future__ import annotations

from repro import ExeGPT, LatencyConstraint
from repro.workloads import get_task


def main() -> None:
    task = get_task("S")
    engine = ExeGPT.for_task("OPT-13B", task)
    bounds = [3.1, 5.9, 11.5, float("inf")]

    print(f"{'bound (s)':>10} {'schedule':>40} {'latency (s)':>12} {'tput (seq/s)':>13}")
    print("-" * 80)
    best_tput = 0.0
    rows = []
    for bound in bounds:
        constraint = LatencyConstraint(bound_s=bound, target_length=task.output_p99)
        search = engine.schedule(constraint)
        if search.best is None:
            print(f"{bound:>10} {'NS (no feasible schedule)':>40}")
            continue
        est = search.best
        rows.append((bound, est))
        best_tput = max(best_tput, est.throughput_seq_per_s)
        print(
            f"{bound:>10} {est.config.describe():>40} "
            f"{est.latency_s:>12.2f} {est.throughput_seq_per_s:>13.2f}"
        )

    if rows:
        tight = rows[0][1].throughput_seq_per_s
        print(
            f"\nThe tightest bound still delivers {100 * tight / best_tput:.0f}% of the "
            "unconstrained throughput (the paper reports ~80%)."
        )


if __name__ == "__main__":
    main()

"""Chaos serving: a replica-flapping fleet next to its fault-free twin.

Runs the paper's OPT-13B / 4xA40 deployment as a 4-replica ExeGPT fleet
twice over the *same* Poisson arrivals: once fault-free, once under the
``replica_flap`` chaos scenario -- a seeded exponential crash/restart
process (MTBF 40 s, MTTR 5 s, 1 s restart warm-up) over all replicas.
When a replica goes down its queued and in-flight requests are reclaimed
through the shared request pool and re-routed by the live JSQ policy, so
every offered request is still accounted for:

    offered == completed + rejected + shed

The script prints fleet-wide SLO attainment for both runs and the
per-replica routed / requeued / crash counts of the chaotic one, making
the reroute visible.  The chaotic run is served a second time with
``batched_admission=False`` (the per-id reference path) to show the
batched chaos path reproduces it bit for bit.

Run with::

    python examples/chaos_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ExeGPT
from repro.serving import SLA, SLAKind, build_online_server
from repro.serving.fleet import Fleet
from repro.workloads import generate_task_trace, get_task
from repro.workloads.arrivals import attach_arrivals, make_chaos_scenario

REPLICAS = 4
NUM_REQUESTS = 384
RATE_QPS = 8.0  # fleet-wide; spreads arrivals over ~48 s of flapping
SCHEDULE_BOUND_S = 10.0  # latency bound the replica schedule is searched for
SLO_BOUND_S = 3.0  # tight enough that requeued requests visibly miss it


def main() -> None:
    start = time.perf_counter()
    task = get_task("S")
    engine = ExeGPT.for_task("OPT-13B", task)
    print(
        f"Fleet of {REPLICAS} replicas, each {engine.model.name} on "
        f"{engine.cluster.num_gpus}x {engine.cluster.gpu.name}, "
        f"task {task.task_id}"
    )

    server = build_online_server(engine, "exegpt", SCHEDULE_BOUND_S)
    print(f"  replica schedule: {server.config.describe()}")

    chaos = make_chaos_scenario("replica_flap", RATE_QPS, REPLICAS, seed=7)
    trace = generate_task_trace(task, num_requests=NUM_REQUESTS, seed=0)
    online = attach_arrivals(trace, chaos.process, seed=1)
    slo = SLA(kind=SLAKind.QUERY_PERCENTILE, bound_s=SLO_BOUND_S, percentile=99.0)
    flaps = len(chaos.faults.events)
    print(
        f"Scenario {chaos.name}: {NUM_REQUESTS} requests at {RATE_QPS:g} QPS, "
        f"{flaps} scheduled crash windows\n"
    )

    results = {}
    walls = {}
    for label, faults, batched in (
        ("fault-free", None, True),
        ("replica_flap", chaos.faults, True),
        ("flap-per-id", chaos.faults, False),
    ):
        fleet = Fleet.homogeneous(server, REPLICAS, routing="jsq",
                                  faults=faults, batched_admission=batched)
        t0 = time.perf_counter()
        results[label] = fleet.serve(
            online, scenario=label, offered_rate_qps=RATE_QPS
        )
        walls[label] = time.perf_counter() - t0

    print(f"{'run':<14}{'completed':>10}{'rejected':>10}{'crashes':>9}"
          f"{'requeued':>10}{'SLO attainment':>16}")
    print("-" * 69)
    for label, result in results.items():
        crashes = int(result.crashes.sum()) if result.crashes is not None else 0
        requeued = int(result.requeued.sum()) if result.requeued is not None else 0
        print(
            f"{label:<14}{result.completed:>10}{result.rejected:>10}"
            f"{crashes:>9}{requeued:>10}{result.attainment(slo):>15.1%}"
        )
    print()

    chaotic = results["replica_flap"]
    print("Per-replica (replica_flap):")
    print(f"{'replica':<10}{'routed':>8}{'crashes':>9}{'requeued':>10}")
    print("-" * 37)
    for i in range(REPLICAS):
        routed = int(np.count_nonzero(chaotic.assignments == i))
        print(
            f"{i:<10}{routed:>8}{int(chaotic.crashes[i]):>9}"
            f"{int(chaotic.requeued[i]):>10}"
        )
    print()

    accounted = chaotic.completed + chaotic.rejected + chaotic.shed
    print(
        f"Conservation: {chaotic.offered} offered == {chaotic.completed} "
        f"completed + {chaotic.rejected} rejected + {chaotic.shed} shed "
        f"({'OK' if accounted == chaotic.offered else 'VIOLATED'})"
    )
    per_id = results["flap-per-id"]
    identical = (
        chaotic.fleet.records == per_id.fleet.records
        and np.array_equal(chaotic.assignments, per_id.assignments)
    )
    print(
        f"Batched chaos path vs per-id fallback: "
        f"{'bit-identical' if identical else 'DIVERGED'} "
        f"(batched {walls['replica_flap'] * 1e3:.0f} ms, per-id "
        f"{walls['flap-per-id'] * 1e3:.0f} ms at this toy scale; the "
        f"chaos_sweep perf series measures the at-scale speedup)"
    )
    print(f"Total wall-clock: {time.perf_counter() - start:.1f} s")


if __name__ == "__main__":
    main()

"""Scheduling with imperfect knowledge of the output-length distribution.

Reproduces the spirit of Section 7.6 / Figure 11: a schedule optimised for
the nominal translation workload is confronted with traffic whose average
output length has drifted, and is compared against a re-optimised schedule
-- quantifying both the throughput left on the table and the latency-bound
violations of not adapting, as well as the (modest) cost of re-scheduling.

Run with::

    python examples/distribution_shift.py
"""

from __future__ import annotations

import time

from repro import ExeGPT, LatencyConstraint
from repro.workloads import generate_trace_from_distributions, get_task


def main() -> None:
    task = get_task("T")
    engine = ExeGPT.for_task("OPT-13B", task)
    bound = LatencyConstraint(bound_s=12.0, target_length=task.output_p99)

    nominal_output = engine.output_distribution
    baseline_search = engine.schedule(bound)
    if baseline_search.best is None:
        raise SystemExit("no feasible schedule for the nominal workload")
    baseline_config = baseline_search.best.config
    print(f"Nominal schedule: {baseline_config.describe()}")

    print(f"\n{'shift':>8} {'policy':>14} {'tput (seq/s)':>13} {'p99 lat (s)':>12}")
    print("-" * 52)
    for factor in (0.7, 1.0, 1.3):
        shifted = nominal_output.scaled_mean(factor)
        trace = generate_trace_from_distributions(
            engine.input_distribution, shifted, num_requests=384, seed=5
        )
        # Non-adjusted: keep running the nominal schedule.
        stale = engine.run(trace, baseline_config)
        print(
            f"{factor:>8.2f} {'non-adjusted':>14} "
            f"{stale.steady_state_throughput():>13.2f} "
            f"{stale.latency_percentile(99, skip_warmup=True):>12.2f}"
        )
        # Adjusted: re-run the scheduler for the shifted distribution.
        engine.update_distributions(output_distribution=shifted)
        start = time.perf_counter()
        adjusted_search = engine.schedule(bound)
        rescheduling_s = time.perf_counter() - start
        if adjusted_search.best is not None:
            adjusted = engine.run(trace, adjusted_search.best.config)
            print(
                f"{factor:>8.2f} {'re-optimised':>14} "
                f"{adjusted.steady_state_throughput():>13.2f} "
                f"{adjusted.latency_percentile(99, skip_warmup=True):>12.2f}"
                f"   (re-scheduling took {rescheduling_s:.1f} s)"
            )
        engine.update_distributions(output_distribution=nominal_output)


if __name__ == "__main__":
    main()

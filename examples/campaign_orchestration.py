"""Campaign orchestration tour: spec -> parallel run -> resume -> analyze.

A compact walkthrough of :mod:`repro.campaign` on a small online grid:

1. **Spec** -- declare the grid once; every cell gets a content hash that
   keys its trace and derives its seed, so results are independent of
   worker count and execution order.
2. **Run** -- fan the cells out across processes; each finished cell's
   trace is persisted atomically to the store.
3. **Resume** -- delete a third of the trace files and re-run: only the
   missing cells execute, the rest are pure loads, and the merged result
   is bit-identical to the original run.
4. **Analyze** -- regenerate capacity tables and fleet-scaling curves
   from the stored traces without simulating anything.

Run with::

    python examples/campaign_orchestration.py
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    TraceStore,
    canonical_json,
    default_workers,
    format_capacity_table,
    format_scaling_curves,
    load_campaign,
)

STORE_DIR = Path(__file__).resolve().parent / ".campaign-traces" / "orchestration"


def build_spec() -> CampaignSpec:
    """A 12-cell grid: 2 systems x 2 scenarios x 3 fleet sizes."""
    return CampaignSpec.online_grid(
        "orchestration-tour",
        models=("OPT-13B",),
        tasks=("S",),
        systems=("exegpt", "orca"),
        scenarios=("steady", "bursty"),
        replicas=(1, 2, 4),
        routings=("jsq",),
        slo_p99_s=15.0,
        per_replica_rates=(2.0, 4.0),
        num_requests=96,
        max_encode_batch=16,
        max_queue=256,
    )


def main() -> None:
    shutil.rmtree(STORE_DIR, ignore_errors=True)
    spec = build_spec()
    store = TraceStore(STORE_DIR)
    workers = default_workers()

    # 1 + 2. Spec and parallel run.
    print(f"[run] {len(spec)} cells, {workers} worker(s)")
    start = time.perf_counter()
    first = CampaignRunner(store=store, workers=workers).run(
        spec, progress=lambda cell, src: print(f"  {src:>8}  {cell.describe()}")
    )
    print(
        f"[run] executed={len(first.executed)} loaded={len(first.loaded)} "
        f"in {time.perf_counter() - start:.1f} s\n"
    )

    # 3. Resume: lose a third of the traces, re-run, verify bit-parity.
    victims = spec.hashes()[:: 3]
    for cell_hash in victims:
        store.delete(cell_hash)
    print(f"[resume] deleted {len(victims)} of {len(spec)} traces; re-running")
    resumed = CampaignRunner(store=store, workers=workers).run(spec)
    print(
        f"[resume] executed={len(resumed.executed)} (only the missing cells), "
        f"loaded={len(resumed.loaded)}"
    )
    identical = all(
        canonical_json(first.trace_of(cell)) == canonical_json(resumed.trace_of(cell))
        for cell in spec
    )
    print(f"[resume] merged result bit-identical to first run: {identical}\n")

    # 4. Analyze: everything below is rebuilt from disk, zero simulation.
    analyzed = load_campaign(store, spec)
    print(format_capacity_table(analyzed, title="Capacity (from stored traces)"))
    print()
    print(format_scaling_curves(analyzed, title="Fleet scaling (qps, efficiency)"))


if __name__ == "__main__":
    main()

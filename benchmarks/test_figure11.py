"""Benchmark: regenerate Figure 11 (sensitivity to distribution shift).

The schedule optimised for the nominal translation distribution is run
against workloads whose mean/std/skewness have drifted; the re-optimised
schedule serves as the reference.  The paper's qualitative findings checked
here: shifting the mean has the largest effect (longer outputs inflate the
non-adjusted 99th-percentile latency), while skewness has a minor impact on
throughput.
"""

from conftest import run_once

from repro.experiments.figure11 import run_figure11


def test_figure11_distribution_shift(benchmark):
    rows = run_once(
        benchmark,
        run_figure11,
        mean_factors=(0.7, 1.0, 1.3),
        std_factors=(0.7, 1.3),
        skew_values=(-0.41, 0.41),
        num_requests=256,
    )
    by_stat = {}
    for row in rows:
        by_stat.setdefault(row.statistic, []).append(row)
    assert set(by_stat) == {"mean", "std", "skew"}

    mean_rows = {round(r.factor, 2): r for r in by_stat["mean"]}
    # Longer-than-scheduled outputs must raise the normalised p99 latency of
    # the non-adjusted schedule above the shorter-than-scheduled case.
    assert mean_rows[1.3].non_adjusted_p99 > mean_rows[0.7].non_adjusted_p99
    benchmark.extra_info["p99_ratio_mean_1.3x"] = round(mean_rows[1.3].non_adjusted_p99, 2)

    # Skewness: throughput of the non-adjusted schedule stays within ~30% of
    # the re-optimised one (the paper reports only slight differences).
    for row in by_stat["skew"]:
        if row.adjusted_throughput > 0:
            ratio = row.non_adjusted_throughput / row.adjusted_throughput
            assert ratio > 0.6
    benchmark.extra_info["num_points"] = len(rows)

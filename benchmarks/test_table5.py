"""Benchmark: regenerate Table 5 (monotonicity of the control variables)."""

from conftest import run_once

from repro.experiments.table5 import overall_monotonic_fraction, run_table5


def test_table5_monotonicity(benchmark):
    rows = run_once(
        benchmark, run_table5, model_name="GPT3-39B", tasks=("S", "T"),
        tolerances_pct=(2.0, 5.0, 10.0),
    )
    assert rows
    fraction_5pct = overall_monotonic_fraction(rows, 5.0)
    fraction_10pct = overall_monotonic_fraction(rows, 10.0)
    benchmark.extra_info["monotonic_fraction_5pct"] = round(fraction_5pct, 3)
    benchmark.extra_info["paper_monotonic_fraction_5pct"] = 0.97
    # The scheduler's premise: the space is overwhelmingly monotonic, and
    # larger tolerances can only help.
    assert fraction_5pct > 0.8
    assert fraction_10pct >= fraction_5pct - 1e-9

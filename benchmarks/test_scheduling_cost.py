"""Benchmark: Section 7.7 (profiling and scheduling cost).

The reproducible quantity is the efficiency of branch-and-bound relative to
exhaustive search (the paper: minutes versus five hours to a day), measured
both in evaluated configuration points and wall time, plus the one-off
profiling cost per model.
"""

from conftest import run_once

from repro.experiments.scheduling_cost import (
    profiling_cost,
    run_scheduling_cost,
    search_efficiency,
)


def test_scheduling_search_cost(benchmark):
    rows = run_once(
        benchmark,
        run_scheduling_cost,
        max_encode_batch=32,
        methods=("branch_and_bound", "exhaustive", "random"),
    )
    efficiency = search_efficiency(rows)
    bnb_time = sum(r.elapsed_s for r in rows if r.method == "branch_and_bound")
    exhaustive_time = sum(r.elapsed_s for r in rows if r.method == "exhaustive")
    benchmark.extra_info["evaluation_ratio_exhaustive_vs_bnb"] = round(efficiency, 1)
    benchmark.extra_info["bnb_seconds"] = round(bnb_time, 2)
    benchmark.extra_info["exhaustive_seconds"] = round(exhaustive_time, 2)
    assert efficiency > 3.0, "branch-and-bound should prune most of the space"
    # Branch-and-bound must not sacrifice solution quality for speed.
    bnb_best = max(r.best_throughput for r in rows if r.method == "branch_and_bound")
    exhaustive_best = max(r.best_throughput for r in rows if r.method == "exhaustive")
    assert bnb_best >= 0.9 * exhaustive_best


def test_profiling_cost(benchmark):
    seconds = run_once(benchmark, profiling_cost, "OPT-13B")
    benchmark.extra_info["profiling_seconds"] = round(seconds, 2)
    benchmark.extra_info["paper_profiling_hours"] = "< 2 (on real GPUs)"
    assert seconds < 120.0

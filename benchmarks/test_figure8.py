"""Benchmark: regenerate Figure 8 (ExeGPT RRA vs FT on large LLMs).

GPT-3 101B and 175B on code generation under a tight and the unbounded
constraint; WAA is memory-infeasible at the largest scales (checked here),
so ExeGPT runs RRA only, as in the paper.
"""

from conftest import run_once

from repro.experiments.figure6 import figure6_speedups
from repro.experiments.figure8 import run_figure8, waa_is_infeasible


def test_figure8_large_models(benchmark):
    rows = run_once(
        benchmark,
        run_figure8,
        models=("GPT3-101B", "GPT3-175B"),
        tasks=("G",),
        num_requests=160,
        bounds_subset=(0, 3),
    )
    speedups = figure6_speedups(rows)
    assert speedups
    mean = sum(speedups.values()) / len(speedups)
    benchmark.extra_info["mean_speedup"] = round(mean, 2)
    benchmark.extra_info["paper_mean_speedup"] = 3.2
    tight = [v for k, v in speedups.items() if k.endswith("@10%")]
    assert max(tight) > 1.2, "ExeGPT should beat FT at the tight bound on large LLMs"


def test_figure8_waa_infeasible_for_341b(benchmark):
    infeasible = run_once(benchmark, waa_is_infeasible, "GPT3-341B", "C2")
    benchmark.extra_info["waa_infeasible_341b"] = infeasible
    assert infeasible, "WAA's weight replication should not fit GPT-3 341B (paper 7.4)"

"""Benchmark: regenerate Figure 6 (ExeGPT vs FT, small/mid LLMs).

The full figure spans four models x three tasks x four bounds; the benchmark
runs a representative subset (OPT-13B and GPT-3 39B on summarization and
translation, tightest and unbounded constraints) and checks the paper's
shape: ExeGPT's best schedule out-throughputs FT under the tight bound.
"""

from conftest import run_once

from repro.experiments.figure6 import figure6_speedups, run_figure6


def test_figure6_small_mid_models(benchmark):
    rows = run_once(
        benchmark,
        run_figure6,
        models=("OPT-13B", "GPT3-39B"),
        tasks=("S", "T"),
        num_requests=320,
        bounds_subset=(0, 3),
    )
    speedups = figure6_speedups(rows)
    assert speedups, "no (scenario, bound) pairs were measured"
    tight = {k: v for k, v in speedups.items() if k.endswith("@10%")}
    mean_tight = sum(tight.values()) / len(tight)
    benchmark.extra_info["mean_speedup_tight_bound"] = round(mean_tight, 2)
    benchmark.extra_info["mean_speedup_all"] = round(
        sum(speedups.values()) / len(speedups), 2
    )
    benchmark.extra_info["paper_mean_speedup"] = 2.0
    assert mean_tight > 1.2, f"ExeGPT should beat FT at tight bounds, got {tight}"

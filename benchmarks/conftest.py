"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (at a
reduced scale so the whole suite completes in minutes) and attaches the
headline numbers as ``extra_info`` so they appear in the pytest-benchmark
report.  Each harness runs exactly once per benchmark (``rounds=1``) because
the measured quantity is the experiment itself, not a micro-kernel.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

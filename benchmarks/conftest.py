"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (at a
reduced scale so the whole suite completes in minutes) and attaches the
headline numbers as ``extra_info`` so they appear in the pytest-benchmark
report.  Each harness runs exactly once per benchmark (``rounds=1``) because
the measured quantity is the experiment itself, not a micro-kernel.

The whole directory is marked ``slow``: benchmarks dominate the full-suite
wall clock, so the fast development loop (``pytest -m "not slow"``) skips
them and the scheduled CI job runs them.
"""

from __future__ import annotations

import pathlib

import pytest

from bench_helpers import run_once  # noqa: F401  (re-export for test modules)

_BENCHMARK_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    for item in items:
        if _BENCHMARK_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)

"""Benchmark: regenerate Figure 7 (comparison of existing inference systems).

FT, DSI, ORCA and vLLM on OPT-13B/4xA40; the paper's finding is that FT is
the strongest existing system across tasks and latency bounds.
"""

from conftest import run_once

from repro.experiments.figure7 import ft_wins, run_figure7


def test_figure7_existing_systems(benchmark):
    rows = run_once(
        benchmark,
        run_figure7,
        tasks=("S", "C1"),
        num_requests=256,
        bounds_subset=(1, 3),
    )
    assert rows
    ft_rows = [r for r in rows if r.system.endswith(":ft")]
    benchmark.extra_info["ft_mean_throughput"] = round(
        sum(r.throughput_seq_per_s for r in ft_rows) / len(ft_rows), 2
    )
    benchmark.extra_info["ft_is_strongest"] = ft_wins(rows)
    assert ft_wins(rows), "FT should be the strongest existing system (paper Figure 7)"

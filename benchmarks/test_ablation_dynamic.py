"""Ablation: dynamic workload adjustment on versus off (Section 5.2).

Runs the same RRA schedule on a workload with highly variable input lengths
with and without the runtime batch adjustment and compares throughput and
latency stability.
"""

from conftest import run_once

from repro.core.config import ScheduleConfig, SchedulePolicy
from repro.core.exegpt import ExeGPT
from repro.workloads.synthetic import generate_task_trace
from repro.workloads.tasks import get_task


def _run_both():
    task = get_task("C2")  # widest input-length spread of the Table 3 tasks
    engine = ExeGPT.for_task("OPT-13B", task, max_encode_batch=32)
    trace = generate_task_trace(task, num_requests=256, seed=13)
    config = ScheduleConfig(SchedulePolicy.RRA, encode_batch=16, decode_iterations=16)
    with_adjustment = engine.run(trace, config, dynamic_adjustment=True)
    without_adjustment = engine.run(trace, config, dynamic_adjustment=False)
    return with_adjustment, without_adjustment


def test_ablation_dynamic_adjustment(benchmark):
    with_adj, without_adj = run_once(benchmark, _run_both)
    benchmark.extra_info["throughput_with"] = round(with_adj.steady_state_throughput(), 2)
    benchmark.extra_info["throughput_without"] = round(
        without_adj.steady_state_throughput(), 2
    )
    benchmark.extra_info["encoder_variance_pct_with"] = round(
        with_adj.stage_time_stats("encode")["p99_range_pct"], 1
    )
    benchmark.extra_info["encoder_variance_pct_without"] = round(
        without_adj.stage_time_stats("encode")["p99_range_pct"], 1
    )
    # Both complete the full trace.  The adjustment trades a modest amount of
    # throughput (it refuses to admit encoder batches whose total input
    # length is far above the scheduled average) for predictable encoder
    # workloads, so it must stay within ~30% of the static schedule.
    assert with_adj.num_requests == without_adj.num_requests
    assert with_adj.steady_state_throughput() >= 0.7 * without_adj.steady_state_throughput()

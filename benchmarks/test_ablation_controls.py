"""Ablation: effect of each control variable in isolation.

Sweeps one control variable at a time around a reference schedule and
records the throughput/latency direction, validating the trade-off table of
Section 4.2 on the simulator that drives all scheduling decisions.
"""

from conftest import run_once

from repro.core.config import ScheduleConfig, SchedulePolicy, TensorParallelConfig
from repro.core.exegpt import ExeGPT


def _sweep_controls():
    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=64)
    simulator = engine.simulator
    out = {}

    def series(configs):
        estimates = [simulator.estimate(c) for c in configs]
        return [
            (e.throughput_seq_per_s, e.latency_s) for e in estimates if e.feasible
        ]

    out["encode_batch"] = series(
        [ScheduleConfig(SchedulePolicy.RRA, b, decode_iterations=8) for b in (4, 8, 16, 32)]
    )
    out["encoding_frequency"] = series(
        [ScheduleConfig(SchedulePolicy.RRA, 16, decode_iterations=n) for n in (32, 16, 8, 4)]
    )
    # WAA-M keeps the decoder-side memory balanced so every point of the
    # micro-batch sweep stays feasible on the 4x A40 deployment.
    out["micro_batches"] = series(
        [ScheduleConfig(SchedulePolicy.WAA_M, 2, micro_batches=m) for m in (1, 2, 3)]
    )
    out["tensor_parallel_gpus"] = series(
        [
            ScheduleConfig(
                SchedulePolicy.RRA,
                16,
                decode_iterations=8,
                tensor_parallel=TensorParallelConfig(degree=2, num_gpus=n),
            )
            for n in (0, 2, 4)
        ]
    )
    return out


def _monotone(values, increasing: bool, tolerance: float = 0.02) -> bool:
    for prev, cur in zip(values, values[1:]):
        delta = cur - prev if increasing else prev - cur
        if delta < -tolerance * max(abs(prev), 1e-9):
            return False
    return True


def test_ablation_control_variables(benchmark):
    sweeps = run_once(benchmark, _sweep_controls)
    benchmark.extra_info["points_per_variable"] = {k: len(v) for k, v in sweeps.items()}

    # Batch size: throughput and latency both increase.
    tput = [p[0] for p in sweeps["encode_batch"]]
    lat = [p[1] for p in sweeps["encode_batch"]]
    assert _monotone(tput, increasing=True)
    assert _monotone(lat, increasing=True)

    # Encoding frequency (N_D decreasing): throughput and latency increase.
    tput = [p[0] for p in sweeps["encoding_frequency"]]
    lat = [p[1] for p in sweeps["encoding_frequency"]]
    assert _monotone(tput, increasing=True)
    assert _monotone(lat, increasing=True)

    # Decoder micro-batches: throughput does not increase.
    tput = [p[0] for p in sweeps["micro_batches"]]
    assert tput, "micro-batch sweep produced no feasible points"
    assert _monotone(tput, increasing=False, tolerance=0.05)

    # Partial tensor parallelism: covering all GPUs with TP groups yields a
    # lower latency than no TP at all (intermediate coverage may pay the
    # all-reduce cost without shrinking the pipeline enough, so only the
    # endpoints are compared strictly).
    lat = [p[1] for p in sweeps["tensor_parallel_gpus"]]
    assert lat[-1] < lat[0]
    assert _monotone(lat, increasing=False, tolerance=0.10)

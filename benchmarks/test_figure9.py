"""Benchmark: regenerate Figure 9 (memory usage of FT vs WAA).

Per-GPU weight and KV-cache memory for OPT-13B and GPT-3 101B under the
unbounded constraint.  The qualitative claims checked: WAA uses more model
memory than FT (it stores the decoder stack twice for decoder-only models)
while its decoder GPUs carry the KV cache.
"""

from conftest import run_once

from repro.experiments.figure9 import model_memory_overhead, run_figure9


def test_figure9_memory_usage(benchmark):
    rows = run_once(benchmark, run_figure9, models=("OPT-13B", "GPT3-101B"), tasks=("T", "G"))
    scenarios = sorted({r.scenario for r in rows})
    assert scenarios
    overheads = {s: model_memory_overhead(rows, s) for s in scenarios}
    benchmark.extra_info["model_memory_overhead"] = {
        k: round(v, 2) for k, v in overheads.items()
    }
    benchmark.extra_info["paper_overhead"] = {"OPT-13B": 0.18, "GPT3-101B": 0.29}
    # Every scenario where WAA fit must show a positive model-memory overhead.
    waa_scenarios = {r.scenario for r in rows if r.system.startswith("waa")}
    for scenario in waa_scenarios:
        assert overheads[scenario] > 0.0
    # GPU capacity is never exceeded.
    assert all(r.total_gib <= 81.0 for r in rows)

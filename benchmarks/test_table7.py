"""Benchmark: regenerate Table 7 (encoder/decoder stage-time variance)."""

from conftest import run_once

from repro.experiments.table7 import run_table7


def test_table7_workload_variance(benchmark):
    rows = run_once(benchmark, run_table7, num_requests=384)
    assert rows
    by_key = {(r.schedule, r.phase): r for r in rows}
    benchmark.extra_info["p99_range_pct"] = {
        f"{k[0]}/{k[1]}": round(r.p99_range_pct, 1) for k, r in by_key.items()
    }
    benchmark.extra_info["paper_encoder_range_pct"] = {"RRA": 7.1, "WAA": 11.8}
    # Decoder stage times vary less than encoder stage times under WAA (the
    # paper's qualitative finding that justifies the dynamic adjustment).
    if ("WAA", "encode") in by_key and ("WAA", "decode") in by_key:
        assert by_key[("WAA", "decode")].p99_range_pct <= by_key[("WAA", "encode")].p99_range_pct
    assert all(r.mean_s > 0 for r in rows)

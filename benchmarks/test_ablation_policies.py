"""Ablation: RRA vs WAA-C vs WAA-M across output-length regimes.

The paper argues WAA wins for short-output tasks (smaller KV cache, so the
replication overhead is cheap and pipeline bubbles dominate) while RRA wins
for long-output tasks and very large models.  This ablation evaluates the
best schedule of each policy on a short-output (S) and a long-output (G)
task and records who wins where.
"""

from conftest import run_once

from repro.core.config import LatencyConstraint, SchedulePolicy
from repro.core.exegpt import ExeGPT
from repro.workloads.tasks import get_task


def _best_per_policy(task_id: str) -> dict[str, float]:
    task = get_task(task_id)
    engine = ExeGPT.for_task("OPT-13B", task, max_encode_batch=48)
    constraint = LatencyConstraint(bound_s=float("inf"), target_length=task.output_p99)
    throughputs = {}
    for label, policies in (
        ("rra", (SchedulePolicy.RRA,)),
        ("waa-c", (SchedulePolicy.WAA_C,)),
        ("waa-m", (SchedulePolicy.WAA_M,)),
    ):
        result = engine.schedule(constraint, policies=policies)
        throughputs[label] = result.best.throughput_seq_per_s if result.best else 0.0
    return throughputs


def _run_ablation():
    return {task_id: _best_per_policy(task_id) for task_id in ("S", "G")}


def test_ablation_allocation_policies(benchmark):
    results = run_once(benchmark, _run_ablation)
    benchmark.extra_info["throughput_by_policy"] = {
        task: {k: round(v, 2) for k, v in policies.items()}
        for task, policies in results.items()
    }
    for task_id, throughputs in results.items():
        # Every policy must produce a feasible schedule on OPT-13B.
        assert all(v > 0 for v in throughputs.values()), (task_id, throughputs)
    # The winning policy differs by at most a modest margin from the best of
    # the other policies on the short-output task (they are competitive),
    # while on the long-output task RRA is not worse than WAA (the paper's
    # memory-overhead argument).
    long_output = results["G"]
    assert long_output["rra"] >= 0.9 * max(long_output["waa-c"], long_output["waa-m"])

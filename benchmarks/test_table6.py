"""Benchmark: regenerate Table 6 (schedule case study, OPT-13B / task S)."""

from conftest import run_once

from repro.experiments.table6 import (
    TABLE6_BOUNDS,
    run_table6,
    tightest_to_max_throughput_ratio,
)


def test_table6_selected_schedules(benchmark):
    rows = run_once(benchmark, run_table6, bounds=TABLE6_BOUNDS)
    assert len(rows) == 4
    feasible = [r for r in rows if r.throughput_seq_per_s > 0]
    assert len(feasible) == 4, "a schedule should exist for every Table 6 bound"
    # Selected latencies respect their bounds and throughput grows as the
    # bound relaxes.
    for row in feasible:
        assert row.latency_s <= row.bound_s * 1.001
    tputs = [r.throughput_seq_per_s for r in feasible]
    assert tputs == sorted(tputs)
    ratio = tightest_to_max_throughput_ratio(rows)
    benchmark.extra_info["schedules"] = [r.config for r in rows]
    benchmark.extra_info["tightest_to_max_ratio"] = round(ratio, 2)
    benchmark.extra_info["paper_ratio"] = 0.8
    assert ratio > 0.3

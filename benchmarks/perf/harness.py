"""Perf-regression harness for the cost-model/search/runner hot paths.

Times the hot paths of the scheduling stack -- per-point estimation,
schedule search (branch-and-bound and exhaustive), trace replay through the
execution engine (batched versus scalar pricing), and the online
rate sweep -- and writes the measurements to ``BENCH_search.json`` at the
repository root.  The file is machine-readable and append-only: every
harness run adds one record to the ``trajectory`` list, so successive PRs
are held to the recorded numbers.

Two kinds of comparisons are reported:

* **Same-run speedups** (machine-independent): the vectorized engine against
  the scalar reference path measured in the same process.  These back the
  regression assertions in ``test_perf_search.py``.
* **The pre-PR baseline**: wall times of the original scalar-only
  implementation, recorded once when the vectorized engine landed, kept for
  context in the JSON.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import (
    LatencyConstraint,
    ScheduleConfig,
    SchedulePolicy,
    TensorParallelConfig,
)
from repro.core.exegpt import ExeGPT
from repro.core.scheduler import XScheduler
from repro.serving.fleet import RoutingPolicy
from repro.workloads.tasks import get_task
from repro.workloads.synthetic import generate_task_trace

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_search.json"

# The paper-scale search space the acceptance numbers refer to: GPT-3 39B on
# 8 A40 GPUs, B_E in 1..128 -- 65,536 candidate points across all
# (policy, TP) subspaces.
SEARCH_MODEL = "GPT3-39B"
SEARCH_GPUS = 8
SEARCH_TASK = "S"
SEARCH_BOUND_S = 20.0
SEARCH_MAX_ENCODE_BATCH = 128

# Wall times of the scalar-only implementation this harness replaced,
# measured on the machine that produced the first trajectory record (see
# ``host``).  The exhaustive figure is extrapolated from the measured
# 2.64 ms/point over the full 65,536-point space.
PRE_PR_BASELINE = {
    "estimate_ms": 10.16,
    "branch_and_bound_s": 8.23,
    "exhaustive_s_extrapolated": 173.0,
    "space_points": 65536,
}


def build_search_engine() -> ExeGPT:
    """The engine whose search space the acceptance numbers refer to."""
    return ExeGPT.for_task(
        SEARCH_MODEL,
        SEARCH_TASK,
        num_gpus=SEARCH_GPUS,
        max_encode_batch=SEARCH_MAX_ENCODE_BATCH,
    )


def search_constraint() -> LatencyConstraint:
    """The latency bound used by all search benchmarks."""
    return LatencyConstraint(
        bound_s=SEARCH_BOUND_S, target_length=get_task(SEARCH_TASK).output_p99
    )


def _sample_configs(
    scheduler: XScheduler, points_per_space: int, seed: int = 0
) -> list[ScheduleConfig]:
    """Uniformly sampled configurations across every search subspace."""
    rng = np.random.default_rng(seed)
    configs: list[ScheduleConfig] = []
    for space in scheduler.search_spaces():
        (x1_lo, x1_hi), (x2_lo, x2_hi) = space.bounds
        for _ in range(points_per_space):
            x1 = int(rng.integers(x1_lo, x1_hi + 1))
            x2 = int(rng.integers(x2_lo, x2_hi + 1))
            configs.append(space.config_at(x1, x2))
    return configs


@dataclass
class EstimateBench:
    """Per-point estimation cost, scalar versus batched.

    Attributes:
        scalar_ms_per_point: Scalar ``estimate()`` wall time per point.
        batch_us_per_point: ``estimate_batch()`` wall time per point.
        speedup: Scalar over batched per-point cost.
        worst_rel_err: Worst relative disagreement across the sampled
            points (parity check; must stay below 1e-9).
        points: Sample size.
    """

    scalar_ms_per_point: float
    batch_us_per_point: float
    speedup: float
    worst_rel_err: float
    points: int


def bench_estimate(engine: ExeGPT, points_per_space: int = 12) -> EstimateBench:
    """Time scalar vs batched estimation over a sample of the search space."""
    simulator = engine.simulator
    configs = _sample_configs(engine.scheduler(), points_per_space)
    target = simulator.output_distribution.percentile(99)

    start = time.perf_counter()
    scalar = [simulator.estimate(c, target_length=target) for c in configs]
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = simulator.estimate_batch(configs, target_length=target)
    batch_s = time.perf_counter() - start

    worst = 0.0
    for s, b in zip(scalar, batched):
        assert b is not None and b.memory_feasible == s.memory_feasible
        for attr in ("throughput_seq_per_s", "latency_s", "cycle_time_s"):
            sv, bv = getattr(s, attr), getattr(b, attr)
            worst = max(worst, abs(sv - bv) / max(abs(sv), 1e-12))
    n = len(configs)
    return EstimateBench(
        scalar_ms_per_point=scalar_s / n * 1e3,
        batch_us_per_point=batch_s / n * 1e6,
        speedup=scalar_s / batch_s if batch_s > 0 else float("inf"),
        worst_rel_err=worst,
        points=n,
    )


@dataclass
class SearchBench:
    """Search cost, scalar versus batched evaluators.

    Attributes:
        space_points: Total candidate points across all subspaces.
        bnb_batched_s: Branch-and-bound wall time, vectorized evaluator.
        bnb_scalar_s: Branch-and-bound wall time, scalar evaluator.
        bnb_speedup: Scalar over batched branch-and-bound time.
        bnb_evaluations: Points the vectorized search evaluated.
        exhaustive_batched_s: Exhaustive grid wall time, vectorized.
        exhaustive_scalar_equiv_s: Scalar-equivalent exhaustive wall time,
            extrapolated from the measured scalar per-point cost.
        exhaustive_speedup: Scalar-equivalent over batched exhaustive time.
        best_throughput_matches: Branch-and-bound found the exhaustive
            optimum (within 1e-9 relative).
    """

    space_points: int
    bnb_batched_s: float
    bnb_scalar_s: float
    bnb_speedup: float
    bnb_evaluations: int
    exhaustive_batched_s: float
    exhaustive_scalar_equiv_s: float
    exhaustive_speedup: float
    best_throughput_matches: bool


def bench_search(
    engine: ExeGPT, scalar_ms_per_point: float
) -> SearchBench:
    """Time branch-and-bound and exhaustive search, scalar vs vectorized."""
    constraint = search_constraint()
    scheduler = engine.scheduler()

    start = time.perf_counter()
    bnb_batched = scheduler.schedule(constraint)
    bnb_batched_s = time.perf_counter() - start

    start = time.perf_counter()
    bnb_scalar = scheduler.schedule(constraint, batched=False)
    bnb_scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    exhaustive = scheduler.schedule(constraint, method="exhaustive")
    exhaustive_batched_s = time.perf_counter() - start

    exhaustive_scalar_equiv_s = scalar_ms_per_point * 1e-3 * exhaustive.space_size
    best_matches = (
        bnb_batched.best is not None
        and exhaustive.best is not None
        and abs(
            bnb_batched.best.throughput_seq_per_s
            - exhaustive.best.throughput_seq_per_s
        )
        <= 1e-9 * exhaustive.best.throughput_seq_per_s
        and bnb_scalar.best is not None
        and abs(
            bnb_scalar.best.throughput_seq_per_s
            - bnb_batched.best.throughput_seq_per_s
        )
        <= 1e-9 * bnb_batched.best.throughput_seq_per_s
    )
    return SearchBench(
        space_points=exhaustive.space_size,
        bnb_batched_s=bnb_batched_s,
        bnb_scalar_s=bnb_scalar_s,
        bnb_speedup=bnb_scalar_s / bnb_batched_s if bnb_batched_s > 0 else float("inf"),
        bnb_evaluations=bnb_batched.evaluations,
        exhaustive_batched_s=exhaustive_batched_s,
        exhaustive_scalar_equiv_s=exhaustive_scalar_equiv_s,
        exhaustive_speedup=(
            exhaustive_scalar_equiv_s / exhaustive_batched_s
            if exhaustive_batched_s > 0
            else float("inf")
        ),
        best_throughput_matches=best_matches,
    )


@dataclass
class RunnerBench:
    """Trace-replay cost of the discrete-event runner.

    Attributes:
        runner_s: Wall time to replay the trace.
        requests: Trace length.
        throughput_seq_per_s: Measured (simulated) serving throughput.
    """

    runner_s: float
    requests: int
    throughput_seq_per_s: float


def bench_runner(num_requests: int = 512) -> RunnerBench:
    """Time an XRunner trace replay under a scheduled config (OPT-13B)."""
    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=32)
    task = get_task("S")
    result = engine.schedule(
        LatencyConstraint(bound_s=float("inf"), target_length=task.output_p99)
    )
    trace = generate_task_trace(task, num_requests=num_requests, seed=0)
    start = time.perf_counter()
    run = engine.run(trace, result.best.config)
    runner_s = time.perf_counter() - start
    return RunnerBench(
        runner_s=runner_s,
        requests=num_requests,
        throughput_seq_per_s=run.throughput_seq_per_s,
    )


@dataclass
class ReplayBench:
    """Trace replay through the execution engine, batched vs scalar pricing.

    Attributes:
        scalar_s: Replay wall time with per-task scalar profile lookups
            (the historical reference path).
        batched_s: Replay wall time with per-cycle batched pricing.
        speedup: Scalar over batched replay time.
        bit_identical: The two replays produced byte-for-byte equal results
            (makespan, latencies, stage durations).
        requests: Trace length.
        policy: Policy of the replayed schedule.
    """

    scalar_s: float
    batched_s: float
    speedup: float
    bit_identical: bool
    requests: int
    policy: str


# Replay/online benchmarks run a pipeline-parallel RRA schedule (4 stages on
# the 4-GPU OPT-13B deployment): with a multi-stage pipeline each cycle
# carries stages x micro-batches work items, which is the regime the batched
# pricing targets.  (Single-stage TP-maximized schedules spend their replay
# time in pool management, not pricing.)
REPLAY_CONFIG = ScheduleConfig(
    policy=SchedulePolicy.RRA, encode_batch=16, decode_iterations=8
)


def bench_replay(num_requests: int = 512, repetitions: int = 3) -> ReplayBench:
    """Time XRunner replays with batched versus scalar stage pricing."""
    from repro.core.runner import XRunner

    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=32)
    task = get_task("S")
    config = REPLAY_CONFIG
    trace = generate_task_trace(task, num_requests=num_requests, seed=0)

    # Warm the one-time costs (profile sweep, EstimateContext, placement
    # memo) outside the timed regions so neither pricing path is charged
    # for them.
    XRunner(engine.simulator, config).run(trace)

    # Interleaved best-of-N: replays are tens of milliseconds, so a single
    # sample is at the mercy of scheduler/GC noise.
    best = {"scalar": float("inf"), "batched": float("inf")}
    runs: dict[str, object] = {}
    for _ in range(repetitions):
        for name, batched in (("scalar", False), ("batched", True)):
            start = time.perf_counter()
            runs[name] = XRunner(
                engine.simulator, config, batched_pricing=batched
            ).run(trace)
            best[name] = min(best[name], time.perf_counter() - start)
    scalar_run, batched_run = runs["scalar"], runs["batched"]
    scalar_s, batched_s = best["scalar"], best["batched"]

    bit_identical = (
        scalar_run.makespan_s == batched_run.makespan_s
        and scalar_run.latencies_s == batched_run.latencies_s
        and scalar_run.stage_times == batched_run.stage_times
    )
    return ReplayBench(
        scalar_s=scalar_s,
        batched_s=batched_s,
        speedup=scalar_s / batched_s if batched_s > 0 else float("inf"),
        bit_identical=bit_identical,
        requests=num_requests,
        policy=config.policy.value,
    )


@dataclass
class PoolBench:
    """Trace replay on the columnar request pool vs the list reference.

    Both replays run the *batched-pricing* engine (the PR 3 path); the only
    difference is the request-pool backend -- per-object
    ``list[RequestState]`` scans versus numpy columns -- so the speedup
    isolates exactly the pool-management cost the columnar refactor
    removed.

    Attributes:
        list_s: Replay wall time on the per-object list backend
            (``XRunner(columnar=False)``, the historical path).
        columnar_s: Replay wall time on the columnar pool.
        speedup: List over columnar replay time.
        bit_identical: The two replays produced byte-for-byte equal results
            *and* task graphs (stage/tag/duration, task for task).
        requests: Trace length.
        decode_pool_target: Standing decode-batch target of the schedule
            (the pool size whose management is being measured).
        policy: Policy of the replayed schedule.
    """

    list_s: float
    columnar_s: float
    speedup: float
    bit_identical: bool
    requests: int
    decode_pool_target: int
    policy: str


# The pool benchmark replays a paper-scale RRA schedule: B_E at the search
# space's maximum (128, the same bound the GPT3-39B acceptance numbers use)
# yields a standing decode pool of several hundred requests -- the regime
# where per-object pool scans dominated PR 3 replay profiles.
POOL_REPLAY_CONFIG = ScheduleConfig(
    policy=SchedulePolicy.RRA, encode_batch=128, decode_iterations=8
)


def bench_pool_replay(num_requests: int = 2048, repetitions: int = 5) -> PoolBench:
    """Time XRunner replays on the list vs columnar request-pool backends."""
    from repro.core.runner import XRunner

    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=128)
    task = get_task("S")
    config = POOL_REPLAY_CONFIG
    trace = generate_task_trace(task, num_requests=num_requests, seed=0)
    decode_target = XRunner(engine.simulator, config)._make_adjuster().target_decode_batch

    # Warm the one-time costs (profile sweep, EstimateContext, placement
    # memo) outside the timed regions so neither backend is charged for
    # them.
    XRunner(engine.simulator, config).run(trace)
    XRunner(engine.simulator, config, columnar=False).run(trace)

    best = {"list": float("inf"), "columnar": float("inf")}
    runs: dict[str, object] = {}
    graphs: dict[str, list] = {}
    # Interleave repetitions so machine noise hits both backends alike.
    for _ in range(repetitions):
        for name, columnar in (("list", False), ("columnar", True)):
            runner = XRunner(engine.simulator, config, columnar=columnar)
            start = time.perf_counter()
            runs[name] = runner.run(trace)
            best[name] = min(best[name], time.perf_counter() - start)
            graphs[name] = [
                (t.stage, t.tag, t.duration_s) for t in runner.last_timeline.tasks
            ]

    list_run, columnar_run = runs["list"], runs["columnar"]
    bit_identical = (
        list_run.makespan_s == columnar_run.makespan_s
        and list_run.latencies_s == columnar_run.latencies_s
        and list_run.stage_times == columnar_run.stage_times
        and graphs["list"] == graphs["columnar"]
    )
    return PoolBench(
        list_s=best["list"],
        columnar_s=best["columnar"],
        speedup=(
            best["list"] / best["columnar"]
            if best["columnar"] > 0
            else float("inf")
        ),
        bit_identical=bit_identical,
        requests=num_requests,
        decode_pool_target=int(round(decode_target)),
        policy=config.policy.value,
    )


@dataclass
class OnlineSweepBench:
    """Online rate-sweep cost, batched vs scalar iteration pricing.

    Attributes:
        scalar_s: Wall time serving every rate with scalar per-task pricing.
        batched_s: Same sweep with per-cycle batched pricing.
        speedup: Scalar over batched sweep time.
        rates: Offered rates swept.
        requests: Requests served per rate point.
        completions_match: Both pricings completed the same request counts
            at every rate (the sweep's decisions are pricing-independent).
    """

    scalar_s: float
    batched_s: float
    speedup: float
    rates: tuple[float, ...]
    requests: int
    completions_match: bool


def bench_online_sweep(
    num_requests: int = 192,
    rates: tuple[float, ...] = (2.0, 8.0, 32.0),
) -> OnlineSweepBench:
    """Time an ExeGPT online rate sweep with batched vs scalar pricing."""
    from repro.serving.online import ExeGPTOnlineServer
    from repro.workloads.arrivals import PoissonProcess, attach_arrivals

    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=32)
    task = get_task("S")
    config = REPLAY_CONFIG
    trace = generate_task_trace(task, num_requests=num_requests, seed=0)
    stamped = [
        attach_arrivals(trace, PoissonProcess(rate), seed=1) for rate in rates
    ]

    def sweep(batched: bool) -> tuple[float, list[int]]:
        start = time.perf_counter()
        completed = []
        for online_trace in stamped:
            server = ExeGPTOnlineServer(
                engine.simulator, config, batched_pricing=batched
            )
            completed.append(server.serve(online_trace).completed)
        return time.perf_counter() - start, completed

    # Warm the placement/context memos outside the timed sweeps.
    ExeGPTOnlineServer(engine.simulator, config).serve(stamped[0])

    scalar_s, scalar_done = sweep(batched=False)
    batched_s, batched_done = sweep(batched=True)
    return OnlineSweepBench(
        scalar_s=scalar_s,
        batched_s=batched_s,
        speedup=scalar_s / batched_s if batched_s > 0 else float("inf"),
        rates=tuple(rates),
        requests=num_requests,
        completions_match=scalar_done == batched_done,
    )


@dataclass
class FleetBench:
    """Fleet rate sweep + routing-overhead scaling on the shared pool.

    Two measurements back the fleet layer:

    * **Capacity scaling** -- the maximum offered rate a single replica
      sustains under the SLO versus a ``replicas``-wide JSQ fleet of the
      same server, swept over one fleet-wide rate ladder.  The fleet must
      sustain a strictly higher rate.
    * **Routing-overhead scaling** -- per-routing-decision cost of the
      least-outstanding-work policy (the one doing column reductions over
      the shared pool) measured at two pool sizes.  Because a replica's
      outstanding work reduces over its *own* id slices (queue + in-flight
      batch), not the whole pool, the per-decision cost must stay
      sub-linear in total pool size.

    Attributes:
        replicas: Fleet size of the capacity sweep.
        routing: Routing policy of the capacity sweep.
        rates: Offered-rate ladder (fleet-wide QPS).
        slo_bound_s: p99 end-to-end SLO bound of the sweep.
        single_qps: Highest sustained rate of one replica (0 if none).
        fleet_qps: Highest sustained rate of the fleet (ladder-capped).
        capacity_scaling: ``fleet_qps / single_qps``.
        small_pool / large_pool: Request counts of the two overhead runs.
        route_us_small / route_us_large: Mean per-routing-decision cost.
        routing_overhead_ratio: ``route_us_large / route_us_small``.
        pool_ratio: ``large_pool / small_pool``.
    """

    replicas: int
    routing: str
    rates: tuple[float, ...]
    slo_bound_s: float
    single_qps: float
    fleet_qps: float
    capacity_scaling: float
    small_pool: int
    large_pool: int
    route_us_small: float
    route_us_large: float
    routing_overhead_ratio: float
    pool_ratio: float


class _TimedRouting(RoutingPolicy):
    """Wraps a routing policy, accumulating wall time per select call."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = inner.name
        self.calls = 0
        self.total_s = 0.0

    def reset(self, fleet) -> None:
        self.inner.reset(fleet)

    def select(self, fleet, rid, clock):
        start = time.perf_counter()
        index = self.inner.select(fleet, rid, clock)
        self.total_s += time.perf_counter() - start
        self.calls += 1
        return index

    @property
    def us_per_call(self) -> float:
        if self.calls == 0:
            return 0.0
        return self.total_s / self.calls * 1e6


def bench_fleet_sweep(
    num_requests: int = 192,
    replicas: int = 4,
    rates: tuple[float, ...] = (4.0, 8.0, 16.0, 32.0, 64.0),
    slo_bound_s: float = 10.0,
    overhead_pools: tuple[int, int] = (256, 2048),
) -> FleetBench:
    """Sweep fleet-wide rates and measure routing-overhead scaling."""
    from repro.serving.fleet import Fleet, LeastOutstandingWorkRouting
    from repro.serving.online import ExeGPTOnlineServer
    from repro.workloads.arrivals import PoissonProcess, attach_arrivals

    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=32)
    task = get_task("S")
    config = REPLAY_CONFIG
    trace = generate_task_trace(task, num_requests=num_requests, seed=0)
    server = ExeGPTOnlineServer(engine.simulator, config)

    def sustained(result) -> bool:
        return (
            result.completed == result.offered
            and result.latency_percentile(99) <= slo_bound_s
        )

    # Warm the placement/context memos outside any comparison.
    server.serve(attach_arrivals(trace, PoissonProcess(rates[0]), seed=1))

    single_qps = 0.0
    fleet_qps = 0.0
    fleet = Fleet.homogeneous(server, replicas, routing="jsq")
    for rate in rates:
        online = attach_arrivals(trace, PoissonProcess(rate), seed=1)
        if sustained(server.serve(online)):
            single_qps = max(single_qps, rate)
        if sustained(fleet.serve(online).fleet):
            fleet_qps = max(fleet_qps, rate)

    # Routing-overhead scaling: per-decision cost of the column-reducing
    # policy at two pool sizes (same fleet size, same offered rate).
    route_us: list[float] = []
    for pool_size in overhead_pools:
        big_trace = generate_task_trace(task, num_requests=pool_size, seed=0)
        online = attach_arrivals(big_trace, PoissonProcess(rates[-1]), seed=1)
        timed: RoutingPolicy = _TimedRouting(LeastOutstandingWorkRouting())
        Fleet.homogeneous(server, replicas, routing=timed).serve(online)
        route_us.append(timed.us_per_call)

    pool_ratio = overhead_pools[1] / overhead_pools[0]
    return FleetBench(
        replicas=replicas,
        routing="jsq",
        rates=tuple(rates),
        slo_bound_s=slo_bound_s,
        single_qps=single_qps,
        fleet_qps=fleet_qps,
        capacity_scaling=(
            fleet_qps / single_qps if single_qps > 0 else float("inf")
        ),
        small_pool=overhead_pools[0],
        large_pool=overhead_pools[1],
        route_us_small=route_us[0],
        route_us_large=route_us[1],
        routing_overhead_ratio=(
            route_us[1] / route_us[0] if route_us[0] > 0 else float("inf")
        ),
        pool_ratio=pool_ratio,
    )


@dataclass
class EventCoreBench:
    """The batched discrete-event serving core vs the stepped reference.

    Three measurements back the event core:

    * **Parity** -- every (driver, routing) pair serves the same small
      arrival-stamped trace through a 2-replica fleet under both cores;
      the per-request records and replica assignments must agree bit for
      bit (``bit_identical``).
    * **Loop overhead** -- a probe-replica fleet (trivial constant-time
      replicas) isolates the loop itself: wall time of ingest + event
      pick + routing for ``loop_requests`` arrivals over
      ``loop_replicas`` replicas, stepped vs event.
    * **Million-request sweep** -- a ``sweep_requests``-request pool built
      straight from arrays is served by a ``sweep_replicas``-wide ExeGPT
      RRA fleet under JSQ routing through the event core; the wall time
      is the headline number (seconds, not minutes).

    Attributes:
        parity_cases: (driver, routing) pairs compared.
        bit_identical: Every pair's records and assignments matched.
        loop_requests / loop_replicas: Size of the loop-overhead run.
        stepped_loop_s / event_loop_s: Loop-overhead wall times.
        loop_speedup: Stepped over event loop time.
        sweep_requests / sweep_replicas / sweep_routing: Sweep shape.
        sweep_rate_qps: Offered fleet-wide arrival rate.
        sweep_s: Wall time of the event-core sweep.
        sweep_completed / sweep_rejected: Request outcomes of the sweep.
        sweep_makespan_s: Simulated makespan of the sweep.
    """

    parity_cases: int
    bit_identical: bool
    loop_requests: int
    loop_replicas: int
    stepped_loop_s: float
    event_loop_s: float
    loop_speedup: float
    sweep_requests: int
    sweep_replicas: int
    sweep_routing: str
    sweep_rate_qps: float
    sweep_s: float
    sweep_completed: int
    sweep_rejected: int
    sweep_makespan_s: float


def bench_event_core(
    parity_requests: int = 48,
    loop_requests: int = 200_000,
    loop_replicas: int = 16,
    sweep_requests: int = 1_000_000,
    sweep_replicas: int = 16,
) -> EventCoreBench:
    """Parity, loop overhead and the million-request sweep of the event core."""
    from repro.baselines.orca import Orca
    from repro.baselines.vllm import Vllm
    from repro.engine.pool import EMPTY_IDS, RequestPool
    from repro.serving.fleet import Fleet
    from repro.serving.online import ExeGPTOnlineServer, OnlineServer
    from repro.serving.online import ContinuousBatchingOnlineServer
    from repro.workloads.arrivals import PoissonProcess, attach_arrivals
    from repro.workloads.synthetic import sample_correlated_lengths

    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=128)
    task = get_task("S")

    # -- parity: every driver x routing, stepped vs event, bit for bit ----------
    def drivers():
        for kind in ("orca", "vllm"):
            cls = Orca if kind == "orca" else Vllm
            system = cls(
                profile=engine.profile,
                input_distribution=engine.input_distribution,
                output_distribution=engine.output_distribution,
            )
            yield ContinuousBatchingOnlineServer(system=system, batch_size=8)
        yield ExeGPTOnlineServer(
            engine.simulator,
            ScheduleConfig(
                policy=SchedulePolicy.RRA, encode_batch=8, decode_iterations=4
            ),
        )
        yield ExeGPTOnlineServer(
            engine.simulator,
            ScheduleConfig(
                policy=SchedulePolicy.WAA_C, encode_batch=8, micro_batches=2
            ),
        )

    parity_trace = attach_arrivals(
        generate_task_trace(task, num_requests=parity_requests, seed=0),
        PoissonProcess(8.0),
        seed=1,
    )
    cases = 0
    bit_identical = True
    for server in drivers():
        for routing in ("round-robin", "jsq", "least-outstanding-work"):
            fleet = Fleet.homogeneous(server, 2, routing=routing)
            stepped = fleet.serve(parity_trace, core="stepped")
            event = fleet.serve(parity_trace, core="event")
            cases += 1
            bit_identical = bit_identical and (
                event.fleet.records == stepped.fleet.records
                and np.array_equal(event.assignments, stepped.assignments)
            )

    # -- loop overhead: probe replicas isolate ingest/event-pick/routing -------
    class _ProbeReplica(OnlineServer):
        """Batch-serving replica with trivial per-iterate cost, so the loop
        itself (ingest, event pick, routing) dominates the measurement."""

        def __init__(self, service_s: float, batch: int, name="probe"):
            super().__init__(name=name, max_queue=1 << 30)
            self.service_s = service_s
            self.batch = batch

        def clone(self, name=None):
            return _ProbeReplica(self.service_s, self.batch, name or self.name)

        def service_rate(self) -> float:
            return self.batch / self.service_s

        def _reset(self, timeline, pool) -> None:
            self._active = EMPTY_IDS

        def _busy(self) -> bool:
            return False

        def _iterate(self, clock: float) -> float:
            for _ in range(min(self.batch, len(self._queue))):
                self._queue.popleft()
            return clock + self.service_s

        def resolve_records(self, records) -> None:
            pass

    loop_rate = 1000.0
    probe_batch = 256
    # Offered at 2x the probe fleet's service capacity, so arrivals pile up
    # into large ingest batches while every replica stays busy.
    probe_service_s = 2.0 * loop_replicas * probe_batch / loop_rate
    loop_arrivals = PoissonProcess(loop_rate).arrival_times(loop_requests, seed=2)
    ones = np.ones(loop_requests, dtype=np.int64)
    loop_times = {}
    for core in ("stepped", "event"):
        probe = _ProbeReplica(probe_service_s, probe_batch)
        fleet = Fleet.homogeneous(probe, loop_replicas, routing="round-robin")
        pool = RequestPool.from_arrays(ones * 8, ones * 4, loop_arrivals)
        start = time.perf_counter()
        fleet.serve_pool(pool, core=core)
        loop_times[core] = time.perf_counter() - start

    # -- the million-request sweep ----------------------------------------------
    rng = np.random.default_rng(7)
    inputs, outputs = sample_correlated_lengths(
        engine.input_distribution,
        engine.output_distribution,
        sweep_requests,
        0.0,
        rng,
    )
    # A TP-maximized single-stage RRA schedule: one pipeline stage means a
    # handful of engine tasks per cycle, so the sweep's wall time measures
    # the serving loop and pool management, not pipeline task emission.
    # The large encode batch / decode run amortize the fixed per-cycle cost
    # (pricing, commit, adjuster) over thousands of requests per cycle.
    sweep_config = ScheduleConfig(
        policy=SchedulePolicy.RRA,
        encode_batch=2048,
        decode_iterations=128,
        tensor_parallel=TensorParallelConfig(degree=4, num_gpus=4),
    )
    per_replica_qps = engine.simulator.estimate(
        sweep_config
    ).throughput_seq_per_s
    # Offer just under the fleet's aggregate capacity: queues stay populated
    # (large ingest windows) without tripping the 4096-deep rejection bound.
    sweep_rate = 0.95 * per_replica_qps * sweep_replicas
    sweep_arrivals = PoissonProcess(sweep_rate).arrival_times(
        sweep_requests, seed=3
    )
    sweep_pool = RequestPool.from_arrays(inputs, outputs, sweep_arrivals)
    server = ExeGPTOnlineServer(
        engine.simulator, sweep_config, max_queue=4096
    )
    sweep_fleet = Fleet.homogeneous(server, sweep_replicas, routing="jsq")
    start = time.perf_counter()
    result = sweep_fleet.serve_pool(sweep_pool, core="event")
    sweep_s = time.perf_counter() - start

    return EventCoreBench(
        parity_cases=cases,
        bit_identical=bit_identical,
        loop_requests=loop_requests,
        loop_replicas=loop_replicas,
        stepped_loop_s=loop_times["stepped"],
        event_loop_s=loop_times["event"],
        loop_speedup=(
            loop_times["stepped"] / loop_times["event"]
            if loop_times["event"] > 0
            else float("inf")
        ),
        sweep_requests=sweep_requests,
        sweep_replicas=sweep_replicas,
        sweep_routing="jsq",
        sweep_rate_qps=sweep_rate,
        sweep_s=sweep_s,
        sweep_completed=result.completed,
        sweep_rejected=result.rejected,
        sweep_makespan_s=result.makespan_s,
    )


@dataclass
class ChaosBench:
    """Fault-injection overhead on the large-pool fleet probe.

    Three serves of the same arrival-stamped pool through the same ExeGPT
    RRA fleet:

    * **fault-free** -- no fault plane at all (the reference wall time),
    * **zero-fault** -- a fault plane installed but scheduling nothing
      (must be bit-identical to fault-free: same records, same
      assignments; its wall-time ratio is the cost of merely carrying the
      plane),
    * **chaos** -- a seeded ``FaultSchedule.flap`` crash/restart process
      sized from the fault-free makespan plus a ``LoadSheddingPolicy``,
      exercising admit + reclaim + requeue + reroute at scale.  Served
      twice: once on the batched chaos path (``admit_batch`` window
      decisions, fault-masked ``select_batch``, batched crash epilogue)
      and once with ``batched_admission=False`` (the historical per-id
      fallback), which must agree bit for bit.

    Conservation (offered == completed + rejected + shed) is checked on
    the chaos run and recorded.

    Attributes:
        requests / replicas / routing: Probe shape.
        fault_free_s / zero_fault_s / chaos_s: Wall times of the serves
            (``chaos_s`` is the batched chaos path).
        chaos_fallback_s: Wall time of the same chaos serve on the per-id
            fallback path.
        zero_fault_overhead: ``zero_fault_s / fault_free_s`` (the parity
            path's tax; must stay near 1.0).
        chaos_overhead: ``chaos_s / fault_free_s`` (the batched chaos
            path's tax over fault-free; was ~17x on the per-id path).
        batched_speedup: ``chaos_fallback_s / chaos_s``.
        zero_fault_bit_identical: Zero-fault run matched fault-free bit
            for bit.
        batched_bit_identical: Batched chaos run matched the per-id
            fallback bit for bit (records and assignments).
        crashes / requeued: Fault-plane totals of the chaos run.
        completed / rejected / shed: Outcomes of the chaos run.
        conserved: Conservation held on the chaos run.
    """

    requests: int
    replicas: int
    routing: str
    fault_free_s: float
    zero_fault_s: float
    chaos_s: float
    chaos_fallback_s: float
    zero_fault_overhead: float
    chaos_overhead: float
    batched_speedup: float
    zero_fault_bit_identical: bool
    batched_bit_identical: bool
    crashes: int
    requeued: int
    completed: int
    rejected: int
    shed: int
    conserved: bool


def bench_chaos_sweep(
    requests: int = 200_000, replicas: int = 16
) -> ChaosBench:
    """Time the fleet probe fault-free, with an inert fault plane, and
    under a seeded crash/restart flap with load shedding -- the last on
    both the batched chaos path and the per-id fallback."""
    from repro.engine.pool import RequestPool
    from repro.serving.faults import FaultSchedule, LoadSheddingPolicy
    from repro.serving.fleet import Fleet
    from repro.serving.online import ExeGPTOnlineServer
    from repro.workloads.arrivals import PoissonProcess
    from repro.workloads.synthetic import sample_correlated_lengths

    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=128)
    rng = np.random.default_rng(11)
    inputs, outputs = sample_correlated_lengths(
        engine.input_distribution,
        engine.output_distribution,
        requests,
        0.0,
        rng,
    )
    # The same TP-maximized single-stage RRA shape as the event-core sweep:
    # per-cycle costs amortized, wall time dominated by the serving loop --
    # exactly where the fault plane's clamps and checks live.
    config = ScheduleConfig(
        policy=SchedulePolicy.RRA,
        encode_batch=2048,
        decode_iterations=128,
        tensor_parallel=TensorParallelConfig(degree=4, num_gpus=4),
    )
    per_replica_seq_per_s = engine.simulator.estimate(config).throughput_seq_per_s
    rate = 0.95 * per_replica_seq_per_s * replicas
    arrivals = PoissonProcess(rate).arrival_times(requests, seed=5)
    pool = RequestPool.from_arrays(inputs, outputs, arrivals)
    server = ExeGPTOnlineServer(engine.simulator, config, max_queue=4096)

    def timed(fleet):
        start = time.perf_counter()
        result = fleet.serve_pool(pool, core="event")
        return time.perf_counter() - start, result

    fault_free_s, plain = timed(
        Fleet.homogeneous(server, replicas, routing="jsq")
    )
    zero_fault_s, zero = timed(
        Fleet.homogeneous(
            server, replicas, routing="jsq", faults=FaultSchedule()
        )
    )
    bit_identical = (
        zero.fleet.records == plain.fleet.records
        and np.array_equal(zero.assignments, plain.assignments)
    )

    # Flap sized from the measured fault-free makespan: each replica
    # crashes ~4 times, is down ~10% of a between-crash interval, and
    # warms briefly on restart.
    makespan = plain.makespan_s
    faults = FaultSchedule.flap(
        replicas,
        mtbf_s=makespan / 4.0,
        mttr_s=makespan / 40.0,
        horizon_s=makespan,
        seed=13,
        warmup_s=makespan / 100.0,
    )
    # Shed arrivals predicted to wait longer than the drain time of two
    # full admission queues -- deep enough that steady state admits,
    # shallow enough that crash-window backlogs shed a low single-digit
    # fraction of the offered load.
    max_wait_s = 8192.0 / per_replica_seq_per_s
    chaos_s, chaos = timed(
        Fleet.homogeneous(
            server, replicas, routing="jsq", faults=faults,
            admission=LoadSheddingPolicy(max_wait_s=max_wait_s),
        )
    )
    chaos_fallback_s, chaos_fallback = timed(
        Fleet.homogeneous(
            server, replicas, routing="jsq", faults=faults,
            admission=LoadSheddingPolicy(max_wait_s=max_wait_s),
            batched_admission=False,
        )
    )
    batched_bit_identical = (
        chaos.fleet.records == chaos_fallback.fleet.records
        and np.array_equal(chaos.assignments, chaos_fallback.assignments)
    )
    return ChaosBench(
        requests=requests,
        replicas=replicas,
        routing="jsq",
        fault_free_s=fault_free_s,
        zero_fault_s=zero_fault_s,
        chaos_s=chaos_s,
        chaos_fallback_s=chaos_fallback_s,
        zero_fault_overhead=(
            zero_fault_s / fault_free_s if fault_free_s > 0 else float("inf")
        ),
        chaos_overhead=(
            chaos_s / fault_free_s if fault_free_s > 0 else float("inf")
        ),
        batched_speedup=(
            chaos_fallback_s / chaos_s if chaos_s > 0 else float("inf")
        ),
        zero_fault_bit_identical=bit_identical,
        batched_bit_identical=batched_bit_identical,
        crashes=int(chaos.crashes.sum()),
        requeued=int(chaos.requeued.sum()),
        completed=chaos.completed,
        rejected=chaos.rejected,
        shed=chaos.shed,
        conserved=chaos.fleet.conserved,
    )


@dataclass
class CampaignBench:
    """Campaign fan-out: multiprocess speedup, bit parity, resume cost.

    One >= 27-cell online campaign (OPT-13B/S: 3 scenarios x 3 fleet sizes
    x 3 routing policies) runs three ways against fresh trace stores:
    serially, with ``workers``-wide process fan-out, and -- after deleting
    a third of the parallel store's trace files -- as a resume that may
    only execute the missing cells.  A final warm run must be pure loads.

    Attributes:
        cells: Campaign size.
        workers: Fan-out width of the parallel and resume runs.
        serial_s: Single-process wall time (fresh store).
        parallel_s: ``workers``-wide wall time (fresh store).
        speedup: ``serial_s / parallel_s``.
        bit_identical: Serial, parallel and resumed stores hold canonically
            identical trace documents for every cell.
        resume_deleted: Trace files deleted before the resume run.
        resume_executed: Cells the resume run actually simulated.
        resume_loaded: Cells the resume run satisfied from the store.
        resume_only_missing: The resume executed exactly the deleted cells.
        resume_s: Resume-run wall time.
        warm_load_s: Wall time of the final all-cache-hit run (pure loads).
    """

    cells: int
    workers: int
    serial_s: float
    parallel_s: float
    speedup: float
    bit_identical: bool
    resume_deleted: int
    resume_executed: int
    resume_loaded: int
    resume_only_missing: bool
    resume_s: float
    warm_load_s: float


def campaign_fanout_grid():
    """The 27-cell campaign the fan-out acceptance numbers refer to."""
    from repro.campaign.spec import CampaignSpec

    return CampaignSpec.online_grid(
        "bench-fanout",
        models=("OPT-13B",),
        tasks=("S",),
        systems=("exegpt",),
        scenarios=("steady", "bursty", "diurnal"),
        replicas=(1, 2, 4),
        routings=("round-robin", "jsq", "least-outstanding-work"),
        slo_p99_s=15.0,
        per_replica_rates=(2.0, 4.0),
        num_requests=96,
        max_encode_batch=16,
        max_queue=256,
    )


def bench_campaign_fanout(workers: int = 4) -> CampaignBench:
    """Time the campaign serial vs fanned out, then resume and warm-load."""
    import tempfile

    from repro.campaign.runner import CampaignRunner, execute_cell
    from repro.campaign.spec import canonical_json
    from repro.campaign.store import TraceStore

    spec = campaign_fanout_grid()

    # Warm the per-process caches (engine profile sweep, schedule search)
    # in the parent: forked workers inherit them, so neither timed run is
    # charged for one-time costs the other skipped.
    execute_cell(spec.cells[0])

    def docs(result) -> dict[str, str]:
        return {
            cell.content_hash(): canonical_json(result.trace_of(cell))
            for cell in spec
        }

    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        serial = CampaignRunner(store=TraceStore(Path(tmp) / "ser")).run(spec)
        serial_s = time.perf_counter() - start

        parallel_store = TraceStore(Path(tmp) / "par")
        start = time.perf_counter()
        parallel = CampaignRunner(store=parallel_store, workers=workers).run(spec)
        parallel_s = time.perf_counter() - start

        victims = spec.hashes()[::3]
        for cell_hash in victims:
            parallel_store.delete(cell_hash)
        resume_runner = CampaignRunner(store=parallel_store, workers=workers)
        start = time.perf_counter()
        resumed = resume_runner.run(spec)
        resume_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = resume_runner.run(spec)
        warm_load_s = time.perf_counter() - start

        reference = docs(serial)
        bit_identical = (
            reference == docs(parallel)
            and reference == docs(resumed)
            and reference == docs(warm)
        )
        resume_only_missing = (
            sorted(resumed.executed) == sorted(victims) and warm.executed == ()
        )

    return CampaignBench(
        cells=len(spec),
        workers=workers,
        serial_s=serial_s,
        parallel_s=parallel_s,
        speedup=serial_s / parallel_s if parallel_s > 0 else float("inf"),
        bit_identical=bit_identical,
        resume_deleted=len(victims),
        resume_executed=len(resumed.executed),
        resume_loaded=len(resumed.loaded),
        resume_only_missing=resume_only_missing,
        resume_s=resume_s,
        warm_load_s=warm_load_s,
    )


@dataclass
class CyclePricingBench:
    """Columnar plan construction + memoized pricing on the serving hot loop.

    Two measurements back the cycle-pricing stack:

    * **Crossover micro-bench** -- ``price_columns`` is timed through the
      scalar loop and the batched grouped lookups over mixed encode/decode
      plans of ``crossover_sizes`` items; ``measured_crossover`` is the
      smallest size where the batched path wins, the empirical basis of
      :data:`repro.engine.execution.SMALL_PLAN_ITEMS`.
    * **200k x 16-replica probe** -- the event-core ExeGPT RRA JSQ sweep
      (the :class:`EventCoreBench` headline shape at 200k requests) served
      twice: with the historical plan-per-cycle path (``plan_templates``
      and ``pricing_cache`` off) and with the columnar fast paths (the
      defaults).  Records and replica assignments must agree bit for bit;
      the wall-time ratio and the engines' pricing-cache hit rate are the
      tracked numbers (>= 1.3x is the regression floor).

    Attributes:
        crossover_sizes: Plan sizes the micro-bench timed.
        crossover_scalar_us / crossover_batched_us: Per-size pricing cost.
        measured_crossover: Smallest size where batched pricing won.
        configured_small_plan_items: The shipped crossover constant.
        requests / replicas / routing: Probe shape.
        baseline_s / fast_s: Wall times without / with the fast paths.
        baseline_us_per_request / fast_us_per_request: Same, per request.
        speedup: ``baseline_s / fast_s``.
        bit_identical: Fast-path records + assignments match the baseline.
        cache_hits / cache_misses: Pricing-cache counters summed over the
            fast run's replica engines.
        cache_hit_rate: Hits over probes.
    """

    crossover_sizes: list[int]
    crossover_scalar_us: list[float]
    crossover_batched_us: list[float]
    measured_crossover: int
    configured_small_plan_items: int
    requests: int
    replicas: int
    routing: str
    baseline_s: float
    fast_s: float
    baseline_us_per_request: float
    fast_us_per_request: float
    speedup: float
    bit_identical: bool
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float


def bench_cycle_pricing(
    requests: int = 200_000,
    replicas: int = 16,
    crossover_reps: int = 2000,
) -> CyclePricingBench:
    """The crossover micro-bench plus the 200k-request fast-path probe."""
    from repro.engine.execution import (
        KIND_DECODE,
        KIND_ENCODE,
        SMALL_PLAN_ITEMS,
        PlanColumns,
        price_columns,
    )
    from repro.engine.pool import RequestPool
    from repro.serving.fleet import Fleet
    from repro.serving.online import ExeGPTOnlineServer
    from repro.workloads.arrivals import PoissonProcess
    from repro.workloads.synthetic import sample_correlated_lengths

    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=128)
    profile = engine.simulator.profile

    # -- scalar/batched crossover over mixed encode/decode plans ---------------
    rng = np.random.default_rng(0)
    sizes = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32]
    scalar_us: list[float] = []
    batched_us: list[float] = []
    for n in sizes:
        cols = PlanColumns(n)
        for i in range(n):
            cols.push(
                KIND_DECODE if i % 2 else KIND_ENCODE,
                40, 4, False,
                float(rng.integers(1, 64)),
                float(rng.integers(8, 512)),
            )
        timed = {}
        # Forcing the crossover to 0 / beyond-n pins each pricing mode.
        for mode, small in (("batched", 0), ("scalar", n + 1)):
            start = time.perf_counter()
            for _ in range(crossover_reps):
                price_columns(
                    profile, cols, 0.0, batched=True, cache=None,
                    small_plan_items=small,
                )
            timed[mode] = (time.perf_counter() - start) / crossover_reps * 1e6
        scalar_us.append(timed["scalar"])
        batched_us.append(timed["batched"])
    measured = next(
        (n for n, s, b in zip(sizes, scalar_us, batched_us) if b <= s),
        sizes[-1],
    )

    # -- the 200k x 16-replica probe, fast paths off vs on ----------------------
    rng = np.random.default_rng(7)
    inputs, outputs = sample_correlated_lengths(
        engine.input_distribution, engine.output_distribution, requests, 0.0, rng
    )
    config = ScheduleConfig(
        policy=SchedulePolicy.RRA,
        encode_batch=2048,
        decode_iterations=128,
        tensor_parallel=TensorParallelConfig(degree=4, num_gpus=4),
    )
    rate = 0.95 * engine.simulator.estimate(config).throughput_seq_per_s * replicas
    arrivals = PoissonProcess(rate).arrival_times(requests, seed=3)
    pool = RequestPool.from_arrays(inputs, outputs, arrivals)

    def serve(plan_templates: bool, pricing_cache: bool):
        server = ExeGPTOnlineServer(
            engine.simulator,
            config,
            max_queue=4096,
            plan_templates=plan_templates,
            pricing_cache=pricing_cache,
        )
        fleet = Fleet.homogeneous(server, replicas, routing="jsq")
        start = time.perf_counter()
        result = fleet.serve_pool(pool, core="event")
        elapsed = time.perf_counter() - start
        return fleet, result, elapsed

    _, base_result, baseline_s = serve(plan_templates=False, pricing_cache=False)
    fast_fleet, fast_result, fast_s = serve(plan_templates=True, pricing_cache=True)

    bit_identical = bool(
        fast_result.fleet.records == base_result.fleet.records
        and np.array_equal(fast_result.assignments, base_result.assignments)
    )
    hits = misses = 0
    for replica in fast_fleet.replicas:
        stats = replica._engine.pricing_cache_stats()
        if stats is not None:
            hits += int(stats["hits"])
            misses += int(stats["misses"])

    return CyclePricingBench(
        crossover_sizes=sizes,
        crossover_scalar_us=scalar_us,
        crossover_batched_us=batched_us,
        measured_crossover=measured,
        configured_small_plan_items=SMALL_PLAN_ITEMS,
        requests=requests,
        replicas=replicas,
        routing="jsq",
        baseline_s=baseline_s,
        fast_s=fast_s,
        baseline_us_per_request=1e6 * baseline_s / requests,
        fast_us_per_request=1e6 * fast_s / requests,
        speedup=baseline_s / fast_s if fast_s > 0 else float("inf"),
        bit_identical=bit_identical,
        cache_hits=hits,
        cache_misses=misses,
        cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
    )


def _git_sha() -> str:
    """The repository HEAD commit stamped into trajectory records."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def make_record(
    estimate: EstimateBench,
    search: SearchBench,
    runner: RunnerBench,
    replay: ReplayBench | None = None,
    online: OnlineSweepBench | None = None,
    pool: PoolBench | None = None,
    fleet: FleetBench | None = None,
    event_core: EventCoreBench | None = None,
    chaos: ChaosBench | None = None,
    campaign: CampaignBench | None = None,
    cycle_pricing: CyclePricingBench | None = None,
) -> dict:
    """Assemble one machine-readable trajectory record."""
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "search_space": {
            "model": SEARCH_MODEL,
            "num_gpus": SEARCH_GPUS,
            "task": SEARCH_TASK,
            "bound_s": SEARCH_BOUND_S,
            "points": search.space_points,
        },
        "estimate": estimate.__dict__,
        "search": search.__dict__,
        "runner": runner.__dict__,
    }
    if replay is not None:
        record["replay"] = dict(replay.__dict__)
    if online is not None:
        payload = dict(online.__dict__)
        payload["rates"] = list(payload["rates"])
        record["online_sweep"] = payload
    if pool is not None:
        record["replay_pool"] = dict(pool.__dict__)
    if fleet is not None:
        payload = dict(fleet.__dict__)
        payload["rates"] = list(payload["rates"])
        record["fleet_sweep"] = payload
    if event_core is not None:
        record["event_core"] = dict(event_core.__dict__)
    if chaos is not None:
        record["chaos_sweep"] = dict(chaos.__dict__)
    if campaign is not None:
        record["campaign_fanout"] = dict(campaign.__dict__)
    if cycle_pricing is not None:
        payload = dict(cycle_pricing.__dict__)
        payload["crossover_sizes"] = list(payload["crossover_sizes"])
        payload["crossover_scalar_us"] = list(payload["crossover_scalar_us"])
        payload["crossover_batched_us"] = list(payload["crossover_batched_us"])
        record["cycle_pricing"] = payload
    return record


def write_bench_record(
    estimate: EstimateBench,
    search: SearchBench,
    runner: RunnerBench,
    replay: ReplayBench | None = None,
    online: OnlineSweepBench | None = None,
    pool: PoolBench | None = None,
    fleet: FleetBench | None = None,
    event_core: EventCoreBench | None = None,
    chaos: ChaosBench | None = None,
    campaign: CampaignBench | None = None,
    cycle_pricing: CyclePricingBench | None = None,
) -> dict:
    """Append one record to ``BENCH_search.json`` and return it.

    Only the harness CLI and the CI perf job (``BENCH_RECORD=1``) call this;
    plain test runs measure without touching the committed trajectory file.
    """
    record = make_record(
        estimate, search, runner, replay, online, pool, fleet, event_core,
        chaos, campaign, cycle_pricing,
    )
    doc = {
        "schema": 1,
        "benchmark": "search",
        "pre_pr_baseline": PRE_PR_BASELINE,
        "trajectory": [],
    }
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
            if isinstance(existing.get("trajectory"), list):
                doc["trajectory"] = existing["trajectory"]
        except (json.JSONDecodeError, OSError):
            pass
    doc["trajectory"].append(record)
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    return record


def main() -> None:
    """Run the full harness and print the headline numbers."""
    engine = build_search_engine()
    estimate = bench_estimate(engine)
    search = bench_search(engine, estimate.scalar_ms_per_point)
    runner = bench_runner()
    replay = bench_replay()
    online = bench_online_sweep()
    pool = bench_pool_replay()
    fleet = bench_fleet_sweep()
    event_core = bench_event_core()
    chaos = bench_chaos_sweep()
    campaign = bench_campaign_fanout()
    cycle_pricing = bench_cycle_pricing()
    write_bench_record(
        estimate, search, runner, replay, online, pool, fleet, event_core,
        chaos, campaign, cycle_pricing,
    )
    print(f"estimate: {estimate.scalar_ms_per_point:.2f} ms/pt scalar, "
          f"{estimate.batch_us_per_point:.1f} us/pt batched "
          f"({estimate.speedup:.1f}x, worst rel err {estimate.worst_rel_err:.2e})")
    print(f"branch-and-bound: {search.bnb_scalar_s:.2f} s scalar, "
          f"{search.bnb_batched_s:.2f} s batched ({search.bnb_speedup:.1f}x)")
    print(f"exhaustive ({search.space_points} pts): "
          f"{search.exhaustive_scalar_equiv_s:.1f} s scalar-equivalent, "
          f"{search.exhaustive_batched_s:.2f} s batched "
          f"({search.exhaustive_speedup:.1f}x)")
    print(f"runner: {runner.runner_s:.3f} s for {runner.requests} requests")
    print(f"replay ({replay.policy}, {replay.requests} reqs): "
          f"{replay.scalar_s:.3f} s scalar, {replay.batched_s:.3f} s batched "
          f"({replay.speedup:.1f}x, bit-identical={replay.bit_identical})")
    print(f"online sweep ({len(online.rates)} rates x {online.requests} reqs): "
          f"{online.scalar_s:.3f} s scalar, {online.batched_s:.3f} s batched "
          f"({online.speedup:.1f}x)")
    print(f"pool replay ({pool.policy}, {pool.requests} reqs, "
          f"decode pool ~{pool.decode_pool_target}): "
          f"{pool.list_s:.3f} s list, {pool.columnar_s:.3f} s columnar "
          f"({pool.speedup:.1f}x, bit-identical={pool.bit_identical})")
    print(f"fleet sweep ({fleet.replicas}x {fleet.routing}, "
          f"p99 SLO {fleet.slo_bound_s:g} s): single {fleet.single_qps:g} qps, "
          f"fleet {fleet.fleet_qps:g} qps ({fleet.capacity_scaling:.1f}x); "
          f"routing {fleet.route_us_small:.1f} -> {fleet.route_us_large:.1f} "
          f"us/decision over a {fleet.pool_ratio:.0f}x pool "
          f"({fleet.routing_overhead_ratio:.2f}x)")
    print(f"event core: parity {event_core.parity_cases} cases "
          f"bit-identical={event_core.bit_identical}; loop "
          f"{event_core.stepped_loop_s:.2f} s stepped -> "
          f"{event_core.event_loop_s:.2f} s event "
          f"({event_core.loop_speedup:.1f}x, {event_core.loop_requests} reqs "
          f"x {event_core.loop_replicas} replicas); "
          f"{event_core.sweep_requests}-request {event_core.sweep_replicas}"
          f"-replica {event_core.sweep_routing} sweep in "
          f"{event_core.sweep_s:.1f} s "
          f"({event_core.sweep_completed} completed, "
          f"{event_core.sweep_rejected} rejected, makespan "
          f"{event_core.sweep_makespan_s:.0f} s)")
    print(f"chaos sweep ({chaos.requests} reqs x {chaos.replicas} replicas): "
          f"{chaos.fault_free_s:.1f} s fault-free, "
          f"{chaos.zero_fault_s:.1f} s zero-fault "
          f"({chaos.zero_fault_overhead:.2f}x, "
          f"bit-identical={chaos.zero_fault_bit_identical}), "
          f"{chaos.chaos_s:.1f} s under {chaos.crashes} crashes "
          f"({chaos.chaos_overhead:.2f}x, {chaos.requeued} requeued, "
          f"conserved={chaos.conserved})")
    print(f"campaign fan-out ({campaign.cells} cells): "
          f"{campaign.serial_s:.2f} s serial, {campaign.parallel_s:.2f} s on "
          f"{campaign.workers} workers ({campaign.speedup:.1f}x, "
          f"bit-identical={campaign.bit_identical}); resume after deleting "
          f"{campaign.resume_deleted} traces executed "
          f"{campaign.resume_executed} cells in {campaign.resume_s:.2f} s "
          f"(only-missing={campaign.resume_only_missing}); warm load "
          f"{campaign.warm_load_s:.3f} s")
    print(f"cycle pricing: crossover at {cycle_pricing.measured_crossover} "
          f"items (configured {cycle_pricing.configured_small_plan_items}); "
          f"{cycle_pricing.requests} reqs x {cycle_pricing.replicas} replicas "
          f"{cycle_pricing.baseline_us_per_request:.2f} -> "
          f"{cycle_pricing.fast_us_per_request:.2f} us/request "
          f"({cycle_pricing.speedup:.2f}x, "
          f"bit-identical={cycle_pricing.bit_identical}, cache hit rate "
          f"{cycle_pricing.cache_hit_rate:.1%})")
    print(f"wrote {BENCH_PATH}")


if __name__ == "__main__":
    main()

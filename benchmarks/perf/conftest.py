"""Fixtures and markers for the perf-regression micro-benchmarks.

Everything in this directory is marked ``perf`` (in addition to the ``slow``
marker the parent ``benchmarks/`` conftest applies), so the harness can be
run on its own with ``pytest benchmarks/perf -m perf``.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from bench_helpers import run_once  # noqa: F401,E402  (re-export: sibling
# benchmark modules import it via the ambiguous plain name `conftest`, and
# either conftest module can win that import depending on collection order)

_PERF_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    for item in items:
        if _PERF_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.perf)

"""Perf-regression tests: the vectorized engine must stay fast.

One module-scoped harness run produces every measurement; the tests assert
the same-run speedups of the vectorized engine over the scalar reference
path (machine-independent, unlike absolute wall times) plus scalar/batched
parity.  With ``BENCH_RECORD=1`` in the environment (set by the nightly CI
perf job) the record is also appended to ``BENCH_search.json``, so the perf
trajectory is tracked across PRs without plain test runs dirtying the
committed file.
"""

from __future__ import annotations

import os

import pytest

from harness import (
    BENCH_PATH,
    bench_campaign_fanout,
    bench_chaos_sweep,
    bench_cycle_pricing,
    bench_estimate,
    bench_event_core,
    bench_fleet_sweep,
    bench_online_sweep,
    bench_pool_replay,
    bench_replay,
    bench_runner,
    bench_search,
    build_search_engine,
    make_record,
    write_bench_record,
)


@pytest.fixture(scope="module")
def bench_record():
    engine = build_search_engine()
    estimate = bench_estimate(engine)
    search = bench_search(engine, estimate.scalar_ms_per_point)
    runner = bench_runner()
    replay = bench_replay()
    online = bench_online_sweep()
    pool = bench_pool_replay()
    fleet = bench_fleet_sweep()
    event_core = bench_event_core()
    chaos = bench_chaos_sweep()
    campaign = bench_campaign_fanout()
    cycle_pricing = bench_cycle_pricing()
    if os.environ.get("BENCH_RECORD") == "1":
        record = write_bench_record(
            estimate, search, runner, replay, online, pool, fleet, event_core,
            chaos, campaign, cycle_pricing,
        )
    else:
        record = make_record(
            estimate, search, runner, replay, online, pool, fleet, event_core,
            chaos, campaign, cycle_pricing,
        )
    return {
        "estimate": estimate,
        "search": search,
        "runner": runner,
        "replay": replay,
        "online": online,
        "pool": pool,
        "fleet": fleet,
        "event_core": event_core,
        "chaos": chaos,
        "campaign": campaign,
        "cycle_pricing": cycle_pricing,
        "record": record,
    }


def test_estimate_batch_parity_and_speedup(bench_record):
    estimate = bench_record["estimate"]
    assert estimate.worst_rel_err < 1e-9
    # Batched estimation amortizes per-point Python overhead; anything below
    # ~10x means the vectorized path degenerated to per-point work.
    assert estimate.speedup >= 10.0


def test_exhaustive_search_speedup(bench_record):
    search = bench_record["search"]
    # Acceptance bar: the 65,536-point exhaustive grid must be >= 10x faster
    # than evaluating it through the scalar reference path.
    assert search.space_points >= 65536
    assert search.exhaustive_speedup >= 10.0
    assert search.best_throughput_matches


def test_branch_and_bound_speedup(bench_record):
    search = bench_record["search"]
    # The batched evaluator must keep branch-and-bound well ahead of the
    # scalar path (the pre-PR baseline was 8.2 s; batched runs in ~1 s).
    assert search.bnb_speedup >= 3.0
    assert search.bnb_batched_s < search.exhaustive_batched_s * 2.0


def test_runner_replay_recorded(bench_record):
    runner = bench_record["runner"]
    assert runner.throughput_seq_per_s > 0
    # Replaying 512 requests is milliseconds of work; a minute means the
    # runner hot path regressed catastrophically.
    assert runner.runner_s < 60.0


def test_replay_batched_pricing_speedup_and_parity(bench_record):
    replay = bench_record["replay"]
    # The execution engine must price replays through the batched profile
    # lookups: bit-identical results, and on a pipeline-parallel schedule
    # (stages x micro-batches work items per cycle) clearly faster than the
    # per-task scalar path (~2x measured; 1.3x is the regression floor).
    assert replay.bit_identical
    assert replay.speedup >= 1.3


def test_online_sweep_batched_pricing_speedup(bench_record):
    online = bench_record["online"]
    # The online rate sweep prices each cycle's iteration graph in batched
    # lookups; the sweep's admission/completion decisions are
    # pricing-independent, so both paths must serve identical request
    # counts while the batched path stays well ahead.
    assert online.completions_match
    assert online.speedup >= 1.3


def test_pool_replay_speedup_and_parity(bench_record):
    pool = bench_record["pool"]
    # The columnar request pool must replace the per-object list scans
    # without changing a single task: identical task graphs and results,
    # and a clear win on the paper-scale RRA replay (decode pool of several
    # hundred requests; ~2x measured, 1.3x is the regression floor).
    assert pool.bit_identical
    assert pool.decode_pool_target >= 128
    assert pool.speedup >= 1.3


def test_fleet_capacity_scaling(bench_record):
    fleet = bench_record["fleet"]
    # A 4-replica JSQ fleet must sustain a strictly higher fleet-wide rate
    # than one replica of the same server under the same SLO.
    assert fleet.replicas >= 4
    assert fleet.single_qps > 0
    assert fleet.fleet_qps > fleet.single_qps


def test_fleet_routing_overhead_sublinear(bench_record):
    fleet = bench_record["fleet"]
    # Routing prices outstanding work through column reductions over each
    # replica's own id slices (queue + in-flight batch), never the whole
    # pool, so the per-decision cost must stay sub-linear in pool size: an
    # 8x pool may at most double it (in practice it stays ~flat).
    assert fleet.pool_ratio >= 8.0
    assert fleet.route_us_small > 0
    assert fleet.routing_overhead_ratio < fleet.pool_ratio / 2.0


def test_event_core_parity_and_throughput(bench_record):
    event_core = bench_record["event_core"]
    # The event core is only useful if it is a drop-in replacement: every
    # driver x routing pairing must reproduce the stepped loop's records bit
    # for bit, and batching the arrival windows must actually pay off on a
    # saturated fleet (3.8x measured; 1.5x is the regression floor).
    assert event_core.parity_cases == 12
    assert event_core.bit_identical
    assert event_core.loop_speedup >= 1.5
    # The headline: a million-request 16-replica sweep finishes in seconds
    # (sub-minute is the machine-independent regression bar) with every
    # request accounted for.
    assert event_core.sweep_requests >= 1_000_000
    assert event_core.sweep_replicas >= 16
    assert event_core.sweep_completed + event_core.sweep_rejected \
        == event_core.sweep_requests
    assert event_core.sweep_s < 60.0


def test_chaos_sweep_parity_and_overhead(bench_record):
    chaos = bench_record["chaos"]
    # The fault plane must be free when it schedules nothing: an installed
    # but empty FaultSchedule reproduces the fault-free run bit for bit,
    # and its wall-time tax on the 200k x 16-replica probe stays small
    # (~1.0x measured; 1.5x is the regression bar).
    assert chaos.zero_fault_bit_identical
    assert chaos.zero_fault_overhead < 1.5
    # Under the seeded flap + load shedding the run actually exercised
    # admit + reclaim + reroute, conserved every request, and stayed
    # within sane overhead.  Fault-window arrivals now route through the
    # batched chaos path (admit_batch window decisions, fault-masked
    # select_batch, batched crash epilogue), so the tax over fault-free
    # collapses from the ~17x the per-id fallback paid to low-single-digit
    # (4x is the regression bar).  The fallback stays shipped as the
    # bit-parity reference: the batched run must reproduce it exactly and
    # beat it by >= 3x wall time.
    assert chaos.crashes > 0
    assert chaos.requeued > 0
    assert chaos.conserved
    assert chaos.completed + chaos.rejected + chaos.shed == chaos.requests
    assert chaos.batched_bit_identical
    assert chaos.chaos_overhead < 4.0
    assert chaos.batched_speedup >= 3.0


def test_campaign_fanout_parity_and_resume(bench_record):
    campaign = bench_record["campaign"]
    # The campaign layer's correctness bars are machine-independent: the
    # serial, fanned-out, resumed and warm-loaded runs of the 27-cell grid
    # must hold canonically identical trace documents, and the resume (a
    # third of the trace files deleted) must execute exactly the missing
    # cells -- the final warm run being pure loads.
    assert campaign.cells >= 27
    assert campaign.bit_identical
    assert campaign.resume_deleted == campaign.resume_executed
    assert campaign.resume_loaded == campaign.cells - campaign.resume_deleted
    assert campaign.resume_only_missing


def test_campaign_fanout_speedup(bench_record):
    if len(os.sched_getaffinity(0)) < 4:
        pytest.skip(
            "campaign fan-out speedup needs >= 4 usable CPUs; "
            f"this machine exposes {len(os.sched_getaffinity(0))}"
        )
    campaign = bench_record["campaign"]
    # Acceptance bar: 4-worker fan-out of the 27-cell campaign is >= 3x
    # faster than the serial run (the cells are independent simulations;
    # anything below 3x on 4 CPUs means pickling or cache rebuilds are
    # eating the parallelism).
    assert campaign.workers >= 4
    assert campaign.speedup >= 3.0


def test_cycle_pricing_parity_and_speedup(bench_record):
    pricing = bench_record["cycle_pricing"]
    # The crossover micro-bench must actually bracket the shipped constant:
    # tiny plans stay scalar, large plans go batched, and the measured
    # crossover lands within the swept sizes.
    assert pricing.crossover_scalar_us[0] < pricing.crossover_batched_us[0]
    assert pricing.crossover_batched_us[-1] < pricing.crossover_scalar_us[-1]
    assert pricing.measured_crossover in pricing.crossover_sizes
    # The columnar fast paths (plan templates + pricing cache) must be a
    # free lunch: bit-identical records and assignments on the 200k-request
    # 16-replica probe, with >= 1.3x wall-time improvement (1.87x measured)
    # and a warm pricing cache doing real work.
    assert pricing.bit_identical
    assert pricing.speedup >= 1.3
    assert pricing.cache_hits > 0
    assert 0.0 < pricing.cache_hit_rate <= 1.0


def test_bench_record_complete(bench_record):
    record = bench_record["record"]
    assert record["search"]["space_points"] >= 65536
    assert set(record) >= {
        "timestamp", "git_sha", "host", "search_space", "estimate", "search",
        "runner", "replay", "online_sweep", "replay_pool", "fleet_sweep",
        "event_core", "chaos_sweep", "campaign_fanout", "cycle_pricing",
    }
    assert set(record["chaos_sweep"]) >= {
        "chaos_overhead", "chaos_fallback_s", "batched_speedup",
        "batched_bit_identical",
    }
    assert record["git_sha"] == "unknown" or len(record["git_sha"]) == 40
    # The committed trajectory file exists; it is only appended to when
    # recording is explicitly enabled (BENCH_RECORD=1 or the harness CLI).
    assert BENCH_PATH.exists()

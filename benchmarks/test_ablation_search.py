"""Ablation: search method (branch-and-bound vs exhaustive vs random).

Quantifies the value of the monotonic branch-and-bound algorithm against a
dense grid and uniform random sampling on the same search space.
"""

from conftest import run_once

from repro.core.config import LatencyConstraint
from repro.core.exegpt import ExeGPT
from repro.workloads.tasks import get_task


def _search_all_methods():
    engine = ExeGPT.for_task("OPT-13B", "S", max_encode_batch=32)
    constraint = LatencyConstraint(bound_s=9.0, target_length=get_task("S").output_p99)
    results = {}
    for method in ("branch_and_bound", "exhaustive", "random"):
        results[method] = engine.schedule(constraint, method=method)
    return results


def test_ablation_search_methods(benchmark):
    results = run_once(benchmark, _search_all_methods)
    bnb = results["branch_and_bound"]
    exhaustive = results["exhaustive"]
    random = results["random"]
    benchmark.extra_info["evaluations"] = {
        name: result.evaluations for name, result in results.items()
    }
    benchmark.extra_info["best_throughput"] = {
        name: round(result.best.throughput_seq_per_s, 2) if result.best else 0.0
        for name, result in results.items()
    }
    assert bnb.found and exhaustive.found
    # Branch-and-bound explores a small fraction of the space while matching
    # the exhaustive optimum; random sampling with a similar budget does not
    # reliably do better than branch-and-bound.
    assert bnb.evaluations < 0.5 * exhaustive.evaluations
    assert bnb.best.throughput_seq_per_s >= 0.9 * exhaustive.best.throughput_seq_per_s
    if random.found:
        assert bnb.best.throughput_seq_per_s >= 0.9 * random.best.throughput_seq_per_s

"""Benchmark: regenerate Figure 10 (real-world datasets).

WMT / Alpaca / CNN-like traces with the published length statistics, 10% of
each used to estimate the distribution and the rest for evaluation; ExeGPT's
gain over FT should be at least as large as on the synthetic workloads
because of the long output tail.
"""

from conftest import run_once

from repro.experiments.figure6 import figure6_speedups
from repro.experiments.figure10 import run_figure10


def test_figure10_real_world_datasets(benchmark):
    rows = run_once(
        benchmark,
        run_figure10,
        scenarios=(("OPT-13B", "WMT"), ("OPT-13B", "Alpaca")),
        num_requests=400,
        bounds_subset=(1, 3),
    )
    speedups = figure6_speedups(rows)
    assert speedups
    mean = sum(speedups.values()) / len(speedups)
    benchmark.extra_info["mean_speedup"] = round(mean, 2)
    benchmark.extra_info["paper_mean_speedup"] = 4.4
    assert max(speedups.values()) > 1.2, (
        "ExeGPT should clearly beat FT on long-tailed real-world workloads"
    )

"""Benchmark: regenerate Table 4 (model deployment / re-deployment cost)."""

from conftest import run_once

from repro.experiments.table4 import PAPER_TABLE4, run_table4


def test_table4_deployment_cost(benchmark):
    rows = run_once(benchmark, run_table4)
    by_model = {r["model"].replace("GPT-3 ", "GPT3-"): r for r in rows}
    benchmark.extra_info["measured"] = {
        k: {"dram_s": round(v["dram_s"], 1), "ssd_s": round(v["ssd_s"], 1)}
        for k, v in by_model.items()
    }
    benchmark.extra_info["paper"] = PAPER_TABLE4
    # Trend checks: DRAM < SSD everywhere, costs grow with model size, and
    # every value stays within 3x of the published number.
    dram = [r["dram_s"] for r in rows]
    ssd = [r["ssd_s"] for r in rows]
    assert dram == sorted(dram) and ssd == sorted(ssd)
    for model, published in PAPER_TABLE4.items():
        ours = by_model[model]
        assert ours["dram_s"] < ours["ssd_s"]
        assert 1 / 3 < ours["ssd_s"] / published["ssd_s"] < 3

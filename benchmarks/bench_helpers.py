"""Helpers shared by the benchmark suite's conftest modules.

Lives outside ``conftest.py`` because the benchmark test modules import the
helper by the plain module name (``from conftest import run_once``) and
there are two conftest files (``benchmarks/`` and ``benchmarks/perf/``);
which one wins that import depends on collection order, so both re-export
from here instead of defining anything import-order-sensitive themselves.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

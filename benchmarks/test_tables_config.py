"""Benchmark: regenerate Tables 1-3 (model / cluster / task configurations)."""

from conftest import run_once

from repro.experiments.tables_config import run_table1, run_table2, run_table3


def test_table1_models(benchmark):
    rows = run_once(benchmark, run_table1)
    benchmark.extra_info["num_models"] = len(rows)
    assert len(rows) == 6
    assert {r["layers"] for r in rows} == {48, 40, 80, 96, 120}


def test_table2_clusters(benchmark):
    rows = run_once(benchmark, run_table2)
    clusters = [r for r in rows if not str(r["gpu"]).startswith("deploy:")]
    deployments = [r for r in rows if str(r["gpu"]).startswith("deploy:")]
    benchmark.extra_info["num_deployments"] = len(deployments)
    assert {c["size"] for c in clusters} == {48, 16}
    assert len(deployments) == 6


def test_table3_tasks(benchmark):
    rows = run_once(benchmark, run_table3)
    benchmark.extra_info["num_tasks"] = len(rows)
    assert len(rows) == 5
    assert {r["output_p99"] for r in rows} == {63, 292, 417, 137, 579}

"""Tests for baseline shared machinery (placement, memory caps, batch selection)."""

import pytest

from repro.baselines.base import kv_capacity_bytes, tp_maximized_placement
from repro.baselines.faster_transformer import FasterTransformer
from repro.models.catalog import GPT3_341B, OPT_13B
from repro.hardware.cluster import a40_cluster


class TestTPMaximizedPlacement:
    def test_single_node_is_pure_tensor_parallel(self, tiny_model):
        placement = tp_maximized_placement(tiny_model, a40_cluster(4))
        assert len(placement.stages) == 1
        assert placement.stages[0].tp_degree == 4

    def test_multi_node_uses_pipeline_across_nodes(self):
        placement = tp_maximized_placement(OPT_13B, a40_cluster(16))
        assert len(placement.stages) == 2
        assert all(s.tp_degree == 8 for s in placement.stages)
        placement.validate_layer_totals()

    def test_341b_spans_six_nodes(self):
        placement = tp_maximized_placement(GPT3_341B, a40_cluster(48))
        assert len(placement.stages) == 6


class TestKVCapacity:
    def test_capacity_positive_and_below_total_memory(self, tiny_model, tiny_cluster):
        placement = tp_maximized_placement(tiny_model, tiny_cluster)
        capacity = kv_capacity_bytes(placement)
        total = tiny_cluster.num_gpus * tiny_cluster.gpu.memory_bytes
        assert 0 < capacity < total

    def test_larger_model_leaves_less_room(self):
        cluster = a40_cluster(16)
        small = kv_capacity_bytes(tp_maximized_placement(OPT_13B, cluster))
        large = kv_capacity_bytes(tp_maximized_placement(GPT3_341B, cluster))
        assert large < small


class TestBatchSelection:
    @pytest.fixture(scope="class")
    def ft(self, tiny_profile, short_input_dist, short_output_dist) -> FasterTransformer:
        return FasterTransformer(
            profile=tiny_profile,
            input_distribution=short_input_dist,
            output_distribution=short_output_dist,
        )

    def test_worst_case_latency_grows_with_batch(self, ft):
        assert ft.worst_case_latency(64) > ft.worst_case_latency(4)

    def test_configure_for_bound_monotone(self, ft):
        loose = ft.configure_for_bound(1e9)
        tight = ft.configure_for_bound(ft.worst_case_latency(4) * 1.01)
        assert loose >= tight >= 1

    def test_configure_for_bound_respects_memory(self, ft):
        assert ft.configure_for_bound(1e9) <= ft.memory_limited_batch()

    def test_impossible_bound_returns_one(self, ft):
        assert ft.configure_for_bound(1e-9) == 1

    def test_invalid_bound_rejected(self, ft):
        with pytest.raises(ValueError):
            ft.configure_for_bound(0.0)

"""Tests for the FasterTransformer and DeepSpeed-Inference baselines."""

import pytest

from repro.baselines.deepspeed import DeepSpeedInference
from repro.baselines.faster_transformer import FasterTransformer
from repro.workloads.synthetic import generate_trace_from_distributions


@pytest.fixture(scope="module")
def ft(tiny_profile, short_input_dist, short_output_dist) -> FasterTransformer:
    return FasterTransformer(
        profile=tiny_profile,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
    )


@pytest.fixture(scope="module")
def dsi(tiny_profile, short_input_dist, short_output_dist) -> DeepSpeedInference:
    return DeepSpeedInference(
        profile=tiny_profile,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
    )


@pytest.fixture(scope="module")
def trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=64, seed=2
    )


class TestFasterTransformer:
    def test_all_requests_complete(self, ft, trace):
        result = ft.run(trace, batch_size=16)
        assert result.num_requests == len(trace)
        assert result.total_generated_tokens == trace.total_output_tokens
        assert result.system == "ft"

    def test_latency_uniform_within_batch(self, ft, trace):
        """Without early termination, a batch's requests all finish near the
        end of the batch; short requests finish earlier within it."""
        result = ft.run(trace, batch_size=len(trace))
        assert result.max_latency_s >= result.mean_latency_s

    def test_larger_batch_higher_throughput_higher_latency(self, ft, trace):
        small = ft.run(trace, batch_size=4)
        large = ft.run(trace, batch_size=32)
        assert large.throughput_seq_per_s > small.throughput_seq_per_s
        assert large.max_latency_s > small.max_latency_s

    def test_invalid_batch_rejected(self, ft, trace):
        with pytest.raises(ValueError):
            ft.run(trace, batch_size=0)
        with pytest.raises(ValueError):
            ft.worst_case_latency(0)


class TestDeepSpeedInference:
    def test_runs_and_reports_own_name(self, dsi, trace):
        result = dsi.run(trace, batch_size=16)
        assert result.system == "dsi"
        assert result.num_requests == len(trace)

    def test_hybrid_micro_batching_configured(self, dsi):
        assert dsi.encode_micro_batches >= dsi.decode_micro_batches

    def test_dsi_no_faster_than_ft(self, ft, dsi, trace):
        """The Figure 7 ordering: FT >= DSI (DSI carries extra overhead)."""
        ft_result = ft.run(trace, batch_size=16)
        dsi_result = dsi.run(trace, batch_size=16)
        assert dsi_result.throughput_seq_per_s <= ft_result.throughput_seq_per_s * 1.02

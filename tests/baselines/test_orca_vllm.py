"""Tests for the ORCA and vLLM iteration-level baselines."""

import pytest

from repro.baselines.faster_transformer import FasterTransformer
from repro.baselines.orca import Orca
from repro.baselines.vllm import Vllm
from repro.workloads.synthetic import generate_trace_from_distributions


@pytest.fixture(scope="module")
def orca(tiny_profile, short_input_dist, short_output_dist) -> Orca:
    return Orca(
        profile=tiny_profile,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
    )


@pytest.fixture(scope="module")
def vllm(tiny_profile, short_input_dist, short_output_dist) -> Vllm:
    return Vllm(
        profile=tiny_profile,
        input_distribution=short_input_dist,
        output_distribution=short_output_dist,
    )


@pytest.fixture(scope="module")
def trace(short_input_dist, short_output_dist):
    return generate_trace_from_distributions(
        short_input_dist, short_output_dist, num_requests=48, seed=4
    )


class TestOrca:
    def test_all_requests_complete(self, orca, trace):
        result = orca.run(trace, batch_size=8)
        assert result.num_requests == len(trace)
        assert result.total_generated_tokens == trace.total_output_tokens
        assert result.system == "orca"
        assert result.extra["iterations"] >= len(trace)

    def test_batch_size_one_still_completes(self, orca, trace):
        result = orca.run(trace, batch_size=1)
        assert result.num_requests == len(trace)

    def test_worst_case_latency_monotone(self, orca):
        assert orca.worst_case_latency(32) > orca.worst_case_latency(2)

    def test_invalid_batch_rejected(self, orca, trace):
        with pytest.raises(ValueError):
            orca.run(trace, batch_size=0)


class TestVllm:
    def test_all_requests_complete(self, vllm, trace):
        result = vllm.run(trace, batch_size=8)
        assert result.num_requests == len(trace)
        assert result.system == "vllm"

    def test_paged_cache_admits_larger_batches_than_reservation(self, orca, vllm):
        """PagedAttention's point: expected-usage allocation admits more
        concurrent requests than max-length reservations."""
        assert vllm.memory_limited_batch() > orca.memory_limited_batch()

    def test_reserved_tokens_are_block_aligned(self, vllm):
        assert vllm.reserved_tokens_per_request() % vllm.block_tokens == 0


class TestRelativePerformance:
    def test_ft_beats_iteration_level_systems(
        self, tiny_profile, short_input_dist, short_output_dist, orca, vllm, trace
    ):
        """Figure 7: FT outperforms ORCA/vLLM on the same workload because of
        their executor overhead and mixed prefill iterations."""
        ft = FasterTransformer(
            profile=tiny_profile,
            input_distribution=short_input_dist,
            output_distribution=short_output_dist,
        )
        batch = 16
        ft_tput = ft.run(trace, batch).throughput_seq_per_s
        orca_tput = orca.run(trace, batch).throughput_seq_per_s
        vllm_tput = vllm.run(trace, batch).throughput_seq_per_s
        assert ft_tput > orca_tput
        assert ft_tput > vllm_tput

"""Tests for workload traces."""

import pytest

from repro.core.distributions import SequenceDistribution
from repro.workloads.trace import RequestSpec, WorkloadTrace


def _make_trace(num: int = 20) -> WorkloadTrace:
    requests = [
        RequestSpec(request_id=i, input_len=10 + i, output_len=5 + (i % 7))
        for i in range(num)
    ]
    return WorkloadTrace(
        name="test",
        requests=tuple(requests),
        input_distribution=SequenceDistribution.constant(16),
        output_distribution=SequenceDistribution.constant(8),
    )


class TestRequestSpec:
    def test_total_tokens(self):
        spec = RequestSpec(0, input_len=12, output_len=8)
        assert spec.total_tokens == 20

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            RequestSpec(0, input_len=0, output_len=4)
        with pytest.raises(ValueError):
            RequestSpec(0, input_len=4, output_len=0)
        with pytest.raises(ValueError):
            RequestSpec(0, input_len=4, output_len=4, arrival_s=-1)


class TestWorkloadTrace:
    def test_length_and_iteration(self):
        trace = _make_trace(20)
        assert len(trace) == 20
        assert trace.num_requests == 20
        assert len(list(trace)) == 20

    def test_token_totals(self):
        trace = _make_trace(5)
        assert trace.total_input_tokens == sum(r.input_len for r in trace.requests)
        assert trace.total_output_tokens == sum(r.output_len for r in trace.requests)

    def test_length_arrays(self):
        trace = _make_trace(5)
        assert list(trace.input_lengths()) == [10, 11, 12, 13, 14]

    def test_split_preserves_all_requests(self):
        trace = _make_trace(30)
        head, tail = trace.split(0.1)
        assert len(head) + len(tail) == len(trace)
        assert len(head) == 3

    def test_split_requires_valid_fraction(self):
        trace = _make_trace(10)
        with pytest.raises(ValueError):
            trace.split(0.0)
        with pytest.raises(ValueError):
            trace.split(1.0)

    def test_estimate_distributions_reflect_lengths(self):
        trace = _make_trace(40)
        input_dist, output_dist = trace.estimate_distributions()
        assert input_dist.mean == pytest.approx(float(trace.input_lengths().mean()))
        assert output_dist.mean == pytest.approx(float(trace.output_lengths().mean()))

    def test_observed_correlation_bounds(self):
        trace = _make_trace(40)
        assert -1.0 <= trace.observed_correlation() <= 1.0

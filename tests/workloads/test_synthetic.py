"""Tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.core.distributions import SequenceDistribution
from repro.workloads.synthetic import (
    generate_task_trace,
    generate_trace_from_distributions,
    sample_correlated_lengths,
)
from repro.workloads.tasks import get_task


class TestCorrelatedSampling:
    def test_marginals_preserved(self):
        rng = np.random.default_rng(0)
        task = get_task("T")
        inputs, outputs = sample_correlated_lengths(
            task.input_distribution(),
            task.output_distribution(),
            num_requests=4000,
            correlation=0.8,
            rng=rng,
        )
        assert abs(inputs.mean() - task.input_distribution().mean) < 8
        assert abs(outputs.mean() - task.output_distribution().mean) < 8

    def test_requested_correlation_achieved(self):
        rng = np.random.default_rng(1)
        task = get_task("T")
        inputs, outputs = sample_correlated_lengths(
            task.input_distribution(),
            task.output_distribution(),
            num_requests=4000,
            correlation=0.8,
            rng=rng,
        )
        observed = np.corrcoef(inputs.astype(float), outputs.astype(float))[0, 1]
        assert observed > 0.6

    def test_zero_correlation_near_independent(self):
        rng = np.random.default_rng(2)
        task = get_task("S")
        inputs, outputs = sample_correlated_lengths(
            task.input_distribution(),
            task.output_distribution(),
            num_requests=4000,
            correlation=0.0,
            rng=rng,
        )
        observed = np.corrcoef(inputs.astype(float), outputs.astype(float))[0, 1]
        assert abs(observed) < 0.1

    def test_zero_requests(self):
        rng = np.random.default_rng(3)
        task = get_task("S")
        inputs, outputs = sample_correlated_lengths(
            task.input_distribution(), task.output_distribution(), 0, 0.5, rng
        )
        assert len(inputs) == 0 and len(outputs) == 0

    def test_invalid_correlation_rejected(self):
        rng = np.random.default_rng(4)
        task = get_task("S")
        with pytest.raises(ValueError):
            sample_correlated_lengths(
                task.input_distribution(), task.output_distribution(), 10, 1.5, rng
            )


class TestTraceGeneration:
    def test_trace_is_reproducible(self):
        a = generate_task_trace(get_task("S"), 50, seed=7)
        b = generate_task_trace(get_task("S"), 50, seed=7)
        assert list(a.input_lengths()) == list(b.input_lengths())
        assert list(a.output_lengths()) == list(b.output_lengths())

    def test_different_seeds_differ(self):
        a = generate_task_trace(get_task("S"), 50, seed=1)
        b = generate_task_trace(get_task("S"), 50, seed=2)
        assert list(a.output_lengths()) != list(b.output_lengths())

    def test_lengths_within_task_bounds(self):
        task = get_task("G")
        trace = generate_task_trace(task, 200, seed=0)
        assert trace.input_lengths().max() <= task.input_max
        assert trace.output_lengths().max() <= task.output_max
        assert trace.input_lengths().min() >= 1

    def test_correlated_trace_with_randomized_inputs_decorrelates(self):
        task = get_task("T")
        trace = generate_task_trace(task, 1000, seed=0, correlated=True)
        assert abs(trace.observed_correlation()) < 0.3

    def test_generate_from_explicit_distributions(self):
        dist_in = SequenceDistribution.constant(32)
        dist_out = SequenceDistribution.constant(8)
        trace = generate_trace_from_distributions(dist_in, dist_out, 10, name="const")
        assert all(r.input_len == 32 and r.output_len == 8 for r in trace.requests)
        assert trace.name == "const"

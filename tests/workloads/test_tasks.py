"""Tests for the Table 3 task definitions."""

import pytest

from repro.workloads.tasks import ALL_TASKS, get_task, known_tasks


class TestTable3:
    @pytest.mark.parametrize(
        "task_id,input_mean,output_mean,output_p99,output_max",
        [
            ("S", 256, 32, 63, 80),
            ("T", 128, 128, 292, 320),
            ("G", 64, 192, 417, 480),
            ("C1", 256, 64, 137, 160),
            ("C2", 512, 256, 579, 640),
        ],
    )
    def test_statistics_match_table3(
        self, task_id, input_mean, output_mean, output_p99, output_max
    ):
        task = get_task(task_id)
        assert task.input_mean == input_mean
        assert task.output_mean == output_mean
        assert task.output_p99 == output_p99
        assert task.output_max == output_max

    def test_five_tasks_defined(self):
        assert known_tasks() == ["C1", "C2", "G", "S", "T"]

    def test_translation_is_the_correlated_task(self):
        assert get_task("T").correlation > 0.5
        assert all(
            ALL_TASKS[t].correlation <= 0.25 for t in ("S", "G", "C1", "C2")
        )

    def test_lookup_case_insensitive_and_errors(self):
        assert get_task("c1") is get_task("C1")
        with pytest.raises(KeyError):
            get_task("X")


class TestTaskDistributions:
    @pytest.mark.parametrize("task_id", ["S", "T", "G", "C1", "C2"])
    def test_distribution_means_close_to_spec(self, task_id):
        task = get_task(task_id)
        out = task.output_distribution()
        # Truncation shifts the mean; it must stay within ~20% of the target.
        assert abs(out.mean - task.output_mean) / task.output_mean < 0.25
        assert out.max_len == task.output_max

    @pytest.mark.parametrize("task_id", ["S", "T", "G", "C1", "C2"])
    def test_p99_of_distribution_near_table_value(self, task_id):
        task = get_task(task_id)
        p99 = task.output_distribution().percentile(99)
        assert abs(p99 - task.output_p99) / task.output_p99 < 0.35

"""Tests for real-world-dataset-like workload generators."""

import numpy as np
import pytest

from repro.workloads.realworld import (
    ALPACA,
    CNN_DAILYMAIL,
    REAL_DATASETS,
    WMT,
    generate_realworld_trace,
    get_dataset,
    skewness,
)


class TestDatasetSpecs:
    def test_three_datasets_defined(self):
        assert set(REAL_DATASETS) == {"WMT", "ALPACA", "CNN"}

    def test_lookup(self):
        assert get_dataset("wmt") is WMT
        with pytest.raises(KeyError):
            get_dataset("squad")

    def test_wmt_is_strongly_correlated(self):
        assert WMT.correlation >= 0.5
        assert ALPACA.correlation < 0.3

    def test_cnn_inputs_much_longer_than_outputs(self):
        assert CNN_DAILYMAIL.input_median > 5 * CNN_DAILYMAIL.output_median


class TestTraceGeneration:
    def test_trace_reproducible(self):
        a = generate_realworld_trace("Alpaca", 100, seed=1)
        b = generate_realworld_trace("Alpaca", 100, seed=1)
        assert list(a.output_lengths()) == list(b.output_lengths())

    def test_output_lengths_long_tailed(self):
        """The paper attributes ExeGPT's larger real-data gains to the long
        right tail of output lengths; the generator must reproduce it."""
        trace = generate_realworld_trace("Alpaca", 2000, seed=0)
        outputs = trace.output_lengths().astype(float)
        assert skewness(outputs) > 0.5
        assert np.percentile(outputs, 99) > 3 * np.median(outputs)

    def test_wmt_lengths_correlated(self):
        trace = generate_realworld_trace("WMT", 2000, seed=0)
        assert trace.observed_correlation() > 0.5

    def test_lengths_respect_caps(self):
        trace = generate_realworld_trace("CNN", 500, seed=0)
        assert trace.input_lengths().max() <= CNN_DAILYMAIL.input_max
        assert trace.output_lengths().max() <= CNN_DAILYMAIL.output_max

    def test_invalid_requests_rejected(self):
        with pytest.raises(ValueError):
            generate_realworld_trace("WMT", 0)

    def test_skewness_of_degenerate_samples_is_zero(self):
        assert skewness(np.array([3.0, 3.0, 3.0])) == 0.0
        assert skewness(np.array([1.0])) == 0.0

"""Tests for the arrival processes behind online serving."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
    attach_arrivals,
    empirical_rate,
    interarrival_cv,
    known_scenarios,
    make_scenario,
)
from repro.workloads.synthetic import generate_task_trace
from repro.workloads.tasks import get_task

ALL_PROCESSES = [
    PoissonProcess(rate_qps=4.0),
    BurstyProcess(rate_qps=4.0),
    DiurnalProcess(rate_qps=4.0),
]


class TestSampling:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
    def test_seeded_determinism(self, process):
        a = process.arrival_times(500, seed=7)
        b = process.arrival_times(500, seed=7)
        np.testing.assert_array_equal(a, b)
        c = process.arrival_times(500, seed=8)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
    def test_times_increasing_and_positive(self, process):
        times = process.arrival_times(300, seed=1)
        assert times.shape == (300,)
        assert times[0] > 0
        assert np.all(np.diff(times) > 0)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.name)
    def test_empty_sample(self, process):
        assert process.arrival_times(0, seed=0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate_qps=1.0).arrival_times(-1)

    def test_generator_accepted_as_seed(self):
        rng = np.random.default_rng(3)
        times = PoissonProcess(rate_qps=2.0).arrival_times(10, seed=rng)
        assert times.size == 10


class TestStatistics:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonProcess(rate_qps=4.0),
            # Short sojourns so the sample spans many calm/burst cycles.
            BurstyProcess(rate_qps=4.0, mean_burst_s=1.0),
            DiurnalProcess(rate_qps=4.0),
        ],
        ids=lambda p: p.name,
    )
    def test_mean_rate_within_tolerance(self, process):
        """The time-averaged rate matches rate_qps within sampling noise."""
        times = process.arrival_times(4000, seed=11)
        assert empirical_rate(times) == pytest.approx(process.rate_qps, rel=0.15)

    def test_poisson_cv_near_one(self):
        times = PoissonProcess(rate_qps=4.0).arrival_times(4000, seed=5)
        assert interarrival_cv(times) == pytest.approx(1.0, abs=0.15)

    def test_bursty_cv_exceeds_poisson(self):
        bursty = BurstyProcess(rate_qps=4.0).arrival_times(4000, seed=5)
        steady = PoissonProcess(rate_qps=4.0).arrival_times(4000, seed=5)
        assert interarrival_cv(bursty) > interarrival_cv(steady) + 0.1

    def test_diurnal_intensity_ramps(self):
        process = DiurnalProcess(rate_qps=4.0, period_s=100.0, amplitude=0.6)
        assert process.intensity(0.0) == pytest.approx(4.0 * 0.4)
        assert process.intensity(50.0) == pytest.approx(4.0 * 1.6)

    def test_stats_edge_cases(self):
        assert empirical_rate(np.array([])) == 0.0
        assert empirical_rate(np.array([1.0])) == 0.0
        assert interarrival_cv(np.array([1.0])) == 0.0


class TestValidation:
    def test_rate_must_be_positive(self):
        for cls in (PoissonProcess, BurstyProcess, DiurnalProcess):
            with pytest.raises(ValueError):
                cls(rate_qps=0.0)

    def test_bursty_parameters(self):
        with pytest.raises(ValueError):
            BurstyProcess(rate_qps=1.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyProcess(rate_qps=1.0, burst_fraction=1.0)
        with pytest.raises(ValueError):
            BurstyProcess(rate_qps=1.0, mean_burst_s=0.0)

    def test_diurnal_parameters(self):
        with pytest.raises(ValueError):
            DiurnalProcess(rate_qps=1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalProcess(rate_qps=1.0, period_s=0.0)

    def test_bursty_mean_rate_identity(self):
        """Calm/burst rates are derived to preserve the time-averaged rate."""
        process = BurstyProcess(rate_qps=6.0, burst_factor=10.0, burst_fraction=0.2)
        f = process.burst_fraction
        averaged = (1 - f) * process.calm_rate_qps + f * process.burst_rate_qps
        assert averaged == pytest.approx(6.0)


class TestRegistryAndRetargeting:
    def test_known_scenarios(self):
        assert known_scenarios() == ("bursty", "diurnal", "steady")

    def test_make_scenario(self):
        process = make_scenario("bursty", 3.0, burst_factor=4.0)
        assert isinstance(process, BurstyProcess)
        assert process.rate_qps == 3.0
        assert process.burst_factor == 4.0

    def test_make_scenario_unknown(self):
        with pytest.raises(KeyError):
            make_scenario("weekend", 1.0)

    def test_with_rate_preserves_shape_parameters(self):
        process = BurstyProcess(rate_qps=2.0, burst_factor=5.0)
        rescaled = process.with_rate(8.0)
        assert isinstance(rescaled, BurstyProcess)
        assert rescaled.rate_qps == 8.0
        assert rescaled.burst_factor == 5.0
        assert process.rate_qps == 2.0  # original untouched


class TestAttachArrivals:
    def test_attach_preserves_requests(self):
        trace = generate_task_trace(get_task("S"), num_requests=50, seed=2)
        online = attach_arrivals(trace, PoissonProcess(rate_qps=5.0), seed=4)
        assert len(online) == len(trace)
        for before, after in zip(trace.requests, online.requests):
            assert after.request_id == before.request_id
            assert after.input_len == before.input_len
            assert after.output_len == before.output_len
            assert after.arrival_s > 0
        arrivals = [r.arrival_s for r in online.requests]
        assert arrivals == sorted(arrivals)
        assert online.input_distribution is trace.input_distribution
        assert "steady" in online.name

    def test_attach_is_deterministic(self):
        trace = generate_task_trace(get_task("S"), num_requests=20, seed=2)
        a = attach_arrivals(trace, PoissonProcess(rate_qps=5.0), seed=4)
        b = attach_arrivals(trace, PoissonProcess(rate_qps=5.0), seed=4)
        assert [r.arrival_s for r in a.requests] == [r.arrival_s for r in b.requests]


class TestChunkedSamplingParity:
    """The chunked bursty sampler consumes the SAME rng stream as the
    historical per-gap scalar loop -- bit-identical times, chunk-boundary
    phase switches included."""

    @staticmethod
    def _scalar_bursty(process, num_requests, rng):
        """The pre-chunking reference: one scalar draw per gap."""
        times = np.empty(num_requests, dtype=float)
        count = 0
        t = 0.0
        in_burst = bool(rng.random() < process.burst_fraction)
        while count < num_requests:
            sojourn = rng.exponential(
                process.mean_burst_s if in_burst else process.mean_calm_s
            )
            rate = (
                process.burst_rate_qps if in_burst else process.calm_rate_qps
            )
            elapsed = 0.0
            while count < num_requests:
                elapsed += rng.exponential(1.0 / rate)
                if elapsed > sojourn:
                    break
                times[count] = t + elapsed
                count += 1
            t += sojourn
            in_burst = not in_burst
        return times

    @pytest.mark.parametrize("chunk", [3, 8192])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [1, 7, 500, 2000])
    def test_bursty_matches_scalar_reference(self, monkeypatch, chunk, seed, n):
        import repro.workloads.arrivals as arrivals_mod

        monkeypatch.setattr(arrivals_mod, "_GAP_CHUNK", chunk)
        process = BurstyProcess(rate_qps=40.0, mean_burst_s=2.0)
        reference_rng = np.random.default_rng(seed)
        expected = self._scalar_bursty(process, n, reference_rng)
        chunked_rng = np.random.default_rng(seed)
        actual = process.arrival_times(n, seed=chunked_rng)
        np.testing.assert_array_equal(actual, expected)
        # The generator stream position matches too: a caller drawing more
        # numbers afterwards sees the identical continuation.
        assert chunked_rng.random() == reference_rng.random()

    def test_diurnal_rate_statistics_survive_chunking(self, monkeypatch):
        """Diurnal thinning is vectorized without stream parity (documented
        in the sampler); the chunk size must not change the statistics."""
        import repro.workloads.arrivals as arrivals_mod

        process = DiurnalProcess(rate_qps=20.0)
        monkeypatch.setattr(arrivals_mod, "_GAP_CHUNK", 32)
        small = process.arrival_times(4000, seed=13)
        monkeypatch.setattr(arrivals_mod, "_GAP_CHUNK", 8192)
        large = process.arrival_times(4000, seed=13)
        assert np.all(np.diff(small) > 0) and np.all(np.diff(large) > 0)
        assert empirical_rate(small) == pytest.approx(20.0, rel=0.15)
        assert empirical_rate(large) == pytest.approx(20.0, rel=0.15)

"""Analysis module: pure-function reconstruction from stored traces."""

from __future__ import annotations

import pytest

from repro.campaign.analysis import (
    capacity_rows,
    format_capacity_table,
    format_scaling_curves,
    load_campaign,
    measurements,
    rate_rows,
    scaling_curves,
    scaling_efficiency,
)
from repro.campaign.runner import CampaignResult, CampaignRunner
from repro.campaign.spec import CampaignSpec, canonical_json
from repro.campaign.store import TraceStore
from tests.campaign.conftest import make_online_cell


def _synthetic_result() -> CampaignResult:
    """A hand-built two-cell online result (no simulation)."""
    cells = tuple(
        make_online_cell(replicas=n, rates=(2.0 * n,)) for n in (1, 2)
    )
    spec = CampaignSpec(name="synthetic", cells=cells)
    traces = {}
    for cell in cells:
        point = {
            "rate_qps": cell.rates[0],
            "sustainable": True,
            "offered": cell.num_requests,
            "completed": cell.num_requests,
            "p99_latency_s": 1.0,
        }
        traces[cell.content_hash()] = {
            "result": {
                "mode": "online",
                "system": cell.system,
                "scenario": cell.scenario,
                "replicas": cell.replicas,
                "routing": cell.routing,
                "slo_p99_s": cell.slo_p99_s,
                "points": [point],
                "max_sustainable_qps": 3.0 * cell.replicas,
            }
        }
    return CampaignResult(spec=spec, traces=traces, executed=(), loaded=spec.hashes())


class TestOnlineViews:
    def test_capacity_rows_in_spec_order(self):
        rows = capacity_rows(_synthetic_result())
        assert [r["replicas"] for r in rows] == [1, 2]
        assert rows[0] == {
            "model": "OPT-13B",
            "task": "S",
            "system": "exegpt",
            "scenario": "steady",
            "replicas": 1,
            "routing": "jsq",
            "slo_p99_s": 20.0,
            "max_qps": 3.0,
        }

    def test_rate_rows_flatten_points(self):
        rows = rate_rows(_synthetic_result())
        assert len(rows) == 2
        assert rows[0]["rate_qps"] == 2.0
        assert rows[0]["task"] == "S"
        assert rows[1]["sustainable"] is True

    def test_scaling_curves_and_efficiency(self):
        curves = scaling_curves(_synthetic_result())
        key = ("OPT-13B", "S", "exegpt", "steady", "jsq")
        assert curves == {key: [(1, 3.0), (2, 6.0)]}
        eff = scaling_efficiency(curves[key])
        assert eff == {1: 1.0, 2: 1.0}

    def test_scaling_efficiency_without_singleton_base(self):
        assert scaling_efficiency([(2, 6.0), (4, 10.0)]) == {}

    def test_formatters_render(self):
        result = _synthetic_result()
        table = format_capacity_table(result, title="caps")
        assert table.startswith("caps")
        assert "max_qps" in table and "exegpt" in table
        curves = format_scaling_curves(result, title="scaling")
        assert "OPT-13B/S exegpt steady [jsq]" in curves
        assert "(100%)" in curves


class TestLoadCampaign:
    def test_raises_on_missing_trace(self, tmp_path, online_cell):
        store = TraceStore(tmp_path)
        spec = CampaignSpec(name="one", cells=(online_cell,))
        with pytest.raises(KeyError, match="no verified trace"):
            load_campaign(store, spec)

    def test_pure_load_matches_run(self, tmp_path, tiny_campaign):
        store = TraceStore(tmp_path)
        ran = CampaignRunner(store=store).run(tiny_campaign)
        loaded = load_campaign(store, tiny_campaign)
        assert loaded.executed == ()
        assert len(loaded.loaded) == len(tiny_campaign)
        assert {h: canonical_json(d) for h, d in ran.traces.items()} == {
            h: canonical_json(d) for h, d in loaded.traces.items()
        }


@pytest.mark.slow
class TestFigurePortParity:
    def test_figure6_port_matches_inline_loop(self, tmp_path):
        """The campaign-ported figure6 reproduces the historical inline
        loop's rows exactly (same order, same numbers)."""
        from repro.core.config import SchedulePolicy
        from repro.experiments.common import Scenario
        from repro.experiments.figure6 import _tag, run_figure6
        from repro.serving.evaluation import (
            default_baselines,
            measure_baseline,
            measure_exegpt,
        )

        models, tasks, n = ("OPT-13B",), ("S",), 64
        bounds_subset = (0, 3)

        # The pre-campaign implementation, verbatim.
        inline = []
        for model in models:
            for task in tasks:
                scenario = Scenario.create(model, task, num_requests=n)
                bounds = scenario.latency_bounds().as_list()
                picked = [bounds[i] for i in bounds_subset]
                (ft,) = default_baselines(scenario.engine, ("ft",))
                for bound in picked:
                    exe = measure_exegpt(
                        scenario.engine,
                        scenario.trace,
                        bound,
                        policies=(
                            SchedulePolicy.RRA,
                            SchedulePolicy.WAA_C,
                            SchedulePolicy.WAA_M,
                        ),
                    )
                    inline.append(_tag(exe, scenario.label))
                    inline.append(
                        _tag(measure_baseline(ft, scenario.trace, bound), scenario.label)
                    )

        ported = run_figure6(
            models=models,
            tasks=tasks,
            num_requests=n,
            bounds_subset=bounds_subset,
            store=tmp_path / "figure6",
        )
        assert [r.__dict__ for r in ported] == [r.__dict__ for r in inline]

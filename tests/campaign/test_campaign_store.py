"""TraceStore: round-trips, corruption-as-miss, concurrent writers."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.campaign.spec import CampaignSpec, vary
from repro.campaign.store import TraceStore
from tests.campaign.conftest import make_online_cell

RESULT = {"mode": "online", "points": [], "max_sustainable_qps": 3.5}


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces")


class TestRoundTrip:
    def test_save_then_load(self, store, online_cell):
        path = store.save(online_cell, RESULT)
        assert path.exists()
        document = store.load(online_cell)
        assert document["result"] == RESULT
        assert document["cell_hash"] == online_cell.content_hash()
        assert document["seed"] == online_cell.seed()
        assert document["spec"] == online_cell.to_dict()

    def test_load_by_raw_hash(self, store, online_cell):
        store.save(online_cell, RESULT)
        assert store.load(online_cell.content_hash())["result"] == RESULT

    def test_has_missing_len(self, store, online_cell):
        other = vary(online_cell, salt=1)
        spec = CampaignSpec(name="s", cells=(online_cell, other))
        assert store.missing(spec) == (online_cell, other)
        store.save(online_cell, RESULT)
        assert store.has(online_cell)
        assert not store.has(other)
        assert store.missing(spec) == (other,)
        assert len(store) == 1

    def test_delete(self, store, online_cell):
        store.save(online_cell, RESULT)
        assert store.delete(online_cell)
        assert not store.has(online_cell)
        assert not store.delete(online_cell)

    def test_overwrite_is_atomic_replace(self, store, online_cell):
        store.save(online_cell, RESULT)
        store.save(online_cell, RESULT)
        assert len(store) == 1
        assert not list(store.root.glob("*.tmp"))


class TestCorruptionIsAMiss:
    """Every broken-file shape loads as None (the cell just re-executes)."""

    def test_missing_file(self, store, online_cell):
        assert store.load(online_cell) is None

    def test_truncated_file(self, store, online_cell):
        path = store.save(online_cell, RESULT)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load(online_cell) is None

    def test_garbage_bytes(self, store, online_cell):
        store.save(online_cell, RESULT).write_bytes(b"\x00\xffnot json")
        assert store.load(online_cell) is None

    def test_non_dict_json(self, store, online_cell):
        store.save(online_cell, RESULT).write_text('["a", "list"]')
        assert store.load(online_cell) is None

    def test_flipped_checksum(self, store, online_cell):
        path = store.save(online_cell, RESULT)
        document = json.loads(path.read_text())
        document["checksum"] = "0" * 64
        path.write_text(json.dumps(document))
        assert store.load(online_cell) is None

    def test_tampered_result(self, store, online_cell):
        # Checksum catches edits to the payload body.
        path = store.save(online_cell, RESULT)
        document = json.loads(path.read_text())
        document["result"]["max_sustainable_qps"] = 99.0
        path.write_text(json.dumps(document))
        assert store.load(online_cell) is None

    def test_wrong_schema(self, store, online_cell):
        path = store.save(online_cell, RESULT)
        document = json.loads(path.read_text())
        document["schema"] = 0
        path.write_text(json.dumps(document))
        assert store.load(online_cell) is None

    def test_trace_filed_under_wrong_hash(self, store, online_cell):
        # A renamed/copied trace never masquerades as a different cell.
        other = vary(online_cell, salt=1)
        path = store.save(online_cell, RESULT)
        path.rename(store.path_for(other))
        assert store.load(other) is None

    def test_spec_that_no_longer_hashes(self, store, online_cell):
        path = store.save(online_cell, RESULT)
        document = json.loads(path.read_text())
        from repro.campaign.store import _checksum

        document["spec"]["num_requests"] = 9999
        document["checksum"] = _checksum(document)
        path.write_text(json.dumps(document))
        assert store.load(online_cell) is None


def _hammer(root: str, cell_dict: dict, writes: int) -> None:
    """Worker: repeatedly save the same cell into the store."""
    from repro.campaign.spec import CellSpec

    store = TraceStore(root)
    cell = CellSpec.from_dict(cell_dict)
    for _ in range(writes):
        store.save(cell, RESULT)


class TestConcurrentWriters:
    def test_two_processes_never_clobber(self, store, online_cell):
        """Two workers racing on the same cell always leave a verified trace.

        By determinism both write identical documents; atomic tmp+replace
        means a reader never observes a torn file and no tmp litter stays
        behind.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_hammer, args=(str(store.root), online_cell.to_dict(), 40)
            )
            for _ in range(2)
        ]
        for p in writers:
            p.start()
        # Read while the writers race: every observed state is either
        # "no file yet" or a fully verified document.
        saw_document = False
        for _ in range(200):
            document = store.load(online_cell)
            if document is not None:
                saw_document = True
                assert document["result"] == RESULT
        for p in writers:
            p.join()
            assert p.exitcode == 0
        assert saw_document or store.load(online_cell) is not None
        final = store.load(online_cell)
        assert final["result"] == RESULT
        assert len(store) == 1
        assert not list(store.root.glob("*.tmp"))

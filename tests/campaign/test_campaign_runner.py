"""CampaignRunner: execution, resume parity, fan-out determinism, caches."""

from __future__ import annotations

import json

import pytest

from repro.campaign.runner import (
    _ENGINES,
    CampaignRunner,
    clear_process_caches,
    execute_cell,
)
from repro.campaign.spec import CampaignSpec, canonical_json, vary
from repro.campaign.store import TraceStore
from tests.campaign.conftest import make_offline_cell, make_online_cell


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "traces")


def _docs(result) -> dict[str, str]:
    """Canonical encoding of every trace document, by cell hash."""
    return {h: canonical_json(doc) for h, doc in result.traces.items()}


class TestExecuteCell:
    def test_online_payload_shape(self, online_cell):
        payload = execute_cell(online_cell)
        assert payload["mode"] == "online"
        assert payload["replicas"] == 1
        assert len(payload["points"]) == len(online_cell.rates)
        point = payload["points"][0]
        assert point["offered"] == online_cell.num_requests
        assert payload["max_sustainable_qps"] >= 0.0

    def test_offline_payload_shape(self):
        payload = execute_cell(make_offline_cell())
        assert payload["mode"] == "offline"
        measurement = payload["measurement"]
        assert measurement["system"] == "ft"
        assert measurement["throughput_seq_per_s"] > 0

    def test_deterministic_rerun(self, online_cell):
        first = execute_cell(online_cell)
        clear_process_caches()
        second = execute_cell(online_cell)
        assert canonical_json(first) == canonical_json(second)

    def test_engine_cache_populated_and_clearable(self, online_cell):
        clear_process_caches()
        assert online_cell.engine_spec() not in _ENGINES
        execute_cell(online_cell)
        assert online_cell.engine_spec() in _ENGINES
        clear_process_caches()
        assert not _ENGINES


class TestRun:
    def test_executes_all_then_loads_all(self, store, tiny_campaign):
        runner = CampaignRunner(store=store)
        first = runner.run(tiny_campaign)
        assert len(first.executed) == len(tiny_campaign)
        assert first.loaded == ()
        second = runner.run(tiny_campaign)
        assert second.executed == ()
        assert len(second.loaded) == len(tiny_campaign)
        assert _docs(first) == _docs(second)

    def test_force_reexecutes(self, store, tiny_campaign):
        runner = CampaignRunner(store=store)
        runner.run(tiny_campaign)
        forced = runner.run(tiny_campaign, force=True)
        assert len(forced.executed) == len(tiny_campaign)

    def test_memory_only_runner(self, tiny_campaign):
        result = CampaignRunner(store=None).run(tiny_campaign)
        assert len(result.executed) == len(tiny_campaign)
        assert set(result.traces) == set(tiny_campaign.hashes())

    def test_progress_callback(self, store, online_cell):
        spec = CampaignSpec(name="one", cells=(online_cell,))
        events = []
        runner = CampaignRunner(store=store)
        runner.run(spec, progress=lambda cell, outcome: events.append(outcome))
        runner.run(spec, progress=lambda cell, outcome: events.append(outcome))
        assert events == ["executed", "loaded"]

    def test_corrupt_trace_reexecuted(self, store, online_cell):
        spec = CampaignSpec(name="one", cells=(online_cell,))
        runner = CampaignRunner(store=store)
        runner.run(spec)
        path = store.path_for(online_cell)
        path.write_text(path.read_text()[:40])
        again = runner.run(spec)
        assert len(again.executed) == 1
        assert store.has(online_cell)


class TestResumeParity:
    """Satellite regression: resumed == single-shot serial, bit for bit."""

    def test_resumed_merge_is_bit_identical(self, store, tmp_path, tiny_campaign):
        single_shot = CampaignRunner(store=store).run(tiny_campaign)

        other = TraceStore(tmp_path / "resumed")
        runner = CampaignRunner(store=other)
        runner.run(tiny_campaign)
        # Lose a third of the traces (rounded up): resume must execute
        # exactly those cells and nothing else.
        victims = tiny_campaign.hashes()[:: 3]
        for cell_hash in victims:
            assert other.delete(cell_hash)
        resumed = runner.run(tiny_campaign)
        assert sorted(resumed.executed) == sorted(victims)
        assert len(resumed.loaded) == len(tiny_campaign) - len(victims)
        assert _docs(resumed) == _docs(single_shot)

    def test_on_disk_bytes_identical(self, store, tmp_path, tiny_campaign):
        CampaignRunner(store=store).run(tiny_campaign)
        other = TraceStore(tmp_path / "b")
        CampaignRunner(store=other).run(tiny_campaign)
        for cell_hash in tiny_campaign.hashes():
            assert (
                store.path_for(cell_hash).read_text()
                == other.path_for(cell_hash).read_text()
            )


class TestFanOut:
    def test_parallel_matches_serial(self, store, tmp_path, tiny_campaign):
        """Worker count never changes results (content-hash seeding)."""
        serial = CampaignRunner(store=store, workers=1).run(tiny_campaign)
        parallel = CampaignRunner(
            store=TraceStore(tmp_path / "par"), workers=2
        ).run(tiny_campaign)
        assert len(parallel.executed) == len(tiny_campaign)
        assert _docs(serial) == _docs(parallel)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)


class TestTraceDocument:
    def test_document_records_spec_and_derived_seed(self, store, online_cell):
        spec = CampaignSpec(name="one", cells=(online_cell,))
        result = CampaignRunner(store=store).run(spec)
        document = result.trace_of(online_cell)
        assert document["seed"] == online_cell.seed()
        assert document["spec"] == online_cell.to_dict()
        # And it is valid JSON on disk with the same content.
        on_disk = json.loads(store.path_for(online_cell).read_text())
        assert canonical_json(on_disk) == canonical_json(document)

"""CellSpec / CampaignSpec: hashing, seeding, grids, picklability."""

from __future__ import annotations

import pickle

import pytest

from repro.campaign.spec import (
    BOUND_REFS,
    CampaignSpec,
    CellSpec,
    EngineSpec,
    canonical_json,
    vary,
)
from tests.campaign.conftest import make_offline_cell, make_online_cell


class TestContentHash:
    def test_stable_across_instances(self):
        assert make_online_cell().content_hash() == make_online_cell().content_hash()

    def test_every_field_changes_the_hash(self, online_cell):
        base = online_cell.content_hash()
        variants = [
            vary(online_cell, system="orca"),
            vary(online_cell, scenario="bursty"),
            vary(online_cell, replicas=2),
            vary(online_cell, routing="round-robin"),
            vary(online_cell, slo_p99_s=10.0),
            vary(online_cell, rates=(2.0, 4.0)),
            vary(online_cell, num_requests=64),
            vary(online_cell, trace_seed=1),
            vary(online_cell, salt=1),
            vary(online_cell, max_queue=64),
        ]
        hashes = {base} | {v.content_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_roundtrip_preserves_hash(self, online_cell):
        clone = CellSpec.from_dict(online_cell.to_dict())
        assert clone == online_cell
        assert clone.content_hash() == online_cell.content_hash()

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [1.5, "x"]}) == canonical_json(
            {"a": [1.5, "x"], "b": 1}
        )


class TestSeed:
    def test_derived_from_content(self, online_cell):
        assert online_cell.seed() == make_online_cell().seed()
        assert online_cell.seed() != vary(online_cell, salt=1).seed()

    def test_in_rng_range(self, online_cell):
        for salt in range(16):
            seed = vary(online_cell, salt=salt).seed()
            assert 0 <= seed < 2**31 - 1

    def test_independent_of_rates_only_via_hash(self, online_cell):
        # The seed is a function of the hash alone: any content change
        # (even one that should not alter arrivals) re-seeds, keeping the
        # derivation rule simple and collision-free.
        assert online_cell.seed() != vary(online_cell, rates=(2.0, 4.0)).seed()


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            make_online_cell(mode="nope")

    def test_online_requires_slo(self):
        with pytest.raises(ValueError, match="slo"):
            make_online_cell(slo_p99_s=None)

    def test_online_requires_rates(self):
        with pytest.raises(ValueError, match="rate"):
            make_online_cell(rates=())

    def test_online_rejects_offline_only_system(self):
        with pytest.raises(ValueError, match="online system"):
            make_online_cell(system="ft")

    def test_offline_bound_references(self):
        for bound in (*BOUND_REFS, "inf", "12.5"):
            assert make_offline_cell(bound=bound).bound == bound
        with pytest.raises(ValueError, match="bound"):
            make_offline_cell(bound="b9")

    def test_vary_revalidates(self, online_cell):
        with pytest.raises(ValueError):
            vary(online_cell, replicas=0)


class TestPickle:
    def test_cells_and_campaigns_pickle(self, online_cell, tiny_campaign):
        for obj in (online_cell, make_offline_cell(), tiny_campaign,
                    online_cell.engine_spec()):
            clone = pickle.loads(pickle.dumps(obj))
            assert clone == obj

    def test_pickle_preserves_hash(self, online_cell):
        clone = pickle.loads(pickle.dumps(online_cell))
        assert clone.content_hash() == online_cell.content_hash()


class TestCampaignSpec:
    def test_duplicate_cells_rejected(self, online_cell):
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(name="dup", cells=(online_cell, make_online_cell()))

    def test_hashes_in_spec_order(self, tiny_campaign):
        assert tiny_campaign.hashes() == tuple(
            c.content_hash() for c in tiny_campaign.cells
        )

    def test_subset(self, tiny_campaign):
        sub = tiny_campaign.subset(lambda c: c.system == "orca")
        assert len(sub) == 2
        assert all(c.system == "orca" for c in sub)


class TestGrids:
    def test_online_grid_shape_and_rate_scaling(self):
        spec = CampaignSpec.online_grid(
            "g",
            models=("OPT-13B",),
            tasks=("S",),
            systems=("exegpt", "orca"),
            scenarios=("steady",),
            replicas=(1, 2),
            routings=("jsq",),
            slo_p99_s=10.0,
            per_replica_rates=(2.0, 4.0),
        )
        assert len(spec) == 4
        by_n = {c.replicas: c.rates for c in spec if c.system == "exegpt"}
        assert by_n[1] == (2.0, 4.0)
        assert by_n[2] == (4.0, 8.0)

    def test_offline_grid_matches_historical_row_order(self):
        spec = CampaignSpec.offline_grid(
            "g",
            models=("OPT-13B",),
            tasks=("S", "T"),
            systems=("exegpt", "ft"),
            bounds=("b0", "b3"),
        )
        assert len(spec) == 8
        # Per (model, task): bound-major, then system -- the order the
        # inline figure loops emitted rows in.
        key = [(c.task, c.bound, c.system) for c in spec]
        assert key[:4] == [
            ("S", "b0", "exegpt"),
            ("S", "b0", "ft"),
            ("S", "b3", "exegpt"),
            ("S", "b3", "ft"),
        ]

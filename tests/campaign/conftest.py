"""Fixtures for the campaign-layer tests.

The simulation cells here are deliberately tiny (short traces, one offered
rate, small encoder batches) so that tests exercising the real execution
path -- runner fan-out, resume, store round-trips -- stay fast.
"""

from __future__ import annotations

import pytest

from repro.campaign.spec import CampaignSpec, CellSpec


def make_online_cell(**overrides) -> CellSpec:
    """A small, fast online cell; fields overridable per test."""
    base = dict(
        mode="online",
        model="OPT-13B",
        task="S",
        system="exegpt",
        scenario="steady",
        replicas=1,
        routing="jsq",
        slo_p99_s=20.0,
        rates=(2.0,),
        num_requests=32,
        max_encode_batch=16,
        max_queue=128,
    )
    base.update(overrides)
    return CellSpec(**base)


def make_offline_cell(**overrides) -> CellSpec:
    """A small, fast offline (figure-measurement) cell."""
    base = dict(
        mode="offline",
        model="OPT-13B",
        task="S",
        system="ft",
        bound="inf",
        num_requests=32,
        max_encode_batch=16,
    )
    base.update(overrides)
    return CellSpec(**base)


@pytest.fixture
def online_cell() -> CellSpec:
    return make_online_cell()


@pytest.fixture
def tiny_campaign() -> CampaignSpec:
    """Four small online cells: 2 systems x 2 scenarios."""
    cells = tuple(
        make_online_cell(system=system, scenario=scenario)
        for system in ("exegpt", "orca")
        for scenario in ("steady", "bursty")
    )
    return CampaignSpec(name="tiny", cells=cells)

"""Tests for micro-batch partitioning helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.batching import (
    alive_requests,
    average_context,
    average_input_length,
    split_into_micro_batches,
    total_input_tokens,
)
from repro.engine.request import RequestState
from repro.workloads.trace import RequestSpec


def _requests(n: int) -> list[RequestState]:
    return [
        RequestState(spec=RequestSpec(i, input_len=10 + i, output_len=4))
        for i in range(n)
    ]


class TestSplitting:
    def test_even_split(self):
        groups = split_into_micro_batches(_requests(8), 4)
        assert [len(g) for g in groups] == [2, 2, 2, 2]

    def test_uneven_split_front_loaded(self):
        groups = split_into_micro_batches(_requests(7), 3)
        assert [len(g) for g in groups] == [3, 2, 2]

    def test_fewer_requests_than_groups(self):
        groups = split_into_micro_batches(_requests(2), 5)
        assert [len(g) for g in groups] == [1, 1]

    def test_empty_input(self):
        assert split_into_micro_batches([], 3) == []

    def test_invalid_group_count(self):
        with pytest.raises(ValueError):
            split_into_micro_batches(_requests(2), 0)

    @given(n=st.integers(min_value=0, max_value=50), m=st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_split_preserves_all_requests(self, n, m):
        requests = _requests(n)
        groups = split_into_micro_batches(requests, m)
        flattened = [r for g in groups for r in g]
        assert flattened == requests
        assert all(groups_len > 0 for groups_len in map(len, groups))


class TestAggregates:
    def test_alive_requests_filters_done(self):
        requests = _requests(3)
        requests[0].generated = requests[0].output_len
        assert len(alive_requests(requests)) == 2

    def test_average_input_length(self):
        assert average_input_length(_requests(3)) == pytest.approx(11.0)
        assert average_input_length([]) == 0.0

    def test_total_input_tokens(self):
        assert total_input_tokens(_requests(3)) == 10 + 11 + 12

    def test_average_context_decoder_only(self):
        requests = _requests(2)
        requests[0].generated = 2
        expected = ((10 + 2) + 11) / 2
        assert average_context(requests, decoder_only=True) == pytest.approx(expected)
        assert average_context([], True) == 0.0
